//! The durable model store: a `.rnv` snapshot plus its sibling WAL.
//!
//! This module ties the pieces together for both the server
//! (`/v1/ingest`, `/v1/compact`) and the CLI (`renuver ingest`):
//!
//! - **Recovery** ([`Durable::recover`]): open the WAL against the
//!   loaded snapshot's `committed_seq` and replay every newer record
//!   through [`Engine::commit_tuples`] — the exact method the live
//!   write path uses — so the recovered engine is bit-identical to one
//!   that never crashed.
//! - **Append** ([`Durable::append`]): fsync the repaired batch into
//!   the WAL *before* the engine commit is acknowledged.
//! - **Compaction** ([`Durable::compact`]): snapshot the live engine
//!   into a fresh artifact via temp-file + atomic rename, then truncate
//!   the WAL. A crash between those two steps is benign: the snapshot
//!   already carries `committed_seq`, so replay skips every WAL record
//!   at or below it.
//!
//! # Crash-interleaving matrix
//!
//! | crash point                  | disk state on restart             | recovery outcome            |
//! |------------------------------|-----------------------------------|-----------------------------|
//! | before WAL fsync             | old snapshot, maybe-torn tail     | batch absent (never acked)  |
//! | after WAL fsync, before ack  | old snapshot + full frame         | batch replayed (acceptable: |
//! |                              |                                   | client saw no response)     |
//! | compaction: before rename    | old snapshot + WAL, stray `.tmp`  | as if never compacted       |
//! | compaction: after rename,    | new snapshot + stale WAL          | replay skips folded frames  |
//! | before WAL truncate          |                                   |                             |
//! | after WAL truncate           | new snapshot + empty WAL          | nothing to replay           |

use std::fmt;
use std::fs::File;
use std::io::{self, Write};
use std::path::PathBuf;

use renuver_core::Engine;
use renuver_data::Tuple;

use crate::artifact::{self, ArtifactError};
use crate::fault;
use crate::wal::{sync_parent_dir, Wal, WalError};

/// Compact once the WAL exceeds this many bytes (default).
pub const DEFAULT_COMPACT_BYTES: u64 = 4 << 20;
/// Compact once the WAL holds this many records (default).
pub const DEFAULT_COMPACT_RECORDS: u64 = 256;

/// Why the durable store failed to recover, append, or compact.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem error.
    Io(io::Error),
    /// The WAL failed to open or is corrupt beyond its torn tail.
    Wal(WalError),
    /// Snapshot encoding/writing failed during compaction.
    Artifact(ArtifactError),
    /// A WAL record decoded but the engine refused to commit it — the
    /// log disagrees with the model schema it claims to extend.
    Replay { seq: u64, reason: String },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::Wal(e) => write!(f, "{e}"),
            StoreError::Artifact(e) => write!(f, "{e}"),
            StoreError::Replay { seq, reason } => {
                write!(f, "wal replay failed at seq {seq}: {reason}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}
impl From<WalError> for StoreError {
    fn from(e: WalError) -> Self {
        StoreError::Wal(e)
    }
}
impl From<ArtifactError> for StoreError {
    fn from(e: ArtifactError) -> Self {
        StoreError::Artifact(e)
    }
}

/// How to wire durability for a model: where the files live and when to
/// fold the WAL back into the snapshot.
#[derive(Debug, Clone)]
pub struct DurabilityOptions {
    /// The WAL path (conventionally `<model>.rnv.wal`).
    pub wal_path: PathBuf,
    /// The snapshot rewritten by compaction (the `.rnv` that was loaded).
    pub snapshot_path: PathBuf,
    /// Provenance string stamped into compacted snapshots.
    pub source: String,
    /// Compact once the WAL exceeds this many bytes.
    pub compact_bytes: u64,
    /// Compact once the WAL holds this many records.
    pub compact_records: u64,
}

impl DurabilityOptions {
    /// Conventional wiring for a model at `snapshot_path`: WAL beside it
    /// at `<path>.wal`, default compaction thresholds.
    pub fn beside(snapshot_path: impl Into<PathBuf>, source: &str) -> DurabilityOptions {
        let snapshot_path = snapshot_path.into();
        let mut wal_os = snapshot_path.clone().into_os_string();
        wal_os.push(".wal");
        DurabilityOptions {
            wal_path: PathBuf::from(wal_os),
            snapshot_path,
            source: source.to_string(),
            compact_bytes: DEFAULT_COMPACT_BYTES,
            compact_records: DEFAULT_COMPACT_RECORDS,
        }
    }
}

/// What recovery found and did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// WAL records replayed into the engine (seq > snapshot seq).
    pub replayed: usize,
    /// Rows appended to the relation by replay.
    pub rows: usize,
    /// The sequence number the store is at after recovery.
    pub seq: u64,
}

/// A live durable store: the open WAL plus compaction wiring.
pub struct Durable {
    wal: Wal,
    opts: DurabilityOptions,
}

impl Durable {
    /// Opens the WAL for a just-loaded snapshot and replays outstanding
    /// records into `engine`. `snapshot_seq` is the artifact's
    /// `committed_seq`. On success the engine reflects every batch that
    /// was ever acknowledged, and nothing that wasn't.
    pub fn recover(
        engine: &mut Engine,
        snapshot_seq: u64,
        opts: DurabilityOptions,
    ) -> Result<(Durable, RecoveryReport), StoreError> {
        let schema_fp = artifact::schema_fingerprint(engine.relation().schema());
        let arity = engine.relation().arity();
        let (wal, records) = Wal::open(&opts.wal_path, schema_fp, snapshot_seq, arity)?;
        let mut replayed = 0;
        let mut rows = 0;
        for record in records {
            let stats = engine
                .commit_tuples(record.tuples)
                .map_err(|e| StoreError::Replay { seq: record.seq, reason: e.to_string() })?;
            replayed += 1;
            rows += stats.rows;
        }
        let seq = wal.last_seq();
        Ok((Durable { wal, opts }, RecoveryReport { replayed, rows, seq }))
    }

    /// Makes one repaired batch durable and returns its sequence
    /// number. Must be called — and must succeed — *before* the batch
    /// is committed to the engine and acknowledged to the client.
    pub fn append(&mut self, tuples: &[Tuple]) -> io::Result<u64> {
        self.wal.append(tuples)
    }

    /// Whether the WAL has grown past either compaction threshold.
    pub fn should_compact(&self) -> bool {
        self.wal.bytes() >= self.opts.compact_bytes
            || self.wal.records() >= self.opts.compact_records
    }

    /// Folds the engine's current state into a fresh snapshot and
    /// truncates the WAL. The snapshot becomes visible atomically
    /// (temp file + rename); the WAL is reset only after the rename is
    /// durable, so a crash anywhere in between recovers correctly (see
    /// the module-level matrix). Returns the snapshot's sequence.
    ///
    /// The caller must hold the engine lock (or otherwise guarantee no
    /// concurrent commit) so `engine` and `last_seq` agree.
    pub fn compact(&mut self, engine: &Engine) -> Result<u64, StoreError> {
        let seq = self.wal.last_seq();
        fault::hit("compact.pre_write")?;
        let bytes = artifact::encode_engine(engine, &self.opts.source, seq);
        let tmp = self.opts.snapshot_path.with_extension("rnv.tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        fault::hit("compact.pre_rename")?;
        std::fs::rename(&tmp, &self.opts.snapshot_path)?;
        sync_parent_dir(&self.opts.snapshot_path);
        fault::hit("compact.post_rename")?;
        fault::hit("compact.pre_truncate")?;
        self.wal.reset(seq)?;
        Ok(seq)
    }

    /// Replaces the snapshot file with a complete artifact and resets
    /// the WAL at `seq` — the single-topology half of a hot model swap.
    /// The bytes must already be a valid artifact with the serving
    /// schema fingerprint (the router checks before calling).
    pub fn replace_snapshot(&mut self, bytes: &[u8], seq: u64) -> Result<(), StoreError> {
        let tmp = self.opts.snapshot_path.with_extension("rnv.tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &self.opts.snapshot_path)?;
        sync_parent_dir(&self.opts.snapshot_path);
        self.wal.reset(seq)?;
        Ok(())
    }

    /// Highest durable sequence number.
    pub fn last_seq(&self) -> u64 {
        self.wal.last_seq()
    }
    /// Current WAL size in bytes.
    pub fn wal_bytes(&self) -> u64 {
        self.wal.bytes()
    }
    /// Records currently in the WAL.
    pub fn wal_records(&self) -> u64 {
        self.wal.records()
    }
    /// The store's wiring (paths, thresholds).
    pub fn options(&self) -> &DurabilityOptions {
        &self.opts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use renuver_core::RenuverConfig;
    use renuver_data::{csv, Value};
    use renuver_rfd::{Constraint, Rfd, RfdSet};
    use std::path::Path;

    fn fresh_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("renuver-store-tests-{}", std::process::id()))
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn engine() -> Engine {
        let rel = csv::read_str(
            "City:text,Zip:text\n\
             Malibu,90265\n\
             Hollywood,90028\n\
             Provo,84601\n",
        )
        .unwrap();
        let rfds =
            RfdSet::from_vec(vec![Rfd::new(vec![Constraint::new(0, 0.0)], Constraint::new(1, 0.0))]);
        Engine::prepare(rel, rfds, RenuverConfig::default())
    }

    fn batch(n: i64) -> Vec<Tuple> {
        vec![vec![Value::Text(format!("City{n}")), Value::Text(format!("{:05}", 10000 + n))]]
    }

    fn opts(dir: &Path) -> DurabilityOptions {
        let mut o = DurabilityOptions::beside(dir.join("model.rnv"), "store-tests");
        o.compact_bytes = u64::MAX;
        o.compact_records = u64::MAX;
        o
    }

    /// Write an initial snapshot the way `renuver prepare` would.
    fn seed_snapshot(dir: &Path, engine: &Engine) {
        std::fs::write(dir.join("model.rnv"), artifact::encode_engine(engine, "store-tests", 0))
            .unwrap();
    }

    #[test]
    fn recover_replays_exactly_the_unfolded_suffix() {
        let dir = fresh_dir("replay-suffix");
        let mut live = engine();
        seed_snapshot(&dir, &live);
        let (mut durable, report) = Durable::recover(&mut live, 0, opts(&dir)).unwrap();
        assert_eq!(report, RecoveryReport { replayed: 0, rows: 0, seq: 0 });

        // Ack two batches through the durable path.
        for n in 1..=2 {
            let tuples = batch(n);
            durable.append(&tuples).unwrap();
            live.commit_tuples(tuples).unwrap();
        }

        // "Crash": rebuild from the untouched snapshot + WAL.
        let snapshot = artifact::load(dir.join("model.rnv")).unwrap();
        let committed = snapshot.committed_seq;
        let mut recovered = snapshot.into_engine(RenuverConfig::default());
        let (_, report) = Durable::recover(&mut recovered, committed, opts(&dir)).unwrap();
        assert_eq!(report, RecoveryReport { replayed: 2, rows: 2, seq: 2 });

        // Bit-identical to the never-crashed engine.
        assert_eq!(
            artifact::encode_engine(&recovered, "x", report.seq),
            artifact::encode_engine(&live, "x", 2),
        );
    }

    #[test]
    fn compact_folds_the_wal_and_recovery_still_agrees() {
        let dir = fresh_dir("compact");
        let mut live = engine();
        seed_snapshot(&dir, &live);
        let (mut durable, _) = Durable::recover(&mut live, 0, opts(&dir)).unwrap();
        for n in 1..=3 {
            let tuples = batch(n);
            durable.append(&tuples).unwrap();
            live.commit_tuples(tuples).unwrap();
        }
        assert_eq!(durable.compact(&live).unwrap(), 3);
        assert_eq!(durable.wal_records(), 0);

        // One more batch after compaction.
        let tuples = batch(4);
        durable.append(&tuples).unwrap();
        live.commit_tuples(tuples).unwrap();

        let snapshot = artifact::load(dir.join("model.rnv")).unwrap();
        assert_eq!(snapshot.committed_seq, 3);
        let committed = snapshot.committed_seq;
        let mut recovered = snapshot.into_engine(RenuverConfig::default());
        let (_, report) = Durable::recover(&mut recovered, committed, opts(&dir)).unwrap();
        assert_eq!(report.replayed, 1);
        assert_eq!(report.seq, 4);
        assert_eq!(
            artifact::encode_engine(&recovered, "x", 4),
            artifact::encode_engine(&live, "x", 4),
        );
    }

    #[test]
    fn crash_between_rename_and_truncate_skips_folded_frames() {
        let dir = fresh_dir("post-rename");
        let mut live = engine();
        seed_snapshot(&dir, &live);
        let (mut durable, _) = Durable::recover(&mut live, 0, opts(&dir)).unwrap();
        for n in 1..=2 {
            let tuples = batch(n);
            durable.append(&tuples).unwrap();
            live.commit_tuples(tuples).unwrap();
        }

        // Simulate the crash window: snapshot renamed, WAL untouched.
        fault::arm("compact.pre_truncate", fault::Action::Err);
        let err = durable.compact(&live).unwrap_err();
        fault::disarm("compact.pre_truncate");
        assert!(err.to_string().contains("injected fault"));
        assert_eq!(durable.wal_records(), 2, "wal must survive the failed truncate");

        // Recovery: new snapshot already holds both batches; the stale
        // WAL's frames are all ≤ committed_seq and must be skipped.
        let snapshot = artifact::load(dir.join("model.rnv")).unwrap();
        assert_eq!(snapshot.committed_seq, 2);
        let committed = snapshot.committed_seq;
        let mut recovered = snapshot.into_engine(RenuverConfig::default());
        let (_, report) = Durable::recover(&mut recovered, committed, opts(&dir)).unwrap();
        assert_eq!(report.replayed, 0);
        assert_eq!(report.seq, 2);
        assert_eq!(
            artifact::encode_engine(&recovered, "x", 2),
            artifact::encode_engine(&live, "x", 2),
        );
    }

    #[test]
    fn crash_before_rename_is_as_if_compaction_never_ran() {
        let dir = fresh_dir("pre-rename");
        let mut live = engine();
        seed_snapshot(&dir, &live);
        let (mut durable, _) = Durable::recover(&mut live, 0, opts(&dir)).unwrap();
        let tuples = batch(1);
        durable.append(&tuples).unwrap();
        live.commit_tuples(tuples).unwrap();

        fault::arm("compact.pre_rename", fault::Action::Err);
        assert!(durable.compact(&live).is_err());
        fault::disarm("compact.pre_rename");

        let snapshot = artifact::load(dir.join("model.rnv")).unwrap();
        assert_eq!(snapshot.committed_seq, 0, "old snapshot must be untouched");
        let committed = snapshot.committed_seq;
        let mut recovered = snapshot.into_engine(RenuverConfig::default());
        let (_, report) = Durable::recover(&mut recovered, committed, opts(&dir)).unwrap();
        assert_eq!(report.replayed, 1);
        assert_eq!(
            artifact::encode_engine(&recovered, "x", 1),
            artifact::encode_engine(&live, "x", 1),
        );
    }

    #[test]
    fn threshold_trips_should_compact() {
        let dir = fresh_dir("threshold");
        let mut live = engine();
        seed_snapshot(&dir, &live);
        let mut o = opts(&dir);
        o.compact_records = 2;
        let (mut durable, _) = Durable::recover(&mut live, 0, o).unwrap();
        assert!(!durable.should_compact());
        for n in 1..=2 {
            let tuples = batch(n);
            durable.append(&tuples).unwrap();
            live.commit_tuples(tuples).unwrap();
        }
        assert!(durable.should_compact());
        durable.compact(&live).unwrap();
        assert!(!durable.should_compact());
    }
}
