//! Fault injection for the durable write path.
//!
//! The WAL appender and the snapshot/compaction writer call [`hit`] at
//! named crash points (e.g. `wal.append.pre_fsync`,
//! `compact.pre_rename`). In production no plan is armed and every call
//! is a branch on an empty map. Tests arm faults two ways:
//!
//! - **Subprocess tests** set the `RENUVER_FAULT` environment variable
//!   before spawning the `renuver` binary. The kill-and-recover matrix
//!   in `tests/wal_recovery.rs` drives `renuver ingest` through every
//!   crash point this way and asserts recovery is bit-identical.
//! - **In-process unit tests** call [`arm`] / [`disarm`] directly.
//!
//! Plan syntax (comma-separated): `point=action` where action is
//! `crash` (immediate `process::abort`, simulating power loss — no
//! destructors, no flush), `err` (the call site sees an injected
//! `io::Error`), or `short:<n>` (the writer persists only the first `n`
//! bytes of the record, then aborts — a torn write).
//!
//! Crash points currently wired in:
//!
//! | point                    | where                                       |
//! |--------------------------|---------------------------------------------|
//! | `wal.append.pre_write`   | before the frame bytes reach the file       |
//! | `wal.append.mid_write`   | honours `short:<n>`: partial frame, abort   |
//! | `wal.append.pre_fsync`   | frame written, not yet fsynced              |
//! | `wal.append.post_fsync`  | frame durable, caller not yet acknowledged  |
//! | `compact.pre_write`      | before the temp snapshot file is written    |
//! | `compact.pre_rename`     | temp file complete, rename not yet issued   |
//! | `compact.post_rename`    | snapshot live, WAL not yet truncated        |
//! | `compact.pre_truncate`   | alias point directly before the WAL reset   |
//! | `compact.shard_done`     | sharded only: one shard snapshot renamed,   |
//! |                          | siblings and the manifest still old         |
//! | `registry.append.shard<k>` | sharded only: the ingest fan-out reaches  |
//! |                          | shard `k` — earlier logs hold the frame     |
//! | `swap.pre_commit`        | sharded only: the new generation's files    |
//! |                          | are all written, manifest not yet flipped   |

use std::collections::HashMap;
use std::io;
use std::sync::{Mutex, OnceLock};

/// What to do when execution reaches an armed crash point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// `std::process::abort()` — simulates a crash / power loss.
    Crash,
    /// The call site observes an injected `io::Error`.
    Err,
    /// Persist only the first `n` bytes of the record, then abort.
    /// Only honoured at points that write records (`*.mid_write`);
    /// elsewhere it behaves like [`Action::Crash`].
    Short(usize),
}

fn plan() -> &'static Mutex<HashMap<String, Action>> {
    static PLAN: OnceLock<Mutex<HashMap<String, Action>>> = OnceLock::new();
    PLAN.get_or_init(|| {
        let mut map = HashMap::new();
        if let Ok(spec) = std::env::var("RENUVER_FAULT") {
            match parse(&spec) {
                Ok(parsed) => map = parsed,
                Err(e) => eprintln!("renuver: ignoring malformed RENUVER_FAULT: {e}"),
            }
        }
        Mutex::new(map)
    })
}

fn parse(spec: &str) -> Result<HashMap<String, Action>, String> {
    let mut map = HashMap::new();
    for entry in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let (point, action) = entry
            .split_once('=')
            .ok_or_else(|| format!("`{entry}` is not `point=action`"))?;
        let action = match action {
            "crash" => Action::Crash,
            "err" => Action::Err,
            other => match other.strip_prefix("short:") {
                Some(n) => Action::Short(
                    n.parse().map_err(|_| format!("bad short length in `{entry}`"))?,
                ),
                None => return Err(format!("unknown action `{action}` in `{entry}`")),
            },
        };
        map.insert(point.to_string(), action);
    }
    Ok(map)
}

/// Arms `action` at `point` for this process (test hook; overrides any
/// `RENUVER_FAULT` entry for the same point).
pub fn arm(point: &str, action: Action) {
    plan().lock().unwrap().insert(point.to_string(), action);
}

/// Disarms `point`. No-op if it was not armed.
pub fn disarm(point: &str) {
    plan().lock().unwrap().remove(point);
}

/// The action armed at `point`, if any, without executing it. Call
/// sites that can honour `short:<n>` use this to stage partial writes.
pub fn armed(point: &str) -> Option<Action> {
    plan().lock().unwrap().get(point).copied()
}

/// Executes the action armed at `point`: aborts on `crash` (and on
/// `short`, which only write sites stage via [`armed`]), returns an
/// injected error on `err`, and is a no-op when nothing is armed.
pub fn hit(point: &str) -> io::Result<()> {
    match armed(point) {
        None => Ok(()),
        Some(Action::Err) => Err(io::Error::other(format!("injected fault at {point}"))),
        Some(Action::Crash) | Some(Action::Short(_)) => {
            eprintln!("renuver: injected crash at {point}");
            std::process::abort();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_the_documented_syntax() {
        let map = parse("wal.append.pre_fsync=crash, compact.pre_rename=err,x=short:13")
            .unwrap();
        assert_eq!(map["wal.append.pre_fsync"], Action::Crash);
        assert_eq!(map["compact.pre_rename"], Action::Err);
        assert_eq!(map["x"], Action::Short(13));
        assert!(parse("").unwrap().is_empty());
    }

    #[test]
    fn parse_rejects_junk() {
        assert!(parse("nonsense").is_err());
        assert!(parse("p=explode").is_err());
        assert!(parse("p=short:many").is_err());
    }

    #[test]
    fn hit_returns_injected_errors_and_clears_cleanly() {
        // Use a point name no other test arms: the plan is process-global.
        arm("test.fault.err_point", Action::Err);
        let err = hit("test.fault.err_point").unwrap_err();
        assert!(err.to_string().contains("injected fault at test.fault.err_point"));
        disarm("test.fault.err_point");
        assert!(hit("test.fault.err_point").is_ok());
        assert!(hit("test.fault.never_armed").is_ok());
    }
}
