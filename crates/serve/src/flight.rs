//! The request-scoped flight recorder.
//!
//! One [`FlightRecorder`] per server process ties together the pieces
//! of per-request observability:
//!
//! - **Request ids** — an inbound `X-Request-Id` is honored (after
//!   sanitizing); otherwise ids are minted from a per-boot nonce plus an
//!   atomic counter (`<nonce:8 hex>-<n>`), so ids are unique within a
//!   boot and distinguishable across boots.
//! - **Access log** — one schema-checked `access` line per served
//!   request and one `server_event` line per lifecycle transition,
//!   appended to an [`EventLog`] when `--log-out` is configured.
//! - **Slow-request ring** — the last [`RING_SLOTS`] requests above the
//!   slow threshold, with their full phase breakdowns, dumped by
//!   `GET /v1/debug/requests`. Writers claim slots with one atomic
//!   `fetch_add` (no shared lock on the request path; each slot has its
//!   own uncontended mutex for the payload write).
//!
//! The recorder is **observation only**: with it on or off, imputation
//! decisions and response bodies are byte-identical (proven by the
//! differential e2e test). `FlightOptions::enabled = false` turns all
//! of the above off for overhead measurement.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use renuver_obs::schema::SERVE_SCHEMA_VERSION;
use renuver_obs::{EventLog, Field, FieldValue};

/// Capacity of the slow-request ring.
pub const RING_SLOTS: usize = 64;

/// Knobs for the flight recorder, set from the CLI.
pub struct FlightOptions {
    /// Master switch; `false` disables ids, histograms, logging, and the
    /// slow ring entirely (for the recorder-off differential / bench).
    pub enabled: bool,
    /// Structured event log sink (`--log-out`), if any.
    pub log: Option<EventLog>,
    /// Requests at or above this latency enter the slow ring.
    pub slow_threshold_ms: u64,
    /// Cap on span/event records returned in a `?trace=1` envelope.
    pub trace_max_events: usize,
}

impl Default for FlightOptions {
    fn default() -> Self {
        FlightOptions {
            enabled: true,
            log: None,
            slow_threshold_ms: 250,
            trace_max_events: 256,
        }
    }
}

/// One retained slow request.
#[derive(Debug, Clone)]
pub struct SlowEntry {
    /// The request id stamped on the response.
    pub id: String,
    /// Endpoint label (the same label the latency histograms use).
    pub endpoint: &'static str,
    /// Response status code.
    pub status: u16,
    /// Wall-clock service time.
    pub latency_us: u64,
    /// Budget phase self-times, when the request ran traced.
    pub phases: Vec<(String, u64)>,
}

struct Inner {
    enabled: bool,
    boot_nonce: u64,
    next_id: AtomicU64,
    log: Option<EventLog>,
    slow_threshold_us: u64,
    trace_max_events: usize,
    /// Monotone slot-claim cursor; slot = cursor % RING_SLOTS.
    cursor: AtomicU64,
    ring: Vec<Mutex<Option<(u64, SlowEntry)>>>,
}

/// Cloneable handle to the process-wide recorder (see module docs).
#[derive(Clone)]
pub struct FlightRecorder {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("enabled", &self.inner.enabled)
            .field("log", &self.inner.log.is_some())
            .finish()
    }
}

impl FlightRecorder {
    /// Builds a recorder from the CLI options.
    pub fn new(opts: FlightOptions) -> FlightRecorder {
        // FNV-1a over wall time + pid: unique enough per boot, and no
        // dependency on a randomness source the container may lack.
        let mut nonce: u64 = 0xcbf2_9ce4_8422_2325;
        let seed = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0)
            ^ u64::from(std::process::id()).rotate_left(32);
        for byte in seed.to_le_bytes() {
            nonce = (nonce ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        FlightRecorder {
            inner: Arc::new(Inner {
                enabled: opts.enabled,
                boot_nonce: nonce,
                next_id: AtomicU64::new(1),
                log: opts.log,
                slow_threshold_us: opts.slow_threshold_ms.saturating_mul(1_000),
                trace_max_events: opts.trace_max_events.max(1),
                cursor: AtomicU64::new(0),
                ring: (0..RING_SLOTS).map(|_| Mutex::new(None)).collect(),
            }),
        }
    }

    /// A recorder with every feature off.
    pub fn off() -> FlightRecorder {
        FlightRecorder::new(FlightOptions { enabled: false, ..FlightOptions::default() })
    }

    /// Whether the recorder observes requests at all.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled
    }

    /// Whether an event log sink is attached.
    pub fn has_log(&self) -> bool {
        self.inner.log.is_some()
    }

    /// The `?trace=1` envelope size cap.
    pub fn trace_max_events(&self) -> usize {
        self.inner.trace_max_events
    }

    /// The slow-ring admission threshold, microseconds.
    pub fn slow_threshold_us(&self) -> u64 {
        self.inner.slow_threshold_us
    }

    /// Resolves this request's id: a sane inbound `X-Request-Id` wins,
    /// otherwise a fresh id is minted. Inbound ids are trusted only as
    /// far as log hygiene allows — longer than 128 bytes or containing
    /// non-graphic characters, they are replaced.
    pub fn request_id(&self, inbound: Option<&str>) -> String {
        if let Some(id) = inbound {
            if !id.is_empty()
                && id.len() <= 128
                && id.chars().all(|c| c.is_ascii_graphic())
            {
                return id.to_string();
            }
        }
        let n = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        format!("{:08x}-{n}", self.inner.boot_nonce as u32)
    }

    /// Appends one `access` line (no-op without a log sink).
    pub fn access(&self, fields: Vec<Field>) {
        if let Some(log) = &self.inner.log {
            let mut all = vec![("v", FieldValue::U64(SERVE_SCHEMA_VERSION))];
            all.extend(fields);
            log.append("access", all);
        }
    }

    /// Appends one `server_event` line (no-op without a log sink).
    pub fn server_event(&self, event: &'static str, fields: Vec<Field>) {
        if !self.inner.enabled {
            return;
        }
        if let Some(log) = &self.inner.log {
            let mut all = vec![
                ("v", FieldValue::U64(SERVE_SCHEMA_VERSION)),
                ("event", FieldValue::Str(event)),
            ];
            all.extend(fields);
            log.append("server_event", all);
        }
    }

    /// Admits `entry` to the slow ring when it clears the threshold.
    pub fn note_slow(&self, entry: SlowEntry) {
        if entry.latency_us < self.inner.slow_threshold_us {
            return;
        }
        let ticket = self.inner.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &self.inner.ring[(ticket % RING_SLOTS as u64) as usize];
        let mut guard = slot.lock().unwrap_or_else(|e| e.into_inner());
        // A lapped writer may already hold a newer ticket; keep it.
        if guard.as_ref().map_or(true, |(t, _)| *t < ticket) {
            *guard = Some((ticket, entry));
        }
    }

    /// The retained slow requests, oldest first.
    pub fn slow_snapshot(&self) -> Vec<SlowEntry> {
        let mut entries: Vec<(u64, SlowEntry)> = self
            .inner
            .ring
            .iter()
            .filter_map(|slot| slot.lock().unwrap_or_else(|e| e.into_inner()).clone())
            .collect();
        entries.sort_by_key(|(ticket, _)| *ticket);
        entries.into_iter().map(|(_, e)| e).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recorder(threshold_ms: u64) -> FlightRecorder {
        FlightRecorder::new(FlightOptions {
            slow_threshold_ms: threshold_ms,
            ..FlightOptions::default()
        })
    }

    #[test]
    fn minted_ids_are_unique_and_inbound_ids_are_honored() {
        let f = recorder(250);
        let a = f.request_id(None);
        let b = f.request_id(None);
        assert_ne!(a, b);
        assert_eq!(a.split('-').next(), b.split('-').next(), "same boot nonce");
        assert_eq!(f.request_id(Some("client-7")), "client-7");
        // Hostile inbound ids are replaced, not echoed.
        let huge = "x".repeat(200);
        assert_ne!(f.request_id(Some(&huge)), huge);
        assert_ne!(f.request_id(Some("a\nb")), "a\nb");
        assert_ne!(f.request_id(Some("")), "");
    }

    #[test]
    fn slow_ring_keeps_the_latest_above_threshold() {
        let f = recorder(1); // 1000us threshold
        f.note_slow(SlowEntry {
            id: "fast".into(),
            endpoint: "impute",
            status: 200,
            latency_us: 999,
            phases: Vec::new(),
        });
        assert!(f.slow_snapshot().is_empty(), "below threshold is dropped");
        for i in 0..(RING_SLOTS as u64 + 10) {
            f.note_slow(SlowEntry {
                id: format!("r{i}"),
                endpoint: "impute",
                status: 200,
                latency_us: 1_000 + i,
                phases: vec![("core::scan".into(), i)],
            });
        }
        let snap = f.slow_snapshot();
        assert_eq!(snap.len(), RING_SLOTS);
        // The oldest retained entry is the one after the lapped ones.
        assert_eq!(snap.first().unwrap().id, "r10");
        assert_eq!(snap.last().unwrap().id, format!("r{}", RING_SLOTS + 9));
    }
}
