//! The sharded engine registry: N relation shards behind one router.
//!
//! A registry partitions the reference relation into `n_shards` parts with
//! [`renuver_core::partition`] (key-RFD LHS attributes when one exists,
//! hash of all LHS values otherwise) and serves every `/v1/impute` request
//! from an immutable, atomically swapped snapshot ([`Snap`]) — requests
//! clone one `Arc` and run entirely lock-free, which is what buys the
//! multi-core throughput the single `Mutex<Engine>` topology cannot reach.
//! Results are byte-identical to the single-engine path: the merge
//! contract is proven by `tests/shard_differential.rs`.
//!
//! ## Durable layout
//!
//! Beside a base model at `model.rnv`, a durable registry keeps
//!
//! | file                  | holds                                         |
//! |-----------------------|-----------------------------------------------|
//! | `model.rnv.shard<k>`  | shard `k`'s snapshot (a normal v2 artifact)   |
//! | `model.rnv.shard<k>.wal` | shard `k`'s write-ahead log                |
//! | `model.rnv.manifest`  | routing table: shard id per global base row   |
//!
//! A model swap never rewrites those files in place: it writes the whole
//! replacement layout under the next generation's names
//! (`model.rnv.g<gen>.shard<k>[.wal]`) and commits by atomically
//! renaming a manifest that records the new generation — the manifest is
//! the single switch, so a crash anywhere inside a swap leaves either
//! the complete old layout or the complete new one, never a mix.
//!
//! Every shard WAL records the **full repaired batch** (not just the
//! shard's own rows). That redundancy is the recovery story: any healthy
//! WAL can rebuild the global `locate` table and the in-memory tail of a
//! shard whose own log is gone, so a single-shard crash degrades exactly
//! one shard instead of the registry.
//!
//! ## Recovery
//!
//! With the manifest at seq `M` and shard snapshots at seqs `s_k ≥ M`
//! (mixed after a mid-compaction crash), every WAL is opened at
//! `snapshot_seq = M` — the manifest is always written before any WAL is
//! truncated, so `base_seq ≤ M` holds for every log. The committed
//! horizon is the minimum `last_seq` over healthy WALs; batches
//! `M+1 ..= committed` replay in order, growing `locate` for every tuple
//! but pushing a tuple into part `k` only when its seq exceeds `s_k`
//! (rows at or below `s_k` are already inside that shard's snapshot).
//! A recovery that finds mixed snapshot seqs compacts once to normalize.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use renuver_core::{commit_sharded, impute_sharded, partition, shard_of, BatchResult, ShardPlan};
use renuver_core::RenuverConfig;
use renuver_data::{DataError, Relation, Schema, Tuple};
use renuver_distance::DistanceOracle;
use renuver_rfd::RfdSet;

use crate::artifact::{self, Artifact, ArtifactError};
use crate::fault;
use crate::store::StoreError;
use crate::wal::{sync_parent_dir, Wal, WalRecord};

/// Manifest magic: `RNVM`.
const MANIFEST_MAGIC: [u8; 4] = *b"RNVM";
/// Manifest format version. v2 added the layout generation.
const MANIFEST_VERSION: u32 = 2;

// ---------------------------------------------------------------- layout

/// Path conventions for a sharded model rooted at a base `.rnv` path.
#[derive(Debug, Clone)]
pub struct ShardLayout {
    base: PathBuf,
}

impl ShardLayout {
    /// A layout rooted beside `base` (conventionally the `model.rnv` the
    /// registry was prepared from).
    pub fn beside(base: impl Into<PathBuf>) -> ShardLayout {
        ShardLayout { base: base.into() }
    }

    fn suffixed(&self, suffix: &str) -> PathBuf {
        let mut os = self.base.clone().into_os_string();
        os.push(suffix);
        PathBuf::from(os)
    }

    /// `.g<gen>` for swapped-in layouts; generation 0 keeps the bare
    /// names `prepare --shards` writes.
    fn gen_prefix(gen: u64) -> String {
        if gen == 0 { String::new() } else { format!(".g{gen}") }
    }

    /// `model.rnv[.g<gen>].shard<k>` — shard `k`'s snapshot in layout
    /// generation `gen`.
    pub fn shard_snapshot(&self, gen: u64, k: usize) -> PathBuf {
        self.suffixed(&format!("{}.shard{k}", Self::gen_prefix(gen)))
    }

    /// `model.rnv[.g<gen>].shard<k>.wal` — shard `k`'s write-ahead log
    /// in layout generation `gen`.
    pub fn shard_wal(&self, gen: u64, k: usize) -> PathBuf {
        self.suffixed(&format!("{}.shard{k}.wal", Self::gen_prefix(gen)))
    }

    /// `model.rnv.manifest` — the routing manifest. Generation-less: the
    /// manifest names the live generation and its atomic rename is the
    /// commit point of every layout rewrite.
    pub fn manifest(&self) -> PathBuf {
        self.suffixed(".manifest")
    }

    /// Best-effort removal of every shard file whose generation is not
    /// `current`: losers of an interrupted swap, or the previous layout
    /// after a committed one. Never touches the manifest or the base
    /// model.
    fn sweep_stale_generations(&self, current: u64) {
        let Some(base_name) = self.base.file_name().and_then(|n| n.to_str()) else {
            return;
        };
        let parent = self.base.parent().unwrap_or_else(|| Path::new("."));
        let dir = if parent.as_os_str().is_empty() { Path::new(".") } else { parent };
        let Ok(entries) = fs::read_dir(dir) else { return };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(suffix) = name
                .strip_prefix(base_name)
                .and_then(|s| s.strip_prefix('.'))
            else {
                continue;
            };
            // `shard<k>...` is generation 0; `g<gen>.shard<k>...` is a
            // swapped generation. Anything else (manifest, tmp files of
            // the manifest, the base model) is left alone.
            let gen = if suffix.starts_with("shard") {
                0
            } else if let Some(rest) = suffix.strip_prefix('g') {
                match rest.split_once('.') {
                    Some((num, tail)) if tail.starts_with("shard") => {
                        match num.parse::<u64>() {
                            Ok(g) => g,
                            Err(_) => continue,
                        }
                    }
                    _ => continue,
                }
            } else {
                continue;
            };
            if gen != current {
                let _ = fs::remove_file(entry.path());
            }
        }
    }
}

// -------------------------------------------------------------- manifest

/// The routing manifest: which shard owns each global base row, plus the
/// partition attributes so WAL replay re-derives identical assignments.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Schema fingerprint — must match every shard snapshot and WAL.
    pub schema_fp: u64,
    /// Number of shards in the layout.
    pub n_shards: usize,
    /// The seq this manifest (and the `assign` table) covers.
    pub seq: u64,
    /// Layout generation: which `[.g<gen>]` file set holds the shard
    /// snapshots and WALs. A model swap writes the whole next generation
    /// before flipping this in one atomic manifest rename.
    pub generation: u64,
    /// Partition attributes hashed by [`shard_of`].
    pub attrs: Vec<usize>,
    /// `assign[g]` = owning shard of global row `g`, for all rows at
    /// `seq`. Locals are re-derived by counting in order.
    pub assign: Vec<u32>,
}

impl Manifest {
    fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(48 + self.attrs.len() * 4 + self.assign.len() * 4);
        buf.extend_from_slice(&MANIFEST_MAGIC);
        buf.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
        buf.extend_from_slice(&self.schema_fp.to_le_bytes());
        buf.extend_from_slice(&(self.n_shards as u32).to_le_bytes());
        buf.extend_from_slice(&self.seq.to_le_bytes());
        buf.extend_from_slice(&self.generation.to_le_bytes());
        buf.extend_from_slice(&(self.attrs.len() as u32).to_le_bytes());
        for &a in &self.attrs {
            buf.extend_from_slice(&(a as u32).to_le_bytes());
        }
        buf.extend_from_slice(&(self.assign.len() as u64).to_le_bytes());
        for &s in &self.assign {
            buf.extend_from_slice(&s.to_le_bytes());
        }
        let crc = artifact::crc32(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        buf
    }

    fn decode(bytes: &[u8]) -> Result<Manifest, RegistryError> {
        let bad = |m: &str| RegistryError::Manifest(m.to_string());
        if bytes.len() < 4 + 4 + 8 + 4 + 8 + 8 + 4 + 8 + 4 {
            return Err(bad("manifest truncated"));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 4);
        let crc = u32::from_le_bytes(tail.try_into().unwrap());
        if crc != artifact::crc32(body) {
            return Err(bad("manifest checksum mismatch"));
        }
        let mut at = 0usize;
        let mut take = |n: usize| -> Result<&[u8], RegistryError> {
            let s = body.get(at..at + n).ok_or_else(|| {
                RegistryError::Manifest("manifest truncated".to_string())
            })?;
            at += n;
            Ok(s)
        };
        if take(4)? != MANIFEST_MAGIC {
            return Err(bad("not a registry manifest (bad magic)"));
        }
        let version = u32::from_le_bytes(take(4)?.try_into().unwrap());
        if version != MANIFEST_VERSION {
            return Err(bad(&format!("unsupported manifest version {version}")));
        }
        let schema_fp = u64::from_le_bytes(take(8)?.try_into().unwrap());
        let n_shards = u32::from_le_bytes(take(4)?.try_into().unwrap()) as usize;
        let seq = u64::from_le_bytes(take(8)?.try_into().unwrap());
        let generation = u64::from_le_bytes(take(8)?.try_into().unwrap());
        let n_attrs = u32::from_le_bytes(take(4)?.try_into().unwrap()) as usize;
        let mut attrs = Vec::with_capacity(n_attrs);
        for _ in 0..n_attrs {
            attrs.push(u32::from_le_bytes(take(4)?.try_into().unwrap()) as usize);
        }
        let n_rows = u64::from_le_bytes(take(8)?.try_into().unwrap()) as usize;
        let mut assign = Vec::with_capacity(n_rows);
        for _ in 0..n_rows {
            let s = u32::from_le_bytes(take(4)?.try_into().unwrap());
            if s as usize >= n_shards {
                return Err(bad("manifest assigns a row to a shard out of range"));
            }
            assign.push(s);
        }
        if at != body.len() {
            return Err(bad("trailing bytes after manifest payload"));
        }
        Ok(Manifest { schema_fp, n_shards, seq, generation, attrs, assign })
    }

    /// Loads and validates the manifest at `path`.
    pub fn load(path: &Path) -> Result<Manifest, RegistryError> {
        Manifest::decode(&fs::read(path)?)
    }

    /// Writes the manifest durably: temp file, fsync, rename, dir fsync.
    pub fn store(&self, path: &Path) -> io::Result<()> {
        write_atomic(path, &self.encode())
    }
}

fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut tmp_os = path.to_path_buf().into_os_string();
    tmp_os.push(".tmp");
    let tmp = PathBuf::from(tmp_os);
    fs::write(&tmp, bytes)?;
    fs::File::open(&tmp)?.sync_all()?;
    fs::rename(&tmp, path)?;
    sync_parent_dir(path);
    Ok(())
}

// ---------------------------------------------------------------- errors

/// Everything that can go wrong building, recovering, or swapping a
/// registry.
#[derive(Debug)]
pub enum RegistryError {
    /// Filesystem error.
    Io(io::Error),
    /// A shard snapshot failed to load or encode.
    Artifact(ArtifactError),
    /// The manifest is missing, corrupt, or inconsistent.
    Manifest(String),
    /// A model's schema fingerprint does not match the registry's.
    SchemaMismatch { expected: u64, got: u64 },
    /// Replay could not reconstruct a consistent shard state.
    Recovery(String),
    /// The underlying store failed (WAL append, compaction).
    Store(StoreError),
    /// The batch itself was rejected by the imputation core.
    Data(DataError),
    /// Ingest refused because one or more shards are degraded.
    Degraded(Vec<usize>),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::Io(e) => write!(f, "registry i/o error: {e}"),
            RegistryError::Artifact(e) => write!(f, "shard snapshot error: {e}"),
            RegistryError::Manifest(m) => write!(f, "manifest error: {m}"),
            RegistryError::SchemaMismatch { expected, got } => write!(
                f,
                "schema fingerprint mismatch: registry has {expected:#x}, model has {got:#x}"
            ),
            RegistryError::Recovery(m) => write!(f, "shard recovery failed: {m}"),
            RegistryError::Store(e) => write!(f, "{e}"),
            RegistryError::Data(e) => write!(f, "{e}"),
            RegistryError::Degraded(shards) => {
                write!(f, "shards degraded: {shards:?} — ingest refused")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

impl From<io::Error> for RegistryError {
    fn from(e: io::Error) -> Self {
        RegistryError::Io(e)
    }
}
impl From<ArtifactError> for RegistryError {
    fn from(e: ArtifactError) -> Self {
        RegistryError::Artifact(e)
    }
}
impl From<StoreError> for RegistryError {
    fn from(e: StoreError) -> Self {
        RegistryError::Store(e)
    }
}
impl From<DataError> for RegistryError {
    fn from(e: DataError) -> Self {
        RegistryError::Data(e)
    }
}

// ------------------------------------------------------------------ snap

/// An immutable, atomically published view of the registry: everything an
/// impute needs. Requests clone the `Arc` once and never take a lock.
pub struct Snap {
    /// The shard parts, all sharing the model schema.
    pub parts: Vec<Relation>,
    /// Global row → `(shard, local)`.
    pub locate: Vec<(u32, u32)>,
    /// The partition attributes [`shard_of`] hashes for routing.
    pub attrs: Vec<usize>,
    /// The RFD set.
    pub sigma: RfdSet,
    /// The serve-time base config (per-request options are layered on a
    /// clone of this).
    pub config: RenuverConfig,
    /// The committed seq this view reflects.
    pub seq: u64,
}

impl Snap {
    /// The model schema (all parts share it).
    pub fn schema(&self) -> &Schema {
        self.parts[0].schema()
    }

    /// Total reference rows across all parts.
    pub fn rows(&self) -> usize {
        self.locate.len()
    }

    /// Runs a batch against this view — lock-free, byte-identical to the
    /// single-engine path.
    pub fn impute(
        &self,
        tuples: Vec<Tuple>,
        config: &RenuverConfig,
    ) -> Result<BatchResult, DataError> {
        let parts: Vec<&Relation> = self.parts.iter().collect();
        impute_sharded(&parts, &self.locate, &self.sigma, config, tuples)
    }
}

/// Per-shard health, reported by `/healthz`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardState {
    /// Serving and accepting ingests.
    Ok,
    /// The shard's WAL is unusable: imputes are served (state was rebuilt
    /// from sibling logs) but ingest is refused.
    Degraded,
}

impl ShardState {
    /// Stable label for JSON payloads.
    pub fn label(self) -> &'static str {
        match self {
            ShardState::Ok => "ok",
            ShardState::Degraded => "degraded",
        }
    }
}

/// What recovery found and did, for startup logging.
#[derive(Debug, Clone, Default)]
pub struct ShardRecovery {
    /// Batches replayed from the WAL horizon.
    pub replayed: usize,
    /// Rows appended across all shards by replay.
    pub rows: usize,
    /// The committed seq after recovery.
    pub seq: u64,
    /// Shards whose WAL could not be opened.
    pub degraded: Vec<usize>,
    /// Whether recovery compacted to normalize mixed snapshot seqs.
    pub normalized: bool,
}

// ------------------------------------------------------------- registry

/// The durable half of a registry: per-shard WALs (`None` = degraded)
/// plus the layout and compaction thresholds.
struct ShardStore {
    layout: ShardLayout,
    wals: Vec<Option<Wal>>,
    /// The live layout generation (file-name suffix of snapshots/WALs).
    generation: u64,
    source: String,
    compact_bytes: u64,
    compact_records: u64,
}

/// The mutable, commit-locked half of a registry.
struct Shards {
    plan: ShardPlan,
    sigma: RfdSet,
    config: RenuverConfig,
    seq: u64,
    store: Option<ShardStore>,
}

impl Shards {
    fn publish(&self) -> Arc<Snap> {
        Arc::new(Snap {
            parts: self.plan.parts.clone(),
            locate: self.plan.locate.clone(),
            attrs: self.plan.attrs.clone(),
            sigma: self.sigma.clone(),
            config: self.config.clone(),
            seq: self.seq,
        })
    }
}

struct Inner {
    shards: Mutex<Shards>,
    snap: RwLock<Arc<Snap>>,
    shard_states: Vec<AtomicU8>,
    compacting: AtomicBool,
    schema_fp: u64,
    n_shards: usize,
    swaps: AtomicU64,
}

/// A sharded engine registry. Cloning shares the underlying state; the
/// background compaction worker holds a clone.
#[derive(Clone)]
pub struct Registry {
    inner: Arc<Inner>,
}

/// The outcome of a committed sharded ingest.
pub struct IngestOutcome {
    /// The imputation result for the batch (same shape as `/v1/impute`).
    pub batch: BatchResult,
    /// The batch's sequence number.
    pub seq: u64,
    /// Rows committed (= the batch size).
    pub committed_rows: usize,
    /// Donor pool size after commit (total reference rows).
    pub donor_rows: usize,
    /// Whether any shard WAL has crossed its compaction thresholds.
    pub wants_compact: bool,
}

impl Registry {
    // -------------------------------------------------------- construct

    /// Builds an in-memory (non-durable) registry by partitioning `rel`.
    pub fn build(rel: &Relation, sigma: RfdSet, config: RenuverConfig, n_shards: usize) -> Registry {
        let plan = partition(rel, &sigma, n_shards.max(1));
        let schema_fp = artifact::schema_fingerprint(rel.schema());
        Registry::assemble(plan, sigma, config, 0, None, schema_fp, Vec::new())
    }

    fn assemble(
        plan: ShardPlan,
        sigma: RfdSet,
        config: RenuverConfig,
        seq: u64,
        store: Option<ShardStore>,
        schema_fp: u64,
        degraded: Vec<usize>,
    ) -> Registry {
        let n_shards = plan.parts.len();
        let shard_states: Vec<AtomicU8> = (0..n_shards)
            .map(|k| AtomicU8::new(if degraded.contains(&k) { 1 } else { 0 }))
            .collect();
        let shards = Shards { plan, sigma, config, seq, store };
        let snap = shards.publish();
        Registry {
            inner: Arc::new(Inner {
                shards: Mutex::new(shards),
                snap: RwLock::new(snap),
                shard_states,
                compacting: AtomicBool::new(false),
                schema_fp,
                n_shards,
                swaps: AtomicU64::new(0),
            }),
        }
    }

    /// Writes the sharded layout for `rel` beside `base` without opening
    /// WALs — the `prepare --shards` path. Returns the shard row counts.
    pub fn prepare_layout(
        rel: &Relation,
        sigma: &RfdSet,
        n_shards: usize,
        layout: &ShardLayout,
        source: &str,
        seq: u64,
    ) -> Result<Vec<usize>, RegistryError> {
        let plan = partition(rel, sigma, n_shards.max(1));
        write_shard_snapshots(&plan, sigma, layout, source, seq, 0, false)?;
        manifest_of(&plan, artifact::schema_fingerprint(rel.schema()), seq, 0)
            .store(&layout.manifest())?;
        Ok(plan.parts.iter().map(|p| p.len()).collect())
    }

    /// Opens (or initializes) a durable registry beside `base_model`.
    ///
    /// With no manifest on disk the base artifact is partitioned fresh and
    /// the sharded layout is written. With a manifest, shard snapshots and
    /// WALs recover per the module-level algorithm; `n_shards` on disk
    /// wins over the requested count.
    pub fn open_durable(
        base: Artifact,
        config: RenuverConfig,
        n_shards: usize,
        layout: ShardLayout,
        source: &str,
        compact_bytes: u64,
        compact_records: u64,
    ) -> Result<(Registry, ShardRecovery), RegistryError> {
        let schema_fp = base.schema_fingerprint;
        if layout.manifest().exists() {
            Registry::recover(
                base, config, layout, source, compact_bytes, compact_records,
            )
        } else {
            let seq = base.committed_seq;
            let plan = partition(&base.relation, &base.rfds, n_shards.max(1));
            write_shard_snapshots(&plan, &base.rfds, &layout, source, seq, 0, false)?;
            manifest_of(&plan, schema_fp, seq, 0).store(&layout.manifest())?;
            let arity = base.relation.arity();
            let mut wals = Vec::with_capacity(plan.parts.len());
            for k in 0..plan.parts.len() {
                let (wal, _) = Wal::open(layout.shard_wal(0, k), schema_fp, seq, arity)
                    .map_err(StoreError::Wal)?;
                wals.push(Some(wal));
            }
            let store = ShardStore {
                layout,
                wals,
                generation: 0,
                source: source.to_string(),
                compact_bytes,
                compact_records,
            };
            let report = ShardRecovery { seq, ..ShardRecovery::default() };
            let reg = Registry::assemble(
                plan, base.rfds, config, seq, Some(store), schema_fp, Vec::new(),
            );
            Ok((reg, report))
        }
    }

    fn recover(
        base: Artifact,
        config: RenuverConfig,
        layout: ShardLayout,
        source: &str,
        compact_bytes: u64,
        compact_records: u64,
    ) -> Result<(Registry, ShardRecovery), RegistryError> {
        let schema_fp = base.schema_fingerprint;
        let m = Manifest::load(&layout.manifest())?;
        if m.schema_fp != schema_fp {
            return Err(RegistryError::SchemaMismatch { expected: m.schema_fp, got: schema_fp });
        }
        let n = m.n_shards;
        let arity = base.relation.arity();
        // `shard_of` indexes tuples with these, so a stale manifest paired
        // with a same-fingerprint model must fail cleanly here rather than
        // panic out of bounds during replay or ingest.
        if let Some(&a) = m.attrs.iter().find(|&&a| a >= arity) {
            return Err(RegistryError::Manifest(format!(
                "manifest partition attribute {a} out of range for arity {arity}"
            )));
        }
        let gen = m.generation;

        // Shard snapshots. Each may be ahead of the manifest after a
        // mid-compaction crash.
        let mut parts = Vec::with_capacity(n);
        let mut snap_seq = Vec::with_capacity(n);
        for k in 0..n {
            let art = artifact::load(layout.shard_snapshot(gen, k))?;
            if art.schema_fingerprint != schema_fp {
                return Err(RegistryError::SchemaMismatch {
                    expected: schema_fp,
                    got: art.schema_fingerprint,
                });
            }
            snap_seq.push(art.committed_seq);
            parts.push(art.relation);
        }

        // Rebuild locate for the manifest's base rows; count the base rows
        // each shard's snapshot owes to the manifest.
        let mut locate: Vec<(u32, u32)> = Vec::with_capacity(m.assign.len());
        let mut next_local = vec![0u32; n];
        for &s in &m.assign {
            let k = s as usize;
            locate.push((s, next_local[k]));
            next_local[k] += 1;
        }

        // WALs open at the manifest seq: the manifest is written before
        // any WAL reset, so every base_seq ≤ m.seq. An unopenable WAL
        // degrades its shard; siblings carry the full batches.
        let mut wals: Vec<Option<Wal>> = Vec::with_capacity(n);
        let mut records: Vec<Vec<WalRecord>> = Vec::with_capacity(n);
        let mut degraded = Vec::new();
        for k in 0..n {
            match Wal::open(layout.shard_wal(gen, k), schema_fp, m.seq, arity) {
                Ok((wal, recs)) => {
                    wals.push(Some(wal));
                    records.push(recs);
                }
                Err(e) => {
                    eprintln!("renuver: shard {k} wal unusable ({e}); shard degraded");
                    degraded.push(k);
                    wals.push(None);
                    records.push(Vec::new());
                }
            }
        }

        let healthy: Vec<usize> = (0..n).filter(|k| wals[*k].is_some()).collect();
        if healthy.is_empty() && snap_seq.iter().any(|&s| s != m.seq) {
            return Err(RegistryError::Recovery(
                "no readable wal and shard snapshots are ahead of the manifest".to_string(),
            ));
        }
        let committed = healthy
            .iter()
            .map(|&k| wals[k].as_ref().expect("healthy").last_seq())
            .min()
            .unwrap_or(m.seq);

        // Replay m.seq+1 ..= committed from the shard that defines the
        // horizon (its record list is exactly that range).
        let src = healthy
            .iter()
            .copied()
            .find(|&k| wals[k].as_ref().expect("healthy").last_seq() == committed);
        let mut replayed = 0usize;
        let mut rows = 0usize;
        if let Some(src) = src {
            for rec in &records[src] {
                if rec.seq > committed {
                    break;
                }
                for t in &rec.tuples {
                    let k = shard_of(t, &m.attrs, n);
                    locate.push((k as u32, next_local[k]));
                    if rec.seq > snap_seq[k] {
                        parts[k].push(t.clone()).map_err(|e| {
                            RegistryError::Recovery(format!(
                                "wal seq {} disagrees with the shard schema: {e}",
                                rec.seq
                            ))
                        })?;
                        rows += 1;
                    }
                    next_local[k] += 1;
                }
                replayed += 1;
            }
        }
        for k in 0..n {
            if next_local[k] as usize != parts[k].len() {
                return Err(RegistryError::Recovery(format!(
                    "shard {k} has {} rows but replay accounts for {} — snapshot and wal disagree",
                    parts[k].len(),
                    next_local[k]
                )));
            }
        }

        let mixed = snap_seq.iter().any(|&s| s != committed)
            || healthy
                .iter()
                .any(|&k| wals[k].as_ref().expect("healthy").last_seq() != committed);
        let plan = ShardPlan { attrs: m.attrs.clone(), parts, locate };
        // Sweep losers of an interrupted swap (files of any generation
        // other than the committed one) before they can shadow a later
        // swap to the same generation number.
        layout.sweep_stale_generations(gen);
        let store = ShardStore {
            layout,
            wals,
            generation: gen,
            source: source.to_string(),
            compact_bytes,
            compact_records,
        };
        let reg = Registry::assemble(
            plan, base.rfds, config, committed, Some(store), schema_fp, degraded.clone(),
        );
        let mut normalized = false;
        if mixed {
            // Normalize: rewrite every snapshot + the manifest at the
            // committed horizon and reset the healthy logs.
            reg.compact()?;
            normalized = true;
        }
        let report = ShardRecovery { replayed, rows, seq: committed, degraded, normalized };
        Ok((reg, report))
    }

    // ---------------------------------------------------------- queries

    /// The current published snapshot. One `Arc` clone, no lock held
    /// while the request runs.
    pub fn snapshot(&self) -> Arc<Snap> {
        self.inner.snap.read().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.inner.n_shards
    }

    /// The registry's schema fingerprint.
    pub fn schema_fp(&self) -> u64 {
        self.inner.schema_fp
    }

    /// Per-shard health, shard order.
    pub fn shard_states(&self) -> Vec<ShardState> {
        self.inner
            .shard_states
            .iter()
            .map(|s| if s.load(Ordering::Acquire) == 0 { ShardState::Ok } else { ShardState::Degraded })
            .collect()
    }

    /// Indices of degraded shards.
    pub fn degraded_shards(&self) -> Vec<usize> {
        self.shard_states()
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == ShardState::Degraded)
            .map(|(k, _)| k)
            .collect()
    }

    /// Whether a background compaction is in flight.
    pub fn compacting(&self) -> bool {
        self.inner.compacting.load(Ordering::Acquire)
    }

    /// Completed model swaps.
    pub fn swaps(&self) -> u64 {
        self.inner.swaps.load(Ordering::Relaxed)
    }

    /// The live layout generation (0 for non-durable registries, which
    /// have no on-disk layout to version).
    pub fn generation(&self) -> u64 {
        let shards = self.inner.shards.lock().unwrap_or_else(|e| e.into_inner());
        shards.store.as_ref().map_or(0, |s| s.generation)
    }

    /// Rows per shard in the published snapshot.
    pub fn shard_rows(&self) -> Vec<usize> {
        self.snapshot().parts.iter().map(|p| p.len()).collect()
    }

    // ----------------------------------------------------------- ingest

    /// Repairs and commits a batch: impute on the locked state, append
    /// the full repaired batch to every healthy shard WAL, route rows to
    /// their shards, publish a new snapshot. Refused while any shard is
    /// degraded — acknowledging a batch a degraded log never saw would
    /// silently fork the shards on the next recovery.
    pub fn ingest(
        &self,
        tuples: Vec<Tuple>,
        config: &RenuverConfig,
    ) -> Result<IngestOutcome, RegistryError> {
        let mut shards = self.inner.shards.lock().unwrap_or_else(|e| e.into_inner());
        // Degradation only transitions while this lock is held (the
        // append fan-out below, `swap`, and recovery all run under it),
        // so checking here cannot race with a concurrent ingest that
        // degrades a shard after we looked — the TOCTOU an unlocked
        // check would allow.
        let degraded = self.degraded_shards();
        if !degraded.is_empty() {
            return Err(RegistryError::Degraded(degraded));
        }
        let parts: Vec<&Relation> = shards.plan.parts.iter().collect();
        let batch =
            impute_sharded(&parts, &shards.plan.locate, &shards.sigma, config, tuples)?;
        drop(parts);

        let seq = shards.seq + 1;
        if let Some(store) = shards.store.as_mut() {
            for k in 0..store.wals.len() {
                // A missing handle is a hard refusal, never a skip:
                // acknowledging a batch this log never saw would fork
                // the shards on what its seq contains.
                let Some(wal) = store.wals[k].as_mut() else {
                    return Err(RegistryError::Degraded(vec![k]));
                };
                let appended = fault::hit(&format!("registry.append.shard{k}"))
                    .and_then(|()| wal.append(&batch.tuples).map(|_| ()));
                if let Err(e) = appended {
                    // Drop the handle: the shard is degraded until a swap
                    // or restart rebuilds its log. The batch is NOT
                    // acknowledged; logs that already hold this seq are
                    // beyond the committed horizon and will be truncated
                    // by the next compaction.
                    store.wals[k] = None;
                    self.inner.shard_states[k].store(1, Ordering::Release);
                    return Err(RegistryError::Store(StoreError::Io(e)));
                }
            }
        }

        commit_sharded(&mut shards.plan, &batch.tuples);
        shards.seq = seq;
        let wants_compact = shards.store.as_ref().is_some_and(|s| {
            s.wals.iter().flatten().any(|w| {
                w.bytes() >= s.compact_bytes || w.records() >= s.compact_records
            })
        });
        let donor_rows = shards.plan.locate.len();
        let committed_rows = batch.tuples.len();
        let snap = shards.publish();
        *self.inner.snap.write().unwrap_or_else(|e| e.into_inner()) = snap;
        drop(shards);
        Ok(IngestOutcome { batch, seq, committed_rows, donor_rows, wants_compact })
    }

    // ------------------------------------------------------- compaction

    /// Folds every shard's WAL into a fresh snapshot, rewrites the
    /// manifest, and resets the healthy logs. Fault points mirror the
    /// single-engine compactor (`compact.pre_write`, `compact.pre_rename`,
    /// `compact.post_rename`, `compact.pre_truncate`), hit per shard, plus
    /// `compact.shard_done` after each shard's snapshot goes live — the
    /// window where a crash leaves snapshot seqs mixed.
    pub fn compact(&self) -> Result<u64, RegistryError> {
        let mut shards = self.inner.shards.lock().unwrap_or_else(|e| e.into_inner());
        let seq = shards.seq;
        let Shards { plan, sigma, store, .. } = &mut *shards;
        let Some(store) = store.as_mut() else {
            return Ok(seq);
        };
        write_shard_snapshots(
            plan, sigma, &store.layout, &store.source, seq, store.generation, true,
        )
        .map_err(RegistryError::from)?;
        manifest_of(plan, self.inner.schema_fp, seq, store.generation)
            .store(&store.layout.manifest())
            .map_err(StoreError::Io)?;
        fault::hit("compact.post_rename").map_err(StoreError::Io)?;
        for wal in store.wals.iter_mut().flatten() {
            fault::hit("compact.pre_truncate").map_err(StoreError::Io)?;
            wal.reset(seq).map_err(StoreError::Io)?;
        }
        Ok(seq)
    }

    /// Kicks off a background compaction if none is running. Returns
    /// whether a worker was spawned; `done` runs on the worker with the
    /// result.
    pub fn spawn_compact(
        &self,
        done: impl FnOnce(Result<u64, RegistryError>) + Send + 'static,
    ) -> bool {
        if self
            .inner
            .compacting
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return false;
        }
        let reg = self.clone();
        std::thread::spawn(move || {
            let result = reg.compact();
            reg.inner.compacting.store(false, Ordering::Release);
            done(result);
        });
        true
    }

    // ------------------------------------------------------------- swap

    /// Atomically replaces the model: re-partitions `art.relation` with
    /// the new RFD set, rewrites the durable layout (fresh WALs — this
    /// also clears any degraded shard), and publishes the new snapshot.
    /// In-flight imputes finish on the old `Arc`; the seq counter keeps
    /// running. Rejected when the schema fingerprint differs.
    ///
    /// The durable rewrite is crash-atomic: every file of the new layout
    /// — snapshots *and* fresh WALs — is written under the next
    /// generation's names, invisible to recovery, and the single commit
    /// point is the atomic manifest rename that flips the generation. A
    /// crash before it leaves the old generation byte-for-byte intact
    /// (including its logs, so no acknowledged batch is lost); a crash
    /// after it recovers onto the complete new layout. Files of the
    /// losing generation are swept post-commit and again at recovery.
    pub fn swap(&self, art: Artifact) -> Result<u64, RegistryError> {
        if art.schema_fingerprint != self.inner.schema_fp {
            return Err(RegistryError::SchemaMismatch {
                expected: self.inner.schema_fp,
                got: art.schema_fingerprint,
            });
        }
        let mut shards = self.inner.shards.lock().unwrap_or_else(|e| e.into_inner());
        let seq = shards.seq.max(art.committed_seq);
        let plan = partition(&art.relation, &art.rfds, self.inner.n_shards);
        if let Some(store) = shards.store.as_mut() {
            let old_gen = store.generation;
            let new_gen = old_gen + 1;
            write_shard_snapshots(
                &plan, &art.rfds, &store.layout, &store.source, seq, new_gen, false,
            )?;
            let arity = art.relation.arity();
            let mut wals = Vec::with_capacity(plan.parts.len());
            for k in 0..plan.parts.len() {
                let path = store.layout.shard_wal(new_gen, k);
                // An earlier swap to this generation may have failed
                // before its commit point; a fresh log is wanted either
                // way, and stale or corrupt predecessors being gone is
                // what lets a swap heal a degraded shard.
                let _ = fs::remove_file(&path);
                let (wal, _) = Wal::open(&path, self.inner.schema_fp, seq, arity)
                    .map_err(StoreError::Wal)?;
                wals.push(Some(wal));
            }
            fault::hit("swap.pre_commit").map_err(StoreError::Io)?;
            manifest_of(&plan, self.inner.schema_fp, seq, new_gen)
                .store(&store.layout.manifest())
                .map_err(StoreError::Io)?;
            // Committed. The old generation is garbage from here on.
            store.generation = new_gen;
            store.wals = wals;
            for k in 0..self.inner.n_shards {
                let _ = fs::remove_file(store.layout.shard_snapshot(old_gen, k));
                let _ = fs::remove_file(store.layout.shard_wal(old_gen, k));
            }
        }
        shards.plan = plan;
        shards.sigma = art.rfds;
        shards.seq = seq;
        for s in &self.inner.shard_states {
            s.store(0, Ordering::Release);
        }
        let snap = shards.publish();
        *self.inner.snap.write().unwrap_or_else(|e| e.into_inner()) = snap;
        drop(shards);
        self.inner.swaps.fetch_add(1, Ordering::Relaxed);
        Ok(seq)
    }
}

// ---------------------------------------------------------------- shared

fn manifest_of(plan: &ShardPlan, schema_fp: u64, seq: u64, generation: u64) -> Manifest {
    Manifest {
        schema_fp,
        n_shards: plan.parts.len(),
        seq,
        generation,
        attrs: plan.attrs.clone(),
        assign: plan.locate.iter().map(|&(k, _)| k).collect(),
    }
}

/// Writes one snapshot per shard (temp + fsync + rename + dir fsync)
/// under generation `gen`'s names. `faults` wires the compaction crash
/// points, per shard.
fn write_shard_snapshots(
    plan: &ShardPlan,
    sigma: &RfdSet,
    layout: &ShardLayout,
    source: &str,
    seq: u64,
    gen: u64,
    faults: bool,
) -> Result<(), StoreError> {
    for (k, part) in plan.parts.iter().enumerate() {
        if faults {
            fault::hit("compact.pre_write")?;
        }
        // Dict cap 0: shard snapshots carry no dictionary — the sharded
        // impute path computes distances directly, so rebuilding an
        // oracle here would be pure bloat.
        let oracle = DistanceOracle::build(part, 0);
        let bytes = artifact::encode(part, sigma, &oracle, None, source, seq);
        let path = layout.shard_snapshot(gen, k);
        let mut tmp_os = path.clone().into_os_string();
        tmp_os.push(".tmp");
        let tmp = PathBuf::from(tmp_os);
        fs::write(&tmp, &bytes)?;
        fs::File::open(&tmp)?.sync_all()?;
        if faults {
            fault::hit("compact.pre_rename")?;
        }
        fs::rename(&tmp, &path)?;
        sync_parent_dir(&path);
        if faults {
            fault::hit("compact.shard_done")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use renuver_data::{AttrType, Schema, Value};
    use renuver_rfd::RfdSet;

    fn schema() -> Schema {
        Schema::new([("City", AttrType::Text), ("Zip", AttrType::Text)]).unwrap()
    }

    fn relation() -> Relation {
        let rows = [
            ("Salerno", "84121"),
            ("Salerno", "84121"),
            ("Milano", "20121"),
            ("Milano", "20121"),
            ("Roma", "00142"),
            ("Roma", "00142"),
        ];
        let tuples = rows
            .iter()
            .map(|(c, z)| vec![Value::from(*c), Value::from(*z)])
            .collect();
        Relation::new(schema(), tuples).unwrap()
    }

    fn sigma() -> RfdSet {
        RfdSet::from_text("City(<=0) -> Zip(<=0)\nZip(<=0) -> City(<=0)", &schema()).unwrap()
    }

    fn artifact_bytes(rel: &Relation, seq: u64) -> Vec<u8> {
        let oracle = DistanceOracle::build(rel, 0);
        artifact::encode(rel, &sigma(), &oracle, None, "test", seq)
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("renuver-registry-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn manifest_roundtrips() {
        let m = Manifest {
            schema_fp: 0xdead_beef,
            n_shards: 3,
            seq: 42,
            generation: 7,
            attrs: vec![0, 2],
            assign: vec![0, 1, 2, 1, 0],
        };
        let decoded = Manifest::decode(&m.encode()).unwrap();
        assert_eq!(decoded, m);
    }

    #[test]
    fn manifest_rejects_corruption() {
        let m = Manifest {
            schema_fp: 1,
            n_shards: 2,
            seq: 0,
            generation: 0,
            attrs: vec![0],
            assign: vec![0, 1],
        };
        let mut bytes = m.encode();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        assert!(Manifest::decode(&bytes).is_err());
    }

    #[test]
    fn in_memory_registry_imputes_and_ingests() {
        let reg = Registry::build(&relation(), sigma(), RenuverConfig::default(), 2);
        let snap = reg.snapshot();
        assert_eq!(snap.rows(), 6);
        let cfg = snap.config.clone();
        let out = snap
            .impute(vec![vec![Value::from("Salerno"), Value::Null]], &cfg)
            .unwrap();
        assert_eq!(out.tuples[0][1], Value::from("84121"));
        let outcome = reg
            .ingest(vec![vec![Value::from("Torino"), Value::from("10121")]], &cfg)
            .unwrap();
        assert_eq!(outcome.seq, 1);
        assert_eq!(outcome.donor_rows, 7);
        assert_eq!(reg.snapshot().rows(), 7);
    }

    #[test]
    fn durable_registry_survives_reopen() {
        let dir = tmpdir("reopen");
        let base = dir.join("model.rnv");
        fs::write(&base, artifact_bytes(&relation(), 0)).unwrap();
        let art = artifact::load(&base).unwrap();
        let layout = ShardLayout::beside(&base);
        let (reg, rep) = Registry::open_durable(
            art, RenuverConfig::default(), 2, layout.clone(), "test", 1 << 20, 1 << 20,
        )
        .unwrap();
        assert_eq!(rep.seq, 0);
        let cfg = reg.snapshot().config.clone();
        reg.ingest(vec![vec![Value::from("Torino"), Value::from("10121")]], &cfg).unwrap();
        reg.ingest(vec![vec![Value::from("Napoli"), Value::Null]], &cfg).unwrap();
        let before: Vec<usize> = reg.shard_rows();
        drop(reg);

        let art = artifact::load(&base).unwrap();
        let (reg2, rep2) = Registry::open_durable(
            art, RenuverConfig::default(), 2, layout, "test", 1 << 20, 1 << 20,
        )
        .unwrap();
        assert_eq!(rep2.seq, 2);
        assert_eq!(rep2.replayed, 2);
        assert!(rep2.degraded.is_empty());
        assert_eq!(reg2.shard_rows(), before);
        assert_eq!(reg2.snapshot().rows(), 8);
    }

    #[test]
    fn compaction_resets_wals_and_recovery_skips_folded_batches() {
        let dir = tmpdir("compact");
        let base = dir.join("model.rnv");
        fs::write(&base, artifact_bytes(&relation(), 0)).unwrap();
        let layout = ShardLayout::beside(&base);
        let (reg, _) = Registry::open_durable(
            artifact::load(&base).unwrap(),
            RenuverConfig::default(),
            3,
            layout.clone(),
            "test",
            1 << 20,
            1 << 20,
        )
        .unwrap();
        let cfg = reg.snapshot().config.clone();
        reg.ingest(vec![vec![Value::from("Torino"), Value::from("10121")]], &cfg).unwrap();
        assert_eq!(reg.compact().unwrap(), 1);
        reg.ingest(vec![vec![Value::from("Bari"), Value::from("70121")]], &cfg).unwrap();
        let rows = reg.shard_rows();
        drop(reg);

        let (reg2, rep) = Registry::open_durable(
            artifact::load(&base).unwrap(),
            RenuverConfig::default(),
            3,
            layout,
            "test",
            1 << 20,
            1 << 20,
        )
        .unwrap();
        // Only the post-compaction batch replays.
        assert_eq!(rep.replayed, 1);
        assert_eq!(rep.seq, 2);
        assert_eq!(reg2.shard_rows(), rows);
    }

    #[test]
    fn corrupt_shard_wal_degrades_only_that_shard() {
        let dir = tmpdir("degrade");
        let base = dir.join("model.rnv");
        fs::write(&base, artifact_bytes(&relation(), 0)).unwrap();
        let layout = ShardLayout::beside(&base);
        let (reg, _) = Registry::open_durable(
            artifact::load(&base).unwrap(),
            RenuverConfig::default(),
            2,
            layout.clone(),
            "test",
            1 << 20,
            1 << 20,
        )
        .unwrap();
        let cfg = reg.snapshot().config.clone();
        reg.ingest(vec![vec![Value::from("Torino"), Value::from("10121")]], &cfg).unwrap();
        let rows = reg.snapshot().rows();
        drop(reg);

        // Flip a header byte of shard 1's log: schema fp mismatch.
        let wal_path = layout.shard_wal(0, 1);
        let mut bytes = fs::read(&wal_path).unwrap();
        bytes[9] ^= 0xff;
        fs::write(&wal_path, &bytes).unwrap();

        let (reg2, rep) = Registry::open_durable(
            artifact::load(&base).unwrap(),
            RenuverConfig::default(),
            2,
            layout,
            "test",
            1 << 20,
            1 << 20,
        )
        .unwrap();
        assert_eq!(rep.degraded, vec![1]);
        assert_eq!(
            reg2.shard_states(),
            vec![ShardState::Ok, ShardState::Degraded]
        );
        // State was rebuilt from shard 0's full-batch log.
        assert_eq!(reg2.snapshot().rows(), rows);
        // Ingest is refused while degraded.
        let cfg = reg2.snapshot().config.clone();
        let err = match reg2.ingest(vec![vec![Value::from("Bari"), Value::from("70121")]], &cfg) {
            Err(e) => e,
            Ok(_) => panic!("degraded registry accepted an ingest"),
        };
        assert!(matches!(err, RegistryError::Degraded(ref s) if s == &vec![1]));
    }

    #[test]
    fn swap_replaces_model_and_heals_degraded_shards() {
        let dir = tmpdir("swap");
        let base = dir.join("model.rnv");
        fs::write(&base, artifact_bytes(&relation(), 0)).unwrap();
        let layout = ShardLayout::beside(&base);
        let (reg, _) = Registry::open_durable(
            artifact::load(&base).unwrap(),
            RenuverConfig::default(),
            2,
            layout.clone(),
            "test",
            1 << 20,
            1 << 20,
        )
        .unwrap();
        // A fingerprint mismatch is rejected outright.
        let other_schema =
            Schema::new([("Name", AttrType::Text), ("Klass", AttrType::Int)]).unwrap();
        let other = Relation::new(
            other_schema.clone(),
            vec![vec![Value::from("a"), Value::Int(1)]],
        )
        .unwrap();
        let other_rfds = RfdSet::from_text("Name(<=0) -> Klass(<=0)", &other_schema).unwrap();
        let oracle = DistanceOracle::build(&other, 0);
        let bad = artifact::decode(&artifact::encode(&other, &other_rfds, &oracle, None, "x", 0))
            .unwrap();
        assert!(matches!(reg.swap(bad), Err(RegistryError::SchemaMismatch { .. })));
        assert_eq!(reg.swaps(), 0);

        // A matching swap replaces the relation and bumps the counter.
        let mut bigger = relation();
        bigger.push(vec![Value::from("Bari"), Value::from("70121")]).unwrap();
        let art = artifact::decode(&artifact_bytes(&bigger, 0)).unwrap();
        reg.swap(art).unwrap();
        assert_eq!(reg.swaps(), 1);
        assert_eq!(reg.snapshot().rows(), 7);
        let cfg = reg.snapshot().config.clone();
        reg.ingest(vec![vec![Value::from("Torino"), Value::from("10121")]], &cfg).unwrap();
        assert_eq!(reg.snapshot().rows(), 8);
    }

    #[test]
    fn recover_rejects_out_of_range_partition_attrs() {
        let dir = tmpdir("bad-attrs");
        let base = dir.join("model.rnv");
        fs::write(&base, artifact_bytes(&relation(), 0)).unwrap();
        let layout = ShardLayout::beside(&base);
        let (reg, _) = Registry::open_durable(
            artifact::load(&base).unwrap(),
            RenuverConfig::default(),
            2,
            layout.clone(),
            "test",
            1 << 20,
            1 << 20,
        )
        .unwrap();
        drop(reg);

        // A manifest whose partition attrs point past the model's arity
        // must be refused cleanly, not panic inside `shard_of`.
        let mut m = Manifest::load(&layout.manifest()).unwrap();
        m.attrs = vec![7];
        m.store(&layout.manifest()).unwrap();
        let err = match Registry::open_durable(
            artifact::load(&base).unwrap(),
            RenuverConfig::default(),
            2,
            layout,
            "test",
            1 << 20,
            1 << 20,
        ) {
            Err(e) => e,
            Ok(_) => panic!("manifest with out-of-range attrs was accepted"),
        };
        assert!(
            matches!(err, RegistryError::Manifest(ref m) if m.contains("out of range")),
            "{err}"
        );
    }

    #[test]
    fn mid_fanout_append_failure_degrades_and_blocks_ingest_without_forking() {
        let dir = tmpdir("fanout");
        let base = dir.join("model.rnv");
        fs::write(&base, artifact_bytes(&relation(), 0)).unwrap();
        let layout = ShardLayout::beside(&base);
        let (reg, _) = Registry::open_durable(
            artifact::load(&base).unwrap(),
            RenuverConfig::default(),
            2,
            layout.clone(),
            "test",
            1 << 20,
            1 << 20,
        )
        .unwrap();
        let cfg = reg.snapshot().config.clone();
        reg.ingest(vec![vec![Value::from("Torino"), Value::from("10121")]], &cfg).unwrap();

        // Shard 1's append fails after shard 0 already logged the frame:
        // the batch must not be acknowledged and shard 1 degrades.
        fault::arm("registry.append.shard1", fault::Action::Err);
        let err = match reg.ingest(vec![vec![Value::from("Bari"), Value::from("70121")]], &cfg) {
            Err(e) => e,
            Ok(_) => panic!("fan-out failure was acknowledged"),
        };
        fault::disarm("registry.append.shard1");
        assert!(matches!(err, RegistryError::Store(_)), "{err}");
        assert_eq!(reg.shard_states(), vec![ShardState::Ok, ShardState::Degraded]);
        assert_eq!(reg.snapshot().seq, 1, "failed fan-out must not advance the seq");
        assert_eq!(reg.snapshot().rows(), 7);

        // The next ingest is refused under the commit lock — the None
        // slot is a hard error, never a silent skip.
        let err = match reg.ingest(vec![vec![Value::from("Bari"), Value::from("70121")]], &cfg) {
            Err(e) => e,
            Ok(_) => panic!("degraded registry accepted an ingest"),
        };
        assert!(matches!(err, RegistryError::Degraded(ref s) if s == &vec![1]), "{err}");
        drop(reg);

        // Recovery truncates shard 0's orphan frame (it sits beyond the
        // committed horizon) instead of forking the logs.
        let (reg2, rep) = Registry::open_durable(
            artifact::load(&base).unwrap(),
            RenuverConfig::default(),
            2,
            layout,
            "test",
            1 << 20,
            1 << 20,
        )
        .unwrap();
        assert_eq!(rep.seq, 1);
        assert_eq!(rep.replayed, 1);
        assert!(rep.degraded.is_empty());
        assert!(rep.normalized, "the orphan frame leaves the logs mixed");
        assert_eq!(reg2.snapshot().rows(), 7);
        let cfg = reg2.snapshot().config.clone();
        let outcome = reg2
            .ingest(vec![vec![Value::from("Bari"), Value::from("70121")]], &cfg)
            .unwrap();
        assert_eq!(outcome.seq, 2);
    }

    #[test]
    fn interrupted_swap_preserves_the_old_generation() {
        let dir = tmpdir("swap-interrupt");
        let base = dir.join("model.rnv");
        fs::write(&base, artifact_bytes(&relation(), 0)).unwrap();
        let layout = ShardLayout::beside(&base);
        let (reg, _) = Registry::open_durable(
            artifact::load(&base).unwrap(),
            RenuverConfig::default(),
            2,
            layout.clone(),
            "test",
            1 << 20,
            1 << 20,
        )
        .unwrap();
        let cfg = reg.snapshot().config.clone();
        reg.ingest(vec![vec![Value::from("Torino"), Value::from("10121")]], &cfg).unwrap();

        // The swap dies after writing the whole generation-1 layout but
        // before the manifest commit: the disk state equals a crash in
        // that window, and the old generation must win.
        let mut bigger = relation();
        bigger.push(vec![Value::from("Bari"), Value::from("70121")]).unwrap();
        let art = artifact::decode(&artifact_bytes(&bigger, 0)).unwrap();
        fault::arm("swap.pre_commit", fault::Action::Err);
        let err = reg.swap(art).unwrap_err();
        fault::disarm("swap.pre_commit");
        assert!(matches!(err, RegistryError::Store(_)), "{err}");
        assert_eq!(reg.swaps(), 0);
        assert_eq!(reg.snapshot().rows(), 7, "a failed swap must not change the model");
        assert!(
            layout.shard_snapshot(1, 0).exists(),
            "the aborted generation's files linger until the sweep"
        );
        // The old generation's WALs still accept commits.
        reg.ingest(vec![vec![Value::from("Napoli"), Value::from("80121")]], &cfg).unwrap();
        drop(reg);

        // Recovery reads the old manifest, replays both acknowledged
        // batches, and sweeps the orphaned generation-1 files.
        let (reg2, rep) = Registry::open_durable(
            artifact::load(&base).unwrap(),
            RenuverConfig::default(),
            2,
            layout.clone(),
            "test",
            1 << 20,
            1 << 20,
        )
        .unwrap();
        assert_eq!(rep.seq, 2);
        assert_eq!(rep.replayed, 2);
        assert_eq!(reg2.snapshot().rows(), 8);
        assert!(!layout.shard_snapshot(1, 0).exists());
        assert!(!layout.shard_wal(1, 0).exists());
    }

    #[test]
    fn committed_swap_is_atomic_across_reopen_and_sweeps_the_old_generation() {
        let dir = tmpdir("swap-commit");
        let base = dir.join("model.rnv");
        fs::write(&base, artifact_bytes(&relation(), 0)).unwrap();
        let layout = ShardLayout::beside(&base);
        let (reg, _) = Registry::open_durable(
            artifact::load(&base).unwrap(),
            RenuverConfig::default(),
            2,
            layout.clone(),
            "test",
            1 << 20,
            1 << 20,
        )
        .unwrap();
        let cfg = reg.snapshot().config.clone();
        reg.ingest(vec![vec![Value::from("Torino"), Value::from("10121")]], &cfg).unwrap();

        let mut bigger = relation();
        bigger.push(vec![Value::from("Bari"), Value::from("70121")]).unwrap();
        let art = artifact::decode(&artifact_bytes(&bigger, 0)).unwrap();
        assert_eq!(reg.swap(art).unwrap(), 1);
        assert_eq!(Manifest::load(&layout.manifest()).unwrap().generation, 1);
        assert!(layout.shard_snapshot(1, 0).exists());
        assert!(!layout.shard_snapshot(0, 0).exists(), "old generation swept after commit");
        assert!(!layout.shard_wal(0, 0).exists());
        reg.ingest(vec![vec![Value::from("Napoli"), Value::from("80121")]], &cfg).unwrap();
        drop(reg);

        let (reg2, rep) = Registry::open_durable(
            artifact::load(&base).unwrap(),
            RenuverConfig::default(),
            2,
            layout,
            "test",
            1 << 20,
            1 << 20,
        )
        .unwrap();
        assert_eq!(rep.seq, 2);
        assert_eq!(rep.replayed, 1);
        // 7 swapped-in rows + the post-swap batch.
        assert_eq!(reg2.snapshot().rows(), 8);
    }
}
