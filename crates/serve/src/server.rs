//! The TCP server: accept loop, worker pool, load shedding, shutdown.
//!
//! Std-only by necessity (the build container is offline), so the shape
//! is deliberately boring and auditable:
//!
//! - A non-blocking accept loop on the main thread polls the listener
//!   and a shutdown flag (set by SIGINT/SIGTERM or programmatically).
//! - Accepted connections go into a **bounded** queue feeding a fixed
//!   pool of worker threads. When the queue is full the accept loop
//!   itself writes `503 Service Unavailable` with `Retry-After` and
//!   closes the connection — load is shed at the door, cheaply, instead
//!   of growing an unbounded backlog.
//! - Workers run a keep-alive loop per connection: read request, route,
//!   write response, until the peer closes or asks to.
//! - Shutdown is graceful: the accept loop stops, the queue sender is
//!   dropped, and workers drain what was already accepted before the
//!   process exits.

use std::io::{BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::http::{self, HttpError, Response};
use crate::router::{route, Ctx};

/// Server tuning knobs.
pub struct ServeConfig {
    /// Address to bind, e.g. `127.0.0.1:7171`. Port `0` picks one.
    pub addr: String,
    /// Worker threads handling connections.
    pub workers: usize,
    /// Bounded accept queue depth; connections beyond it are shed with
    /// `503` + `Retry-After`.
    pub queue: usize,
    /// Maximum accepted request body, bytes.
    pub max_body: usize,
    /// Seconds suggested in `Retry-After` when shedding.
    pub retry_after_secs: u64,
    /// Per-connection read deadline, seconds. A peer that stalls
    /// mid-request (slow-loris) past this gets `408 Request Timeout`
    /// and the connection is closed.
    pub read_timeout_secs: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7171".into(),
            workers: 4,
            queue: 64,
            max_body: 4 * 1024 * 1024,
            retry_after_secs: 1,
            read_timeout_secs: 10,
        }
    }
}

/// Process-wide shutdown flag, set by the signal handler. Registered
/// handlers can only touch async-signal-safe state; a relaxed atomic
/// store qualifies.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Process-wide reload request, set by SIGHUP. The accept loop polls it
/// and re-reads the model artifact from its recorded path — a zero-
/// downtime swap through the same guarded path as `PUT /v1/model`.
static RELOAD: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
extern "C" fn on_signal(_signum: i32) {
    SHUTDOWN.store(true, Ordering::Relaxed);
}

#[cfg(unix)]
extern "C" fn on_reload(_signum: i32) {
    RELOAD.store(true, Ordering::Relaxed);
}

/// Installs `SIGINT`/`SIGTERM` handlers that request a graceful
/// shutdown and a `SIGHUP` handler that requests a model reload. The
/// `signal` symbol comes from the libc std already links; no crate
/// dependency.
#[cfg(unix)]
pub fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGHUP: i32 = 1;
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGHUP, on_reload as extern "C" fn(i32) as usize);
        signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
        signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
    }
}

/// Non-unix builds run without signal-driven shutdown; tests use
/// [`Server::shutdown_handle`] instead.
#[cfg(not(unix))]
pub fn install_signal_handlers() {}

/// A bound server, ready to [`Server::run`].
pub struct Server {
    listener: TcpListener,
    config: ServeConfig,
    ctx: Arc<Ctx>,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Binds the configured address. The listener is non-blocking so the
    /// accept loop can poll the shutdown flag.
    pub fn bind(config: ServeConfig, ctx: Arc<Ctx>) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        // Lets request handlers (the tune-job submit) spawn worker
        // threads that own the context beyond their request's lifetime.
        ctx.bind_self();
        Ok(Server {
            listener,
            config,
            ctx,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (useful with port `0`).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A flag tests (or an embedding process) can set to stop the server
    /// without a signal.
    pub fn shutdown_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    fn should_stop(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed) || SHUTDOWN.load(Ordering::Relaxed)
    }

    /// Serves until shutdown is requested, then drains in-flight
    /// connections and returns. Returns the number of connections shed.
    pub fn run(self) -> std::io::Result<u64> {
        let (tx, rx) = sync_channel::<TcpStream>(self.config.queue);
        let rx = Arc::new(Mutex::new(rx));
        let mut workers = Vec::with_capacity(self.config.workers);
        for i in 0..self.config.workers.max(1) {
            let rx = Arc::clone(&rx);
            let ctx = Arc::clone(&self.ctx);
            let max_body = self.config.max_body;
            let read_timeout = Duration::from_secs(self.config.read_timeout_secs.max(1));
            workers.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &ctx, max_body, read_timeout))?,
            );
        }

        let mut shed: u64 = 0;
        loop {
            if self.should_stop() {
                break;
            }
            if RELOAD.swap(false, Ordering::Relaxed) {
                // Workers keep serving the old snapshot while the swap
                // runs here; only new accepts wait behind it.
                crate::router::reload_from_path(&self.ctx);
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    match tx.try_send(stream) {
                        Ok(()) => {}
                        Err(TrySendError::Full(stream)) => {
                            shed += 1;
                            self.ctx.metrics.counter("http.shed").inc();
                            self.ctx.server_event("shed", vec![(
                                "seq",
                                renuver_obs::FieldValue::U64(shed),
                            )]);
                            shed_connection(stream, self.config.retry_after_secs);
                        }
                        Err(TrySendError::Disconnected(_)) => break,
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }

        // Graceful drain: close the queue (workers exit once it is
        // empty), then wait for every in-flight connection to finish.
        drop(tx);
        for w in workers {
            let _ = w.join();
        }
        // A running tune job is cancelled and joined, so its partial
        // report and terminal event-log lines land before we exit.
        self.ctx.jobs().shutdown();
        Ok(shed)
    }
}

/// Sheds one connection with `503` + `Retry-After`, without consuming a
/// queue slot or a worker (the queue really was full at accept time).
///
/// The write-and-drain runs on a short-lived thread: the client is
/// usually mid-request, and closing a socket with an unread request body
/// sends an RST that can destroy the 503 before the client reads it. A
/// half-close (`shutdown(Write)`) followed by draining the client's
/// bytes lets the response land; doing that inline would stall the
/// accept loop on slow peers.
fn shed_connection(mut stream: TcpStream, retry_after_secs: u64) {
    let work = move || {
        let _ = stream.set_nonblocking(false);
        let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
        let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
        let _ = stream.set_nodelay(true);
        let mut resp = Response::text(503, "server at capacity, retry shortly\n");
        resp.extra_headers.push(("Retry-After", retry_after_secs.to_string()));
        let _ = http::write_response(&mut stream, &resp, true);
        let _ = stream.shutdown(std::net::Shutdown::Write);
        let mut sink = [0u8; 8192];
        while matches!(std::io::Read::read(&mut stream, &mut sink), Ok(n) if n > 0) {}
    };
    // Thread exhaustion under extreme overload drops the connection
    // without a response (the client sees a reset) — nothing better to
    // do at that point.
    let _ = std::thread::Builder::new().name("serve-shed".into()).spawn(work);
}

/// One worker: pull connections off the shared queue until it closes.
fn worker_loop(
    rx: &Mutex<Receiver<TcpStream>>,
    ctx: &Ctx,
    max_body: usize,
    read_timeout: Duration,
) {
    loop {
        // Hold the lock only for the recv; handling happens unlocked.
        let stream = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return,
        };
        match stream {
            Ok(stream) => handle_connection(stream, ctx, max_body, read_timeout),
            Err(_) => return, // queue closed: shutdown
        }
    }
}

/// Whether a read failure was the socket deadline expiring (the kind
/// differs by platform: `WouldBlock` on unix, `TimedOut` elsewhere).
fn is_read_deadline(err: &HttpError) -> bool {
    matches!(
        err,
        HttpError::Io(e) if matches!(
            e.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        )
    )
}

/// Serves one connection's keep-alive session.
fn handle_connection(stream: TcpStream, ctx: &Ctx, max_body: usize, read_timeout: Duration) {
    // Idle/slowloris guard: a connection that stops sending mid-request
    // is answered with 408 and dropped rather than pinning a worker
    // forever (accounted under `http.timeouts`).
    let _ = stream.set_read_timeout(Some(read_timeout));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    // Buffer the response into one segment and disable Nagle, or the
    // header-by-header writes interact with delayed ACKs into ~40 ms
    // per-request stalls on loopback.
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => std::io::BufWriter::new(w),
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let started = std::time::Instant::now();
        match http::read_request(&mut reader, max_body) {
            Ok(req) => {
                let close = req.wants_close();
                let resp = route(ctx, &req);
                if http::write_response(&mut writer, &resp, close).is_err() || close {
                    return;
                }
            }
            Err(HttpError::Closed) => return,
            Err(err) => {
                // Protocol-level failure: answer with the right status
                // and drop the connection (framing may be lost).
                let status = if is_read_deadline(&err) {
                    ctx.metrics.counter("http.timeouts").inc();
                    ctx.server_event("read_timeout", vec![(
                        "detail",
                        renuver_obs::FieldValue::Text(format!(
                            "read deadline {}s",
                            read_timeout.as_secs()
                        )),
                    )]);
                    408
                } else {
                    match &err {
                        HttpError::BodyTooLarge { .. } => 413,
                        HttpError::HeadersTooLarge => 431,
                        _ => 400,
                    }
                };
                ctx.metrics.counter("http.requests").inc();
                ctx.metrics.counter("http.responses_4xx").inc();
                let body = if status == 408 {
                    format!("request read deadline ({}s) exceeded\n", read_timeout.as_secs())
                } else {
                    format!("{err}\n")
                };
                let mut resp = Response::text(status, body);
                crate::router::record_protocol_error(ctx, &mut resp, started, 0);
                let _ = http::write_response(&mut writer, &resp, true);
                let _ = writer.flush();
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::ModelInfo;
    use renuver_core::{Engine, RenuverConfig};
    use renuver_data::csv;
    use renuver_rfd::{Constraint, Rfd, RfdSet};
    use std::io::{BufRead, Read};

    fn test_ctx() -> Arc<Ctx> {
        let rel = csv::read_str(
            "City:text,Zip:text\nMalibu,90265\nMalibu,90265\nHollywood,90028\n",
        )
        .unwrap();
        let rfds = RfdSet::from_vec(vec![Rfd::new(
            vec![Constraint::new(0, 0.0)],
            Constraint::new(1, 0.0),
        )]);
        let engine = Engine::prepare(rel, rfds, RenuverConfig::default());
        Arc::new(Ctx::new(
            engine,
            ModelInfo { source: "test".into(), schema_fingerprint: 0, artifact_bytes: 0 },
            None,
            60_000,
        ))
    }

    fn start(config: ServeConfig) -> (std::net::SocketAddr, Arc<AtomicBool>, std::thread::JoinHandle<u64>) {
        let server = Server::bind(config, test_ctx()).unwrap();
        let addr = server.local_addr().unwrap();
        let stop = server.shutdown_handle();
        let handle = std::thread::spawn(move || server.run().unwrap());
        (addr, stop, handle)
    }

    fn request(addr: std::net::SocketAddr, raw: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(raw.as_bytes()).unwrap();
        let mut reader = BufReader::new(stream);
        let mut status_line = String::new();
        reader.read_line(&mut status_line).unwrap();
        let status: u16 = status_line.split_whitespace().nth(1).unwrap().parse().unwrap();
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            if line.trim().is_empty() {
                break;
            }
            if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = v.trim().parse().unwrap();
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).unwrap();
        (status, String::from_utf8(body).unwrap())
    }

    #[test]
    fn serves_and_shuts_down_gracefully() {
        let (addr, stop, handle) = start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            ..ServeConfig::default()
        });
        let (status, body) = request(addr, "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert_eq!(status, 200);
        assert!(body.contains("\"state\":\"ok\""), "{body}");
        let (status, body) = request(
            addr,
            "POST /v1/impute HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: 30\r\nConnection: close\r\n\r\n{\"tuples\": [[\"Malibu\", null]]}",
        );
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("90265"), "{body}");
        stop.store(true, Ordering::Relaxed);
        let shed = handle.join().unwrap();
        assert_eq!(shed, 0);
    }

    #[test]
    fn keep_alive_serves_multiple_requests() {
        let (addr, stop, handle) = start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            ..ServeConfig::default()
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\n\r\nGET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut text = String::new();
        BufReader::new(stream).read_to_string(&mut text).unwrap();
        assert_eq!(text.matches("HTTP/1.1 200 OK").count(), 2, "{text}");
        stop.store(true, Ordering::Relaxed);
        handle.join().unwrap();
    }

    #[test]
    fn stalled_requests_get_408_and_are_counted() {
        let server = Server::bind(
            ServeConfig {
                addr: "127.0.0.1:0".into(),
                workers: 1,
                read_timeout_secs: 1,
                ..ServeConfig::default()
            },
            test_ctx(),
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let ctx = Arc::clone(&server.ctx);
        let stop = server.shutdown_handle();
        let handle = std::thread::spawn(move || server.run().unwrap());

        // Slow-loris: open a request and stop mid-header, forever.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"GET /healthz HTTP/1.1\r\nX-Stall: ye").unwrap();
        let mut reader = BufReader::new(stream);
        let mut status_line = String::new();
        reader.read_line(&mut status_line).unwrap();
        assert!(status_line.starts_with("HTTP/1.1 408 "), "{status_line}");
        assert_eq!(ctx.metrics.counter("http.timeouts").get(), 1);

        stop.store(true, Ordering::Relaxed);
        handle.join().unwrap();
    }

    #[test]
    fn oversized_bodies_get_413() {
        let (addr, stop, handle) = start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            max_body: 64,
            ..ServeConfig::default()
        });
        let (status, _) = request(
            addr,
            "POST /v1/impute HTTP/1.1\r\nContent-Length: 100000\r\nConnection: close\r\n\r\n",
        );
        assert_eq!(status, 413);
        stop.store(true, Ordering::Relaxed);
        handle.join().unwrap();
    }
}
