//! Imputation-as-a-service: versioned model artifacts and an HTTP server.
//!
//! RENUVER's preparation work — RFD discovery, the dictionary-encoded
//! distance matrices, the similarity index — dwarfs the per-tuple
//! imputation cost, which makes the train-once / serve-many split
//! natural. This crate supplies both halves:
//!
//! - [`artifact`] — a versioned, checksummed single-file snapshot
//!   (`.rnv`) of a prepared model: relation + RFD set + oracle + index.
//!   Loading skips every quadratic build step and answers bit-for-bit
//!   identically to a fresh build.
//! - [`wal`], [`store`], [`fault`] — the durable write path: every
//!   accepted ingest batch is fsynced into a CRC-framed write-ahead log
//!   before the client sees a success response, a background compactor
//!   folds the log back into the snapshot via atomic rename, and
//!   recovery replays the log through the same deterministic commit
//!   code the live server runs — so a restart after a crash at *any*
//!   point yields an engine bit-identical to one that never crashed.
//!   [`fault`] is the injection harness the crash-recovery test matrix
//!   drives.
//! - [`registry`] — the sharded topology (`serve --shards N`): N shard
//!   engines partitioned by RFD left-hand-side values behind an
//!   immutable published snapshot, so imputes run lock-free and merge
//!   bit-identically to a single engine. Per-shard WALs each log the
//!   full batch (any healthy log rebuilds a dead sibling's tail),
//!   compaction runs off-request, and `PUT /v1/model` / `SIGHUP`
//!   atomically swap the serving model with zero downtime, guarded by
//!   the schema fingerprint.
//! - [`jobs`] — the single-flight async job registry behind
//!   `POST /v1/tune`: one background tune at a time, monotonic ids,
//!   poll/cancel via `GET`/`DELETE /v1/tune/<id>`, budget-based
//!   cancellation with partial reports, and a graceful-drain join so
//!   shutdown never orphans a running job. A finished tune can install
//!   its winning thresholds through the same checked swap path as
//!   `PUT /v1/model`.
//! - [`http`], [`server`], [`router`] — a dependency-free HTTP/1.1
//!   server (the build container is offline; `std::net` is all there
//!   is) with a fixed worker pool, a bounded accept queue that sheds
//!   load with `503` + `Retry-After`, per-request execution budgets,
//!   and graceful drain on SIGTERM.
//!
//! The CLI front ends are `renuver prepare` (dataset → artifact),
//! `renuver inspect` (artifact → summary), `renuver ingest` (batch →
//! repaired, WAL-committed model growth), and `renuver serve` (artifact
//! or dataset → listening server).

pub mod artifact;
mod codec;
pub mod fault;
pub mod flight;
pub mod http;
pub mod jobs;
pub mod registry;
pub mod router;
pub mod server;
pub mod store;
pub mod wal;

pub use artifact::{Artifact, ArtifactError, ArtifactInfo};
pub use flight::{FlightOptions, FlightRecorder, SlowEntry};
pub use jobs::{JobState, JobStatus, TuneJobs};
pub use registry::{
    IngestOutcome, Manifest, Registry, RegistryError, ShardLayout, ShardRecovery, ShardState, Snap,
};
pub use router::{Ctx, ModelInfo, ServeState, Topology};
pub use server::{install_signal_handlers, ServeConfig, Server};
pub use store::{Durable, DurabilityOptions, RecoveryReport, StoreError};
pub use wal::{Wal, WalError, WalRecord};
