//! The shared binary codec under both on-disk formats in this crate:
//! model artifacts (`.rnv`, [`crate::artifact`]) and the write-ahead log
//! (`.wal`, [`crate::wal`]). One encoder/decoder pair means a tuple is
//! laid out bit-identically whether it travels in a snapshot's relation
//! section or in a WAL frame — which is what lets the recovery path
//! replay WAL records through the exact commit code the live server
//! runs, and lets the differential tests compare artifacts byte for
//! byte.
//!
//! All integers are little-endian; strings are u32-length-prefixed
//! UTF-8; values carry a one-byte tag (0 null, 1 int i64, 2 float f64
//! bits, 3 text, 4 bool u8). The reader is bounds-checked: every length
//! prefix is validated against the bytes actually remaining *before*
//! anything is allocated, so hostile lengths cannot trigger oversized
//! allocations — decoding corrupt input yields a typed
//! [`ArtifactError`], never a panic.

use renuver_data::Value;
use renuver_rfd::Constraint;

use crate::artifact::ArtifactError;

/// Append-only encoder over a growable byte buffer.
pub(crate) struct Writer {
    pub(crate) buf: Vec<u8>,
}

impl Writer {
    pub(crate) fn new() -> Writer {
        Writer { buf: Vec::new() }
    }
    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
    pub(crate) fn value(&mut self, v: &Value) {
        match v {
            Value::Null => self.u8(0),
            Value::Int(i) => {
                self.u8(1);
                self.buf.extend_from_slice(&i.to_le_bytes());
            }
            Value::Float(f) => {
                self.u8(2);
                self.u64(f.to_bits());
            }
            Value::Text(s) => {
                self.u8(3);
                self.str(s);
            }
            Value::Bool(b) => {
                self.u8(4);
                self.u8(u8::from(*b));
            }
        }
    }
    pub(crate) fn constraint(&mut self, c: Constraint) {
        self.u32(c.attr as u32);
        self.u64(c.threshold.to_bits());
    }
}

/// Bounds-checked reader over encoded bytes (see module docs).
pub(crate) struct Cursor<'a> {
    pub(crate) buf: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], ArtifactError> {
        if self.remaining() < n {
            return Err(ArtifactError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    pub(crate) fn u8(&mut self) -> Result<u8, ArtifactError> {
        Ok(self.take(1)?[0])
    }
    pub(crate) fn u32(&mut self) -> Result<u32, ArtifactError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    pub(crate) fn u64(&mut self) -> Result<u64, ArtifactError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    pub(crate) fn i64(&mut self) -> Result<i64, ArtifactError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    /// A length prefix for items of at least `min_item_bytes` each:
    /// rejected up front if the remaining bytes cannot possibly hold it.
    pub(crate) fn len(&mut self, min_item_bytes: usize) -> Result<usize, ArtifactError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_item_bytes.max(1)) > self.remaining() {
            return Err(ArtifactError::Truncated);
        }
        Ok(n)
    }
    pub(crate) fn str(&mut self) -> Result<String, ArtifactError> {
        let n = self.len(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ArtifactError::Corrupt("string is not UTF-8".into()))
    }
    pub(crate) fn value(&mut self) -> Result<Value, ArtifactError> {
        Ok(match self.u8()? {
            0 => Value::Null,
            1 => Value::Int(self.i64()?),
            2 => Value::Float(f64::from_bits(self.u64()?)),
            3 => Value::Text(self.str()?),
            4 => Value::Bool(self.u8()? != 0),
            tag => return Err(ArtifactError::Corrupt(format!("unknown value tag {tag}"))),
        })
    }
    pub(crate) fn constraint(&mut self, arity: usize) -> Result<Constraint, ArtifactError> {
        let attr = self.u32()? as usize;
        let threshold = f64::from_bits(self.u64()?);
        if attr >= arity {
            return Err(ArtifactError::Corrupt(format!(
                "constraint attribute {attr} out of range for arity {arity}"
            )));
        }
        Ok(Constraint::new(attr, threshold))
    }
}
