//! Write-ahead log for the durable ingest path (`.wal`).
//!
//! Every accepted ingest batch is appended to the WAL — as the
//! *repaired* tuples, post-imputation — and fsynced **before** the
//! client sees a success response. Replay therefore never re-runs
//! imputation: recovery feeds each record's tuples through the same
//! deterministic `Engine::commit_tuples` the live server used, so a
//! recovered engine is bit-identical to one that never crashed (the
//! property `tests/wal_recovery.rs` asserts across the fault matrix).
//!
//! # Format (version 1)
//!
//! ```text
//! header
//!   magic        b"RNWL"             4 bytes
//!   version      u32 LE              = 1
//!   schema fp    u64 LE              must match the model artifact
//!   base seq     u64 LE              committed_seq of the snapshot this
//!                                    log was opened (or reset) against
//! frames, each:
//!   payload len  u32 LE
//!   seq          u64 LE              strictly increasing from base+1
//!   payload      u32 rows; rows × arity values in the artifact codec
//!   crc          u32 LE              CRC-32 over len ‖ seq ‖ payload
//! ```
//!
//! # Torn tails
//!
//! A crash can leave a partial frame at the end of the log (the frame
//! was being written when the machine died — by the fsync-before-ack
//! rule, no client was ever told it succeeded). [`Wal::open`] scans
//! frames in order and, at the first frame that is incomplete, fails
//! its CRC, or breaks the sequence, truncates the file back to the last
//! good frame boundary and carries on. Truncation is bounded to the
//! tail: a CRC-*valid* frame whose payload does not decode is not a
//! torn write but evidence of a foreign or buggy writer, and is
//! reported as [`WalError::Corrupt`] instead of being dropped.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use renuver_data::Tuple;

use crate::artifact::{crc32, ArtifactError};
use crate::codec::{Cursor, Writer};
use crate::fault;

/// The WAL file magic, `b"RNWL"`.
pub const WAL_MAGIC: [u8; 4] = *b"RNWL";
/// The WAL format version this build writes and the only one it reads.
pub const WAL_VERSION: u32 = 1;
/// Header size in bytes: magic + version + schema fp + base seq.
pub const WAL_HEADER_BYTES: u64 = 4 + 4 + 8 + 8;

/// Why a WAL failed to open or append.
#[derive(Debug)]
pub enum WalError {
    /// Filesystem error.
    Io(std::io::Error),
    /// The file exists but does not start with [`WAL_MAGIC`].
    BadMagic,
    /// The header's format version is not [`WAL_VERSION`].
    UnsupportedVersion(u32),
    /// The header's schema fingerprint does not match the model's.
    SchemaMismatch { expected: u64, found: u64 },
    /// The WAL was reset against a snapshot *newer* than the one now
    /// being recovered — the snapshot and log are from different
    /// lineages and replaying would lose acknowledged batches.
    SnapshotBehind { wal_base: u64, snapshot_seq: u64 },
    /// A CRC-valid frame whose payload does not decode (see module
    /// docs — this is not a torn tail and is never auto-truncated).
    Corrupt(String),
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o error: {e}"),
            WalError::BadMagic => write!(f, "not a renuver wal (bad magic)"),
            WalError::UnsupportedVersion(v) => {
                write!(f, "unsupported wal version {v} (this build reads {WAL_VERSION})")
            }
            WalError::SchemaMismatch { expected, found } => write!(
                f,
                "wal schema fingerprint mismatch (model {expected:#018x}, wal {found:#018x})"
            ),
            WalError::SnapshotBehind { wal_base, snapshot_seq } => write!(
                f,
                "wal base sequence {wal_base} is ahead of snapshot sequence {snapshot_seq}: \
                 the snapshot is stale for this log"
            ),
            WalError::Corrupt(msg) => write!(f, "wal corrupt: {msg}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

/// One replayable record: the repaired tuples of an acknowledged batch.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// The batch's sequence number (strictly increasing per log).
    pub seq: u64,
    /// The repaired tuples exactly as committed by the live engine.
    pub tuples: Vec<Tuple>,
}

/// An open write-ahead log with an append handle.
pub struct Wal {
    file: File,
    path: PathBuf,
    schema_fp: u64,
    arity: usize,
    last_seq: u64,
    base_seq: u64,
    bytes: u64,
    records: u64,
}

/// Best-effort fsync of `path`'s parent directory, so a just-created or
/// just-renamed file survives a crash of the directory entry itself.
/// Errors are ignored: not every filesystem supports directory fsync.
pub(crate) fn sync_parent_dir(path: &Path) {
    if let Some(parent) = path.parent() {
        let dir = if parent.as_os_str().is_empty() { Path::new(".") } else { parent };
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
}

fn encode_header(schema_fp: u64, base_seq: u64) -> Vec<u8> {
    let mut w = Writer::new();
    w.buf.extend_from_slice(&WAL_MAGIC);
    w.u32(WAL_VERSION);
    w.u64(schema_fp);
    w.u64(base_seq);
    w.buf
}

fn encode_payload(tuples: &[Tuple]) -> Vec<u8> {
    let mut w = Writer::new();
    w.u32(tuples.len() as u32);
    for t in tuples {
        for v in t {
            w.value(v);
        }
    }
    w.buf
}

fn decode_payload(payload: &[u8], arity: usize) -> Result<Vec<Tuple>, ArtifactError> {
    let mut c = Cursor { buf: payload, pos: 0 };
    let rows = c.len(arity)?;
    let mut tuples = Vec::with_capacity(rows);
    for _ in 0..rows {
        let mut t = Tuple::with_capacity(arity);
        for _ in 0..arity {
            t.push(c.value()?);
        }
        tuples.push(t);
    }
    if c.remaining() != 0 {
        return Err(ArtifactError::Corrupt(format!(
            "{} trailing bytes after the last tuple",
            c.remaining()
        )));
    }
    Ok(tuples)
}

fn frame_bytes(seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut w = Writer::new();
    w.u32(payload.len() as u32);
    w.u64(seq);
    w.buf.extend_from_slice(payload);
    let crc = crc32(&w.buf);
    w.u32(crc);
    w.buf
}

impl Wal {
    /// Opens (or creates) the WAL at `path` for a model whose snapshot
    /// carries `snapshot_seq`, and returns the records recovery must
    /// replay on top of that snapshot — frames with `seq >
    /// snapshot_seq`, in order. Torn tails are truncated (see module
    /// docs); a file that is not a WAL for this schema is an error.
    pub fn open(
        path: impl Into<PathBuf>,
        schema_fp: u64,
        snapshot_seq: u64,
        arity: usize,
    ) -> Result<(Wal, Vec<WalRecord>), WalError> {
        let path = path.into();
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e.into()),
        };

        // A file shorter than the header means creation itself crashed:
        // no frame — hence no acknowledged batch — can exist in it.
        if (bytes.len() as u64) < WAL_HEADER_BYTES {
            if !bytes.is_empty() && !WAL_MAGIC.starts_with(&bytes[..bytes.len().min(4)]) {
                return Err(WalError::BadMagic);
            }
            return Self::create(path, schema_fp, snapshot_seq, arity);
        }
        if bytes[..4] != WAL_MAGIC {
            return Err(WalError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        if version != WAL_VERSION {
            return Err(WalError::UnsupportedVersion(version));
        }
        let found_fp = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
        if found_fp != schema_fp {
            return Err(WalError::SchemaMismatch { expected: schema_fp, found: found_fp });
        }
        let base_seq = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
        if base_seq > snapshot_seq {
            return Err(WalError::SnapshotBehind { wal_base: base_seq, snapshot_seq });
        }

        // Scan frames; `good_end` tracks the last complete, CRC-valid,
        // sequence-consistent frame boundary.
        let mut good_end = WAL_HEADER_BYTES as usize;
        let mut last_seq = base_seq;
        let mut records = Vec::new();
        let mut record_count: u64 = 0;
        loop {
            let rest = &bytes[good_end..];
            if rest.is_empty() {
                break;
            }
            if rest.len() < 4 {
                break; // partial length prefix — torn
            }
            let payload_len = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
            let Some(frame_len) = payload_len.checked_add(4 + 8 + 4) else { break };
            if rest.len() < frame_len {
                break; // frame promised more bytes than the file holds — torn
            }
            let (body, crc_bytes) = rest[..frame_len].split_at(frame_len - 4);
            let stored_crc = u32::from_le_bytes(crc_bytes.try_into().unwrap());
            if crc32(body) != stored_crc {
                break; // bit rot or torn write inside the frame
            }
            let seq = u64::from_le_bytes(body[4..12].try_into().unwrap());
            if seq != last_seq + 1 {
                break; // out-of-sequence frame cannot be an append of ours
            }
            // CRC held: the frame was fully written. A payload that does
            // not decode now is not a torn tail (see module docs).
            let tuples = decode_payload(&body[12..], arity).map_err(|e| {
                WalError::Corrupt(format!("frame seq {seq} has a valid crc but {e}"))
            })?;
            if seq > snapshot_seq {
                records.push(WalRecord { seq, tuples });
            }
            last_seq = seq;
            record_count += 1;
            good_end += frame_len;
        }

        if good_end < bytes.len() {
            // Torn tail: drop it so the next append starts on a clean
            // frame boundary instead of interleaving with garbage.
            let f = OpenOptions::new().write(true).open(&path)?;
            f.set_len(good_end as u64)?;
            f.sync_all()?;
        }

        let file = OpenOptions::new().append(true).open(&path)?;
        Ok((
            Wal {
                file,
                path,
                schema_fp,
                arity,
                last_seq,
                base_seq,
                bytes: good_end as u64,
                records: record_count,
            },
            records,
        ))
    }

    fn create(
        path: PathBuf,
        schema_fp: u64,
        base_seq: u64,
        arity: usize,
    ) -> Result<(Wal, Vec<WalRecord>), WalError> {
        let header = encode_header(schema_fp, base_seq);
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)?;
        file.write_all(&header)?;
        file.sync_all()?;
        sync_parent_dir(&path);
        drop(file);
        let file = OpenOptions::new().append(true).open(&path)?;
        Ok((
            Wal {
                file,
                path,
                schema_fp,
                arity,
                last_seq: base_seq,
                base_seq,
                bytes: WAL_HEADER_BYTES,
                records: 0,
            },
            Vec::new(),
        ))
    }

    /// Appends one acknowledged batch and fsyncs before returning its
    /// sequence number. Until this returns `Ok`, the batch is not
    /// durable and the caller must not acknowledge it.
    pub fn append(&mut self, tuples: &[Tuple]) -> io::Result<u64> {
        let seq = self.last_seq + 1;
        let frame = frame_bytes(seq, &encode_payload(tuples));
        fault::hit("wal.append.pre_write")?;
        if let Some(fault::Action::Short(n)) = fault::armed("wal.append.mid_write") {
            // Torn write: persist a prefix of the frame, then die the
            // way a power cut would — synced, so the bytes survive.
            let n = n.min(frame.len());
            let _ = self.file.write_all(&frame[..n]);
            let _ = self.file.sync_data();
            eprintln!("renuver: injected short write ({n} bytes) at wal.append.mid_write");
            std::process::abort();
        }
        self.file.write_all(&frame)?;
        fault::hit("wal.append.pre_fsync")?;
        self.file.sync_data()?;
        fault::hit("wal.append.post_fsync")?;
        self.last_seq = seq;
        self.bytes += frame.len() as u64;
        self.records += 1;
        Ok(seq)
    }

    /// Resets the log after a compaction snapshot carrying `base_seq`
    /// became durable: writes a fresh header-only WAL beside the live
    /// one and atomically renames it into place. On any failure the old
    /// log — still fully replayable against the new snapshot, which is
    /// simply ahead of it — is left untouched.
    pub fn reset(&mut self, base_seq: u64) -> io::Result<()> {
        let tmp = self.path.with_extension("wal.tmp");
        let header = encode_header(self.schema_fp, base_seq);
        let mut f = OpenOptions::new().create(true).write(true).truncate(true).open(&tmp)?;
        f.write_all(&header)?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, &self.path)?;
        sync_parent_dir(&self.path);
        self.file = OpenOptions::new().append(true).open(&self.path)?;
        self.last_seq = base_seq;
        self.base_seq = base_seq;
        self.bytes = WAL_HEADER_BYTES;
        self.records = 0;
        Ok(())
    }

    /// Highest sequence number in the log (the base if no frames).
    pub fn last_seq(&self) -> u64 {
        self.last_seq
    }
    /// The snapshot sequence this log was opened or reset against.
    pub fn base_seq(&self) -> u64 {
        self.base_seq
    }
    /// Current log size in bytes (header + good frames).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
    /// Frames currently in the log.
    pub fn records(&self) -> u64 {
        self.records
    }
    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
    /// Schema fingerprint in the header.
    pub fn schema_fp(&self) -> u64 {
        self.schema_fp
    }
    /// Decode arity (for diagnostics).
    pub fn arity(&self) -> usize {
        self.arity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use renuver_data::Value;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("renuver-wal-tests-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn batch(tag: i64) -> Vec<Tuple> {
        vec![
            vec![Value::Text(format!("t{tag}")), Value::Int(tag)],
            vec![Value::Null, Value::Int(tag + 1)],
        ]
    }

    #[test]
    fn append_then_reopen_replays_in_order() {
        let path = tmp("roundtrip.wal");
        let _ = std::fs::remove_file(&path);
        let (mut wal, recs) = Wal::open(&path, 0xfeed, 0, 2).unwrap();
        assert!(recs.is_empty());
        assert_eq!(wal.append(&batch(1)).unwrap(), 1);
        assert_eq!(wal.append(&batch(10)).unwrap(), 2);
        assert_eq!(wal.last_seq(), 2);
        assert_eq!(wal.records(), 2);
        drop(wal);

        let (wal, recs) = Wal::open(&path, 0xfeed, 0, 2).unwrap();
        assert_eq!(wal.last_seq(), 2);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0], WalRecord { seq: 1, tuples: batch(1) });
        assert_eq!(recs[1], WalRecord { seq: 2, tuples: batch(10) });

        // A newer snapshot skips already-folded frames.
        let (_, recs) = Wal::open(&path, 0xfeed, 1, 2).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].seq, 2);
        let (_, recs) = Wal::open(&path, 0xfeed, 2, 2).unwrap();
        assert!(recs.is_empty());
    }

    #[test]
    fn every_torn_tail_recovers_the_good_prefix() {
        let path = tmp("torn.wal");
        let _ = std::fs::remove_file(&path);
        let (mut wal, _) = Wal::open(&path, 1, 0, 2).unwrap();
        wal.append(&batch(1)).unwrap();
        let after_first = wal.bytes() as usize;
        wal.append(&batch(2)).unwrap();
        drop(wal);
        let full = std::fs::read(&path).unwrap();

        // Cut the file at every byte inside the second frame: the first
        // frame must always survive, the second must always be dropped.
        for cut in after_first..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let (wal, recs) =
                Wal::open(&path, 1, 0, 2).unwrap_or_else(|e| panic!("cut at {cut}: {e}"));
            assert_eq!(recs.len(), 1, "cut at {cut}");
            assert_eq!(recs[0].seq, 1);
            assert_eq!(wal.last_seq(), 1);
            assert_eq!(wal.bytes() as usize, after_first);
            // The torn bytes are gone from disk too.
            assert_eq!(std::fs::metadata(&path).unwrap().len() as usize, after_first);
        }
    }

    #[test]
    fn appends_continue_cleanly_after_a_torn_tail() {
        let path = tmp("torn-append.wal");
        let _ = std::fs::remove_file(&path);
        let (mut wal, _) = Wal::open(&path, 1, 0, 2).unwrap();
        wal.append(&batch(1)).unwrap();
        wal.append(&batch(2)).unwrap();
        drop(wal);
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();

        let (mut wal, recs) = Wal::open(&path, 1, 0, 2).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(wal.append(&batch(3)).unwrap(), 2);
        drop(wal);
        let (_, recs) = Wal::open(&path, 1, 0, 2).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1], WalRecord { seq: 2, tuples: batch(3) });
    }

    #[test]
    fn flipped_frame_bytes_truncate_from_the_flip() {
        let path = tmp("flip.wal");
        let _ = std::fs::remove_file(&path);
        let (mut wal, _) = Wal::open(&path, 1, 0, 2).unwrap();
        wal.append(&batch(1)).unwrap();
        let after_first = wal.bytes() as usize;
        wal.append(&batch(2)).unwrap();
        drop(wal);
        let full = std::fs::read(&path).unwrap();
        for pos in (after_first..full.len()).step_by(3) {
            let mut bad = full.clone();
            bad[pos] ^= 0x40;
            std::fs::write(&path, &bad).unwrap();
            let (_, recs) = Wal::open(&path, 1, 0, 2).unwrap();
            assert_eq!(recs.len(), 1, "flip at {pos} kept the damaged frame");
        }
    }

    #[test]
    fn header_problems_are_typed_errors() {
        let path = tmp("header.wal");
        let _ = std::fs::remove_file(&path);
        let (mut wal, _) = Wal::open(&path, 0xabc, 5, 2).unwrap();
        wal.append(&batch(1)).unwrap();
        drop(wal);

        assert!(matches!(
            Wal::open(&path, 0xdef, 5, 2),
            Err(WalError::SchemaMismatch { expected: 0xdef, found: 0xabc })
        ));
        // Snapshot older than the wal's base: different lineage.
        assert!(matches!(
            Wal::open(&path, 0xabc, 3, 2),
            Err(WalError::SnapshotBehind { wal_base: 5, snapshot_seq: 3 })
        ));

        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] = b'X';
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(Wal::open(&path, 0xabc, 5, 2), Err(WalError::BadMagic)));
        bytes[0] = b'R';
        bytes[4..8].copy_from_slice(&9u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(Wal::open(&path, 0xabc, 5, 2), Err(WalError::UnsupportedVersion(9))));
    }

    #[test]
    fn a_torn_header_recreates_the_log() {
        // Creation crashed before the header finished: no frame can
        // exist, so reopening silently starts a fresh log.
        let path = tmp("torn-header.wal");
        std::fs::write(&path, &b"RNWL\x01\x00"[..]).unwrap();
        let (wal, recs) = Wal::open(&path, 7, 4, 2).unwrap();
        assert!(recs.is_empty());
        assert_eq!(wal.last_seq(), 4);
        assert_eq!(wal.bytes(), WAL_HEADER_BYTES);
    }

    #[test]
    fn reset_starts_an_empty_log_at_the_new_base() {
        let path = tmp("reset.wal");
        let _ = std::fs::remove_file(&path);
        let (mut wal, _) = Wal::open(&path, 1, 0, 2).unwrap();
        wal.append(&batch(1)).unwrap();
        wal.append(&batch(2)).unwrap();
        wal.reset(2).unwrap();
        assert_eq!(wal.records(), 0);
        assert_eq!(wal.bytes(), WAL_HEADER_BYTES);
        assert_eq!(wal.append(&batch(3)).unwrap(), 3);
        drop(wal);
        let (wal, recs) = Wal::open(&path, 1, 2, 2).unwrap();
        assert_eq!(wal.base_seq(), 2);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].seq, 3);
    }

    #[test]
    fn injected_append_error_leaves_the_log_replayable() {
        let path = tmp("fault-err.wal");
        let _ = std::fs::remove_file(&path);
        let (mut wal, _) = Wal::open(&path, 1, 0, 2).unwrap();
        wal.append(&batch(1)).unwrap();
        fault::arm("wal.append.pre_write", fault::Action::Err);
        let err = wal.append(&batch(2)).unwrap_err();
        fault::disarm("wal.append.pre_write");
        assert!(err.to_string().contains("injected fault"));
        drop(wal);
        let (_, recs) = Wal::open(&path, 1, 0, 2).unwrap();
        assert_eq!(recs.len(), 1);
    }
}
