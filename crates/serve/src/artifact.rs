//! Versioned, checksummed model artifacts (`.rnv`).
//!
//! An artifact is a single-file binary snapshot of everything a serving
//! [`Engine`] needs: the reference relation, the discovered RFD set, the
//! dictionary-encoded [`DistanceOracle`] column tables, and the
//! [`SimilarityIndex`] (when one was built). Loading an artifact skips
//! every quadratic build step — the distance matrices and posting lists
//! come back verbatim — so `load + serve` is strictly cheaper than
//! `rebuild + serve` (quantified by `bench_serve`), while answering
//! bit-for-bit identically (asserted by `tests/serve_differential.rs`).
//!
//! # Format (version 2)
//!
//! ```text
//! magic            b"RNUV"                     4 bytes
//! format version   u32 LE                      = 2
//! schema fp        u64 LE   FNV-1a over attribute names and type tags
//! payload          sections below, all integers LE, strings u32-length-prefixed UTF-8
//!   schema         u32 arity; per attr: name, u8 type tag
//!   source         free-form provenance string (dataset path, may be empty)
//!   committed seq  u64 LE   highest WAL sequence number folded into this
//!                  snapshot (0 for a freshly prepared model); recovery
//!                  replays only WAL records with seq greater than this
//!   relation       u32 rows; per cell: u8 tag (0 null, 1 int i64, 2 float
//!                  f64 bits, 3 text, 4 bool u8)
//!   rfds           u32 count; per RFD: u32 lhs len; per constraint
//!                  (lhs then rhs): u32 attr, u64 threshold bits
//!   oracle         per attr: u8 tag — 0 numeric, 1 direct, 2 matrix
//!                  (dict strings, f32-bit matrix, per-row codes)
//!   index          u8 presence; per attr: u8 tag — 0 unindexed,
//!                  1 numeric (sorted (f64 bits, u64 row) entries),
//!                  2 text (dict strings, per-row codes)
//! checksum         u32 LE   CRC-32 (IEEE) over everything above
//! ```
//!
//! Every load re-verifies magic, version, checksum, and the schema
//! fingerprint, then structurally validates each section (the oracle and
//! index `from_snapshot` constructors re-check dictionary/code/shape
//! invariants against the decoded relation). Corrupt input of any kind —
//! truncation, bit flips, hostile lengths — yields a typed
//! [`ArtifactError`], never a panic and never an oversized allocation:
//! all length prefixes are bounds-checked against the bytes actually
//! remaining before anything is allocated.

use std::fmt;
use std::path::Path;

use renuver_core::{Engine, RenuverConfig};
use renuver_data::{AttrType, Relation, Schema, Tuple};
use renuver_distance::{AttrSnapshot, ColumnSnapshot, DistanceOracle, SimilarityIndex};
use renuver_rfd::{Rfd, RfdSet};

use crate::codec::{Cursor, Writer};

/// The artifact file magic, `b"RNUV"`.
pub const MAGIC: [u8; 4] = *b"RNUV";
/// The format version this build writes and the only one it reads.
pub const FORMAT_VERSION: u32 = 2;

/// Why an artifact failed to save or load.
#[derive(Debug)]
pub enum ArtifactError {
    /// Filesystem error reading or writing the artifact.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`] — not an artifact at all.
    BadMagic,
    /// The file's format version is not [`FORMAT_VERSION`].
    UnsupportedVersion(u32),
    /// The trailing CRC-32 does not match the file contents.
    ChecksumMismatch { expected: u32, found: u32 },
    /// The header's schema fingerprint does not match the schema the
    /// payload decodes to (or the schema the caller required).
    SchemaMismatch { expected: u64, found: u64 },
    /// The file ends before a section it promises.
    Truncated,
    /// A section decodes but violates a structural invariant.
    Corrupt(String),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Io(e) => write!(f, "artifact i/o error: {e}"),
            ArtifactError::BadMagic => write!(f, "not a renuver artifact (bad magic)"),
            ArtifactError::UnsupportedVersion(v) => {
                write!(f, "unsupported artifact version {v} (this build reads {FORMAT_VERSION})")
            }
            ArtifactError::ChecksumMismatch { expected, found } => write!(
                f,
                "artifact checksum mismatch (stored {expected:#010x}, computed {found:#010x})"
            ),
            ArtifactError::SchemaMismatch { expected, found } => write!(
                f,
                "artifact schema fingerprint mismatch (header {expected:#018x}, payload {found:#018x})"
            ),
            ArtifactError::Truncated => write!(f, "artifact truncated"),
            ArtifactError::Corrupt(msg) => write!(f, "artifact corrupt: {msg}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

impl From<std::io::Error> for ArtifactError {
    fn from(e: std::io::Error) -> Self {
        ArtifactError::Io(e)
    }
}

/// A fully decoded artifact: everything needed to assemble an [`Engine`].
pub struct Artifact {
    /// FNV-1a fingerprint of the schema (also in the file header).
    pub schema_fingerprint: u64,
    /// Free-form provenance recorded at save time (dataset path).
    pub source: String,
    /// Highest WAL sequence number folded into this snapshot (0 for a
    /// freshly prepared model). Recovery replays only WAL records with a
    /// sequence number greater than this.
    pub committed_seq: u64,
    /// The reference relation.
    pub relation: Relation,
    /// The discovered RFD set.
    pub rfds: RfdSet,
    /// The dictionary-encoded distance oracle, loaded verbatim.
    pub oracle: DistanceOracle,
    /// The similarity index, when one was part of the snapshot.
    pub index: Option<SimilarityIndex>,
}

impl Artifact {
    /// Assembles a serving engine from the loaded parts under `config`.
    pub fn into_engine(self, config: RenuverConfig) -> Engine {
        Engine::from_parts(self.relation, self.rfds, self.oracle, self.index, config)
    }
}

/// Header-level summary of an artifact, for `renuver inspect`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArtifactInfo {
    /// Format version from the header.
    pub version: u32,
    /// Schema fingerprint from the header.
    pub schema_fingerprint: u64,
    /// Provenance string recorded at save time.
    pub source: String,
    /// Highest WAL sequence number folded into the snapshot.
    pub committed_seq: u64,
    /// Reference tuples in the snapshot.
    pub rows: usize,
    /// Attributes in the schema.
    pub arity: usize,
    /// Attribute names and type labels, schema order.
    pub attrs: Vec<(String, &'static str)>,
    /// RFDs in the snapshot.
    pub rfds: usize,
    /// Whether a similarity index was snapshotted.
    pub indexed: bool,
    /// Total file size in bytes.
    pub bytes: usize,
}

/// FNV-1a fingerprint of a schema: attribute names and type tags in
/// schema order. Stable across runs and platforms.
pub fn schema_fingerprint(schema: &Schema) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |b: u8| {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for attr in schema.attrs() {
        for &b in attr.name.as_bytes() {
            eat(b);
        }
        eat(0xff);
        eat(type_tag(attr.ty));
        eat(0xfe);
    }
    h
}

/// CRC-32 (IEEE 802.3, reflected) over `bytes`. Bitwise — no table; the
/// artifact sizes this repo handles make table setup not worth the code.
/// Public so the corruption fuzzers can re-stamp a valid checksum over a
/// damaged payload, forcing the section parsers (not the CRC) to reject.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

fn type_tag(ty: AttrType) -> u8 {
    match ty {
        AttrType::Text => 0,
        AttrType::Int => 1,
        AttrType::Float => 2,
        AttrType::Bool => 3,
    }
}

fn type_from_tag(tag: u8) -> Option<AttrType> {
    match tag {
        0 => Some(AttrType::Text),
        1 => Some(AttrType::Int),
        2 => Some(AttrType::Float),
        3 => Some(AttrType::Bool),
        _ => None,
    }
}

fn type_label(ty: AttrType) -> &'static str {
    match ty {
        AttrType::Text => "text",
        AttrType::Int => "int",
        AttrType::Float => "float",
        AttrType::Bool => "bool",
    }
}

// ---------------------------------------------------------------- encode

/// Serializes a model to artifact bytes (header + payload + checksum).
pub fn encode(
    rel: &Relation,
    rfds: &RfdSet,
    oracle: &DistanceOracle,
    index: Option<&SimilarityIndex>,
    source: &str,
    committed_seq: u64,
) -> Vec<u8> {
    let mut w = Writer::new();
    w.buf.extend_from_slice(&MAGIC);
    w.u32(FORMAT_VERSION);
    w.u64(schema_fingerprint(rel.schema()));

    // Schema.
    w.u32(rel.arity() as u32);
    for attr in rel.schema().attrs() {
        w.str(&attr.name);
        w.u8(type_tag(attr.ty));
    }
    w.str(source);
    w.u64(committed_seq);

    // Relation.
    w.u32(rel.len() as u32);
    for tuple in rel.tuples() {
        for v in tuple {
            w.value(v);
        }
    }

    // RFDs.
    w.u32(rfds.len() as u32);
    for rfd in rfds.iter() {
        w.u32(rfd.lhs().len() as u32);
        for &c in rfd.lhs() {
            w.constraint(c);
        }
        w.constraint(rfd.rhs());
    }

    // Oracle column tables.
    for col in oracle.to_snapshot() {
        match col {
            ColumnSnapshot::Numeric => w.u8(0),
            ColumnSnapshot::Direct => w.u8(1),
            ColumnSnapshot::Matrix { dict, data, codes } => {
                w.u8(2);
                w.u32(dict.len() as u32);
                for s in &dict {
                    w.str(s);
                }
                w.u32(data.len() as u32);
                for f in &data {
                    w.u32(f.to_bits());
                }
                w.u32(codes.len() as u32);
                for c in &codes {
                    w.u32(*c);
                }
            }
        }
    }

    // Similarity index.
    match index {
        None => w.u8(0),
        Some(ix) => {
            w.u8(1);
            for attr in ix.to_snapshot() {
                match attr {
                    AttrSnapshot::Unindexed => w.u8(0),
                    AttrSnapshot::Numeric { entries } => {
                        w.u8(1);
                        w.u32(entries.len() as u32);
                        for (v, row) in &entries {
                            w.u64(v.to_bits());
                            w.u64(*row as u64);
                        }
                    }
                    AttrSnapshot::Text { values, row_codes } => {
                        w.u8(2);
                        w.u32(values.len() as u32);
                        for s in &values {
                            w.str(s);
                        }
                        w.u32(row_codes.len() as u32);
                        for c in &row_codes {
                            w.u32(*c);
                        }
                    }
                }
            }
        }
    }

    let crc = crc32(&w.buf);
    w.u32(crc);
    w.buf
}

/// [`encode`] straight from a prepared engine.
pub fn encode_engine(engine: &Engine, source: &str, committed_seq: u64) -> Vec<u8> {
    encode(
        engine.relation(),
        engine.sigma(),
        engine.oracle(),
        engine.index(),
        source,
        committed_seq,
    )
}

/// Writes an artifact file.
pub fn save(
    path: impl AsRef<Path>,
    rel: &Relation,
    rfds: &RfdSet,
    oracle: &DistanceOracle,
    index: Option<&SimilarityIndex>,
    source: &str,
) -> Result<(), ArtifactError> {
    std::fs::write(path, encode(rel, rfds, oracle, index, source, 0))?;
    Ok(())
}

// ---------------------------------------------------------------- decode

/// Parses artifact bytes into a decoded [`Artifact`].
pub fn decode(bytes: &[u8]) -> Result<Artifact, ArtifactError> {
    // Header + trailing checksum frame the payload.
    if bytes.len() < MAGIC.len() {
        // A non-empty strict prefix of the magic is a cut-off artifact;
        // anything else (including empty input) is not an artifact.
        return Err(if !bytes.is_empty() && MAGIC.starts_with(bytes) {
            ArtifactError::Truncated
        } else {
            ArtifactError::BadMagic
        });
    }
    if bytes[..4] != MAGIC {
        return Err(ArtifactError::BadMagic);
    }
    if bytes.len() < MAGIC.len() + 4 {
        return Err(ArtifactError::Truncated);
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(ArtifactError::UnsupportedVersion(version));
    }
    if bytes.len() < 8 + 8 + 4 {
        return Err(ArtifactError::Truncated);
    }
    let (payload, tail) = bytes.split_at(bytes.len() - 4);
    let stored_crc = u32::from_le_bytes(tail.try_into().unwrap());
    let computed_crc = crc32(payload);
    if stored_crc != computed_crc {
        return Err(ArtifactError::ChecksumMismatch {
            expected: stored_crc,
            found: computed_crc,
        });
    }

    let mut c = Cursor { buf: payload, pos: 8 };
    let header_fp = c.u64()?;

    // Schema.
    let arity = c.len(2)?;
    let mut attrs = Vec::with_capacity(arity);
    for _ in 0..arity {
        let name = c.str()?;
        let tag = c.u8()?;
        let ty = type_from_tag(tag)
            .ok_or_else(|| ArtifactError::Corrupt(format!("unknown attribute type tag {tag}")))?;
        attrs.push((name, ty));
    }
    let schema = Schema::new(attrs).map_err(|e| ArtifactError::Corrupt(e.to_string()))?;
    let payload_fp = schema_fingerprint(&schema);
    if payload_fp != header_fp {
        return Err(ArtifactError::SchemaMismatch {
            expected: header_fp,
            found: payload_fp,
        });
    }
    let source = c.str()?;
    let committed_seq = c.u64()?;

    // Relation.
    let rows = c.len(arity)?;
    let mut tuples: Vec<Tuple> = Vec::with_capacity(rows);
    for _ in 0..rows {
        let mut t = Tuple::with_capacity(arity);
        for _ in 0..arity {
            t.push(c.value()?);
        }
        tuples.push(t);
    }
    let relation =
        Relation::new(schema, tuples).map_err(|e| ArtifactError::Corrupt(e.to_string()))?;

    // RFDs.
    let rfd_count = c.len(2 * 12)?;
    let mut rfds = Vec::with_capacity(rfd_count);
    for _ in 0..rfd_count {
        let lhs_len = c.len(12)?;
        let mut lhs = Vec::with_capacity(lhs_len);
        for _ in 0..lhs_len {
            lhs.push(c.constraint(arity)?);
        }
        let rhs = c.constraint(arity)?;
        rfds.push(Rfd::try_new(lhs, rhs).map_err(ArtifactError::Corrupt)?);
    }
    let rfds = RfdSet::from_vec(rfds);

    // Oracle column tables.
    let mut columns = Vec::with_capacity(arity);
    for attr in 0..arity {
        columns.push(match c.u8()? {
            0 => ColumnSnapshot::Numeric,
            1 => ColumnSnapshot::Direct,
            2 => {
                let dict_len = c.len(4)?;
                let mut dict = Vec::with_capacity(dict_len);
                for _ in 0..dict_len {
                    dict.push(c.str()?);
                }
                let data_len = c.len(4)?;
                let mut data = Vec::with_capacity(data_len);
                for _ in 0..data_len {
                    data.push(f32::from_bits(c.u32()?));
                }
                let codes_len = c.len(4)?;
                if codes_len != relation.len() {
                    return Err(ArtifactError::Corrupt(format!(
                        "oracle column {attr} carries {codes_len} row codes for {} rows",
                        relation.len()
                    )));
                }
                let mut codes = Vec::with_capacity(codes_len);
                for _ in 0..codes_len {
                    codes.push(c.u32()?);
                }
                ColumnSnapshot::Matrix { dict, data, codes }
            }
            tag => {
                return Err(ArtifactError::Corrupt(format!(
                    "unknown oracle column tag {tag} for attribute {attr}"
                )))
            }
        });
    }
    let oracle = DistanceOracle::from_snapshot(columns).map_err(ArtifactError::Corrupt)?;

    // Similarity index.
    let index = match c.u8()? {
        0 => None,
        1 => {
            let mut parts = Vec::with_capacity(arity);
            for attr in 0..arity {
                parts.push(match c.u8()? {
                    0 => AttrSnapshot::Unindexed,
                    1 => {
                        let n = c.len(16)?;
                        let mut entries = Vec::with_capacity(n);
                        for _ in 0..n {
                            let v = f64::from_bits(c.u64()?);
                            let row = c.u64()? as usize;
                            entries.push((v, row));
                        }
                        AttrSnapshot::Numeric { entries }
                    }
                    2 => {
                        let n = c.len(4)?;
                        let mut values = Vec::with_capacity(n);
                        for _ in 0..n {
                            values.push(c.str()?);
                        }
                        let m = c.len(4)?;
                        let mut row_codes = Vec::with_capacity(m);
                        for _ in 0..m {
                            row_codes.push(c.u32()?);
                        }
                        AttrSnapshot::Text { values, row_codes }
                    }
                    tag => {
                        return Err(ArtifactError::Corrupt(format!(
                            "unknown index tag {tag} for attribute {attr}"
                        )))
                    }
                });
            }
            Some(
                SimilarityIndex::from_snapshot(&relation, parts).map_err(ArtifactError::Corrupt)?,
            )
        }
        tag => {
            return Err(ArtifactError::Corrupt(format!("unknown index presence byte {tag}")))
        }
    };

    if c.remaining() != 0 {
        return Err(ArtifactError::Corrupt(format!(
            "{} trailing bytes after the index section",
            c.remaining()
        )));
    }

    Ok(Artifact {
        schema_fingerprint: header_fp,
        source,
        committed_seq,
        relation,
        rfds,
        oracle,
        index,
    })
}

/// Reads and decodes an artifact file.
pub fn load(path: impl AsRef<Path>) -> Result<Artifact, ArtifactError> {
    decode(&std::fs::read(path)?)
}

/// Decodes just enough of an artifact to describe it.
///
/// Runs the full integrity pipeline (magic, version, checksum, schema,
/// structural validation) — an artifact that inspects cleanly also loads.
pub fn inspect(bytes: &[u8]) -> Result<ArtifactInfo, ArtifactError> {
    let artifact = decode(bytes)?;
    Ok(ArtifactInfo {
        version: FORMAT_VERSION,
        schema_fingerprint: artifact.schema_fingerprint,
        source: artifact.source,
        committed_seq: artifact.committed_seq,
        rows: artifact.relation.len(),
        arity: artifact.relation.arity(),
        attrs: artifact
            .relation
            .schema()
            .attrs()
            .map(|a| (a.name.clone(), type_label(a.ty)))
            .collect(),
        rfds: artifact.rfds.len(),
        indexed: artifact.index.is_some(),
        bytes: bytes.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use renuver_data::{csv, Value};
    use renuver_rfd::Constraint;

    fn model() -> (Relation, RfdSet) {
        let rel = csv::read_str(
            "Name:text,City:text,Zip:text,Score:float\n\
             Granita,Malibu,90265,4.5\n\
             Granitas,Malibu,90265,4.0\n\
             Citrus,Hollywood,90028,3.5\n\
             Spago,Hollywood,90028,5.0\n",
        )
        .unwrap();
        let rfds = RfdSet::from_vec(vec![
            Rfd::new(vec![Constraint::new(1, 0.0)], Constraint::new(2, 0.0)),
            Rfd::new(vec![Constraint::new(0, 2.0)], Constraint::new(1, 0.0)),
        ]);
        (rel, rfds)
    }

    fn encoded(index: bool) -> Vec<u8> {
        let (rel, rfds) = model();
        let oracle = DistanceOracle::build(&rel, 3000);
        let ix = index.then(|| SimilarityIndex::build(&rel, &oracle));
        encode(&rel, &rfds, &oracle, ix.as_ref(), "tests/model.csv", 7)
    }

    #[test]
    fn round_trip_preserves_everything() {
        let (rel, rfds) = model();
        let oracle = DistanceOracle::build(&rel, 3000);
        let ix = SimilarityIndex::build(&rel, &oracle);
        let bytes = encode(&rel, &rfds, &oracle, Some(&ix), "tests/model.csv", 42);

        let artifact = decode(&bytes).unwrap();
        assert_eq!(artifact.source, "tests/model.csv");
        assert_eq!(artifact.committed_seq, 42);
        assert_eq!(artifact.relation.schema(), rel.schema());
        assert_eq!(
            artifact.relation.tuples().collect::<Vec<_>>(),
            rel.tuples().collect::<Vec<_>>()
        );
        assert_eq!(artifact.rfds.len(), rfds.len());
        for (a, b) in artifact.rfds.iter().zip(rfds.iter()) {
            assert_eq!(a.lhs(), b.lhs());
            assert_eq!(a.rhs(), b.rhs());
        }
        assert_eq!(artifact.oracle.to_snapshot(), oracle.to_snapshot());
        assert_eq!(artifact.index.unwrap().to_snapshot(), ix.to_snapshot());

        // Deterministic: same model encodes to the same bytes.
        assert_eq!(bytes, encode(&rel, &rfds, &oracle, Some(&ix), "tests/model.csv", 42));
    }

    #[test]
    fn inspect_summarizes_the_header() {
        let info = inspect(&encoded(true)).unwrap();
        assert_eq!(info.version, 2);
        assert_eq!(info.committed_seq, 7);
        assert_eq!(info.rows, 4);
        assert_eq!(info.arity, 4);
        assert_eq!(info.rfds, 2);
        assert!(info.indexed);
        assert_eq!(info.source, "tests/model.csv");
        assert_eq!(info.attrs[0], ("Name".to_string(), "text"));
        assert_eq!(info.attrs[3], ("Score".to_string(), "float"));
        let (rel, _) = model();
        assert_eq!(info.schema_fingerprint, schema_fingerprint(rel.schema()));
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = encoded(false);
        bytes[0] = b'X';
        assert!(matches!(decode(&bytes), Err(ArtifactError::BadMagic)));
        assert!(matches!(decode(b"hello"), Err(ArtifactError::BadMagic)));
        assert!(matches!(decode(b""), Err(ArtifactError::BadMagic)));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut bytes = encoded(false);
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(decode(&bytes), Err(ArtifactError::UnsupportedVersion(99))));
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let bytes = encoded(true);
        for n in 0..bytes.len() {
            let err = decode(&bytes[..n]).err().unwrap();
            assert!(
                matches!(
                    err,
                    ArtifactError::Truncated
                        | ArtifactError::BadMagic
                        | ArtifactError::ChecksumMismatch { .. }
                ),
                "truncation at {n} gave {err}"
            );
        }
    }

    #[test]
    fn every_flipped_byte_is_caught() {
        // The CRC catches any single-bit corruption of the payload; flips
        // in the magic/version/checksum fields hit their own checks first.
        let bytes = encoded(true);
        for pos in (0..bytes.len()).step_by(7) {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x20;
            assert!(decode(&bad).is_err(), "flip at byte {pos} was not caught");
        }
    }

    #[test]
    fn fingerprint_mismatch_is_schema_mismatch() {
        // Flip a header fingerprint bit *and* re-seal the checksum: the
        // file is internally consistent but lies about its schema.
        let mut bytes = encoded(false);
        bytes[8] ^= 1;
        let crc = crc32(&bytes[..bytes.len() - 4]);
        let n = bytes.len();
        bytes[n - 4..].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(decode(&bytes), Err(ArtifactError::SchemaMismatch { .. })));
    }

    #[test]
    fn hostile_lengths_do_not_allocate() {
        // A row count of u32::MAX with a re-sealed checksum must be
        // rejected by the bounds check, not attempted as an allocation.
        let (rel, rfds) = model();
        let oracle = DistanceOracle::build(&rel, 3000);
        let mut bytes = encode(&rel, &rfds, &oracle, None, "", 0);
        // The row-count u32 sits right after schema + empty source; find
        // it by scanning for the known value 4 following the source.
        let needle = 4u32.to_le_bytes();
        let pos = (16..bytes.len() - 4)
            .find(|&i| bytes[i..i + 4] == needle)
            .unwrap();
        bytes[pos..pos + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let crc = crc32(&bytes[..bytes.len() - 4]);
        let n = bytes.len();
        bytes[n - 4..].copy_from_slice(&crc.to_le_bytes());
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn loaded_engine_answers_like_a_prepared_one() {
        let (rel, rfds) = model();
        let bytes = {
            let engine = Engine::prepare(rel.clone(), rfds, RenuverConfig::default());
            encode_engine(&engine, "m", 0)
        };
        let mut engine = decode(&bytes).unwrap().into_engine(RenuverConfig::default());
        let batch = vec![vec![
            Value::Text("Granitaz".into()),
            Value::Null,
            Value::Null,
            Value::Float(4.2),
        ]];
        let out = engine.impute_batch(batch).unwrap();
        assert_eq!(out.tuples[0][1], Value::Text("Malibu".into()));
        assert_eq!(out.tuples[0][2], Value::Text("90265".into()));
    }
}
