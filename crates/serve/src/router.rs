//! Request routing and the imputation endpoints.
//!
//! The API surface (all bodies JSON unless noted):
//!
//! - `GET /healthz` — liveness: `200 ok`.
//! - `GET /v1/model` — the loaded model: schema, row/RFD counts,
//!   fingerprint, provenance.
//! - `GET /metrics` — the server's metrics registry as the standard
//!   `renuver-obs` text table.
//! - `POST /v1/impute` — tuples with `null` holes in, imputed tuples
//!   with per-cell outcomes out. Accepts `{"tuples": [[...]]}` JSON or,
//!   with `Content-Type: text/csv`, a CSV document whose header names
//!   match the model schema (type annotations optional — values are
//!   coerced to the model's types). Query parameters: `timeout_ms` (budget
//!   for this request, capped by the server ceiling), `explain`
//!   (include per-cell explain records), `explain_sample`
//!   (`all` | `dry` | an integer `k` for every k-th cell).

use std::sync::Mutex;
use std::time::Duration;

use renuver_budget::Budget;
use renuver_core::{BatchResult, Engine, ExplainSample};
use renuver_data::{csv, AttrType, Tuple, Value};
use renuver_obs::json::{self, write_f64, write_str};
use renuver_obs::{Metrics, Tracer};

use crate::http::{Request, Response};

/// Provenance of the loaded model, surfaced by `GET /v1/model`.
pub struct ModelInfo {
    /// Where the model came from: an artifact path or a dataset path.
    pub source: String,
    /// Schema fingerprint (as stored in the artifact header).
    pub schema_fingerprint: u64,
    /// Artifact size in bytes, `0` when the model was built in-process.
    pub artifact_bytes: usize,
}

/// Shared server state: the engine (serialized behind a mutex — requests
/// mutate and roll back engine state), model provenance, the metrics
/// registry, and the request-budget policy.
pub struct Ctx {
    /// The serving engine.
    pub engine: Mutex<Engine>,
    /// Model provenance.
    pub info: ModelInfo,
    /// Server-lifetime metrics, rendered by `GET /metrics`.
    pub metrics: Metrics,
    /// Budget applied to requests that do not pass `timeout_ms`.
    pub default_timeout_ms: Option<u64>,
    /// Hard ceiling on any per-request `timeout_ms`.
    pub max_timeout_ms: u64,
}

impl Ctx {
    /// Builds a context with the standard counters pre-registered (so
    /// `/metrics` shows zeros instead of omitting untouched counters).
    pub fn new(
        engine: Engine,
        info: ModelInfo,
        default_timeout_ms: Option<u64>,
        max_timeout_ms: u64,
    ) -> Ctx {
        let metrics = Metrics::new();
        for name in [
            "http.requests",
            "http.responses_2xx",
            "http.responses_4xx",
            "http.responses_5xx",
            "http.shed",
            "serve.batches",
            "serve.cells_missing",
            "serve.cells_imputed",
            "serve.budget_tripped",
        ] {
            metrics.counter(name);
        }
        Ctx {
            engine: Mutex::new(engine),
            info,
            metrics,
            default_timeout_ms,
            max_timeout_ms,
        }
    }

    fn lock_engine(&self) -> std::sync::MutexGuard<'_, Engine> {
        // A panic while holding the lock poisons it and may leave the
        // panicking request's transient rows appended; recover the guard
        // and restore the reference state before serving again.
        match self.engine.lock() {
            Ok(g) => g,
            Err(poisoned) => {
                let mut g = poisoned.into_inner();
                g.reset_transient();
                g
            }
        }
    }
}

/// Dispatches one request to its endpoint and accounts it in the
/// registry. Never panics: malformed input maps to 4xx.
pub fn route(ctx: &Ctx, req: &Request) -> Response {
    ctx.metrics.counter("http.requests").inc();
    let resp = match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Response::text(200, "ok\n"),
        ("GET", "/metrics") => Response::text(200, ctx.metrics.render_table()),
        ("GET", "/v1/model") => model_endpoint(ctx),
        ("POST", "/v1/impute") => impute_endpoint(ctx, req),
        (_, "/healthz" | "/metrics" | "/v1/model" | "/v1/impute") => {
            Response::text(405, "method not allowed\n")
        }
        _ => Response::text(404, "not found\n"),
    };
    let class = match resp.status {
        200..=299 => "http.responses_2xx",
        400..=499 => "http.responses_4xx",
        _ => "http.responses_5xx",
    };
    ctx.metrics.counter(class).inc();
    resp
}

fn model_endpoint(ctx: &Ctx) -> Response {
    let engine = ctx.lock_engine();
    let mut out = String::from("{");
    out.push_str("\"source\":");
    write_str(&mut out, &ctx.info.source);
    out.push_str(&format!(
        ",\"schema_fingerprint\":\"{:#018x}\"",
        ctx.info.schema_fingerprint
    ));
    out.push_str(&format!(",\"format_version\":{}", crate::artifact::FORMAT_VERSION));
    out.push_str(&format!(",\"artifact_bytes\":{}", ctx.info.artifact_bytes));
    out.push_str(&format!(",\"rows\":{}", engine.donor_rows()));
    out.push_str(&format!(",\"rfds\":{}", engine.sigma().len()));
    out.push_str(&format!(",\"indexed\":{}", engine.index().is_some()));
    out.push_str(",\"attrs\":[");
    for (i, attr) in engine.schema().attrs().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        write_str(&mut out, &attr.name);
        out.push_str(",\"type\":");
        write_str(&mut out, type_label(attr.ty));
        out.push('}');
    }
    out.push_str("]}");
    Response::json(200, out)
}

fn type_label(ty: AttrType) -> &'static str {
    match ty {
        AttrType::Text => "text",
        AttrType::Int => "int",
        AttrType::Float => "float",
        AttrType::Bool => "bool",
    }
}

fn bad_request(msg: impl std::fmt::Display) -> Response {
    let mut out = String::from("{\"error\":");
    write_str(&mut out, &msg.to_string());
    out.push('}');
    Response::json(400, out)
}

/// Per-request knobs parsed from the query string.
struct RequestOpts {
    timeout_ms: Option<u64>,
    explain: bool,
    explain_sample: ExplainSample,
}

fn parse_opts(ctx: &Ctx, req: &Request) -> Result<RequestOpts, Response> {
    let timeout_ms = match req.query_param("timeout_ms") {
        None => ctx.default_timeout_ms,
        Some(raw) => Some(
            raw.parse::<u64>()
                .map_err(|_| bad_request(format!("timeout_ms={raw:?} is not an integer")))?,
        ),
    }
    .map(|ms| ms.min(ctx.max_timeout_ms));
    let explain = req.query_param("explain").is_some_and(|v| v != "0");
    let explain_sample = match req.query_param("explain_sample") {
        None | Some("all") => ExplainSample::All,
        Some("dry") => ExplainSample::DryOnly,
        Some(raw) => ExplainSample::EveryKth(raw.parse::<usize>().map_err(|_| {
            bad_request(format!(
                "explain_sample={raw:?} is not \"all\", \"dry\", or an integer"
            ))
        })?),
    };
    Ok(RequestOpts { timeout_ms, explain, explain_sample })
}

/// Decodes the request body into tuples, by content type.
fn parse_tuples(engine: &Engine, req: &Request) -> Result<Vec<Tuple>, Response> {
    let content_type = req.header("content-type").unwrap_or("application/json");
    if content_type.starts_with("text/csv") {
        let text = std::str::from_utf8(&req.body)
            .map_err(|_| bad_request("CSV body is not UTF-8"))?;
        let rel = csv::read_str(text).map_err(bad_request)?;
        let names: Vec<&str> = rel.schema().attrs().map(|a| a.name.as_str()).collect();
        let expected: Vec<&str> = engine.schema().attrs().map(|a| a.name.as_str()).collect();
        if names != expected {
            return Err(bad_request(format!(
                "CSV header {names:?} does not match the model schema {expected:?}"
            )));
        }
        // The body's header may omit type annotations (every column reads
        // as text then); coerce values to the model's attribute types.
        Ok(rel
            .tuples()
            .map(|t| {
                t.iter()
                    .enumerate()
                    .map(|(col, v)| coerce(v, engine.schema().ty(col)))
                    .collect()
            })
            .collect())
    } else if content_type.starts_with("application/json") {
        let text = std::str::from_utf8(&req.body)
            .map_err(|_| bad_request("JSON body is not UTF-8"))?;
        let doc = json::parse(text).map_err(bad_request)?;
        let tuples = doc
            .get("tuples")
            .and_then(|t| t.as_array())
            .ok_or_else(|| bad_request("body must be {\"tuples\": [[...], ...]}"))?;
        let arity = engine.schema().arity();
        let mut out = Vec::with_capacity(tuples.len());
        for (i, row) in tuples.iter().enumerate() {
            let cells = row
                .as_array()
                .ok_or_else(|| bad_request(format!("tuple {i} is not an array")))?;
            if cells.len() != arity {
                return Err(bad_request(format!(
                    "tuple {i} has {} values, schema has {arity}",
                    cells.len()
                )));
            }
            let mut tuple = Tuple::with_capacity(arity);
            for (attr, cell) in cells.iter().enumerate() {
                tuple.push(json_to_value(engine, i, attr, cell)?);
            }
            out.push(tuple);
        }
        Ok(out)
    } else {
        Err(bad_request(format!(
            "unsupported Content-Type {content_type:?} (use application/json or text/csv)"
        )))
    }
}

/// Converts a CSV-sourced value to the model's attribute type. Same
/// leniency as dataset loading: unparseable values become `Null`.
fn coerce(v: &Value, ty: AttrType) -> Value {
    match (v, ty) {
        (Value::Null, _) => Value::Null,
        (Value::Text(_), AttrType::Text)
        | (Value::Int(_), AttrType::Int)
        | (Value::Float(_), AttrType::Float)
        | (Value::Bool(_), AttrType::Bool) => v.clone(),
        (Value::Int(n), AttrType::Float) => Value::Float(*n as f64),
        _ => Value::parse(&v.render(), ty),
    }
}

fn json_to_value(
    engine: &Engine,
    row: usize,
    attr: usize,
    cell: &json::Value,
) -> Result<Value, Response> {
    let ty = engine.schema().ty(attr);
    let name = engine.schema().name(attr);
    let mismatch = |got: &str| {
        bad_request(format!(
            "tuple {row}, attribute {name:?}: expected {} or null, got {got}",
            type_label(ty)
        ))
    };
    Ok(match (cell, ty) {
        (json::Value::Null, _) => Value::Null,
        (json::Value::Num(n), AttrType::Int) => {
            if n.fract() == 0.0 && *n >= i64::MIN as f64 && *n <= i64::MAX as f64 {
                Value::Int(*n as i64)
            } else {
                return Err(mismatch("a non-integer number"));
            }
        }
        (json::Value::Num(n), AttrType::Float) => Value::Float(*n),
        (json::Value::Str(s), AttrType::Text) => Value::Text(s.clone()),
        (json::Value::Bool(b), AttrType::Bool) => Value::Bool(*b),
        (json::Value::Num(_), _) => return Err(mismatch("a number")),
        (json::Value::Str(_), _) => return Err(mismatch("a string")),
        (json::Value::Bool(_), _) => return Err(mismatch("a boolean")),
        (json::Value::Arr(_), _) => return Err(mismatch("an array")),
        (json::Value::Obj(_), _) => return Err(mismatch("an object")),
    })
}

fn impute_endpoint(ctx: &Ctx, req: &Request) -> Response {
    let opts = match parse_opts(ctx, req) {
        Ok(o) => o,
        Err(resp) => return resp,
    };

    let mut engine = ctx.lock_engine();
    let result = {
        let tuples = match parse_tuples(&engine, req) {
            Ok(t) => t,
            Err(resp) => return resp,
        };
        let mut config = engine.config().clone();
        config.explain = opts.explain;
        config.explain_sample = opts.explain_sample;
        config.budget = match opts.timeout_ms {
            Some(ms) => Budget::unlimited().with_deadline(Duration::from_millis(ms)),
            None => Budget::unlimited(),
        };
        // A limited request gets an enabled tracer so a degraded response
        // can attribute where its budget went (phase self-times).
        config.tracer = if config.budget.is_limited() {
            Tracer::enabled()
        } else {
            Tracer::disabled()
        };
        match engine.impute_batch_with(tuples, &config) {
            Ok(result) => result,
            Err(e) => return bad_request(e),
        }
    };
    drop(engine);

    ctx.metrics.counter("serve.batches").inc();
    ctx.metrics.counter("serve.cells_missing").add(result.stats.missing_total as u64);
    ctx.metrics.counter("serve.cells_imputed").add(result.stats.imputed as u64);
    if result.budget.tripped.is_some() {
        ctx.metrics.counter("serve.budget_tripped").inc();
    }
    Response::json(200, render_batch(&result, opts.explain))
}

/// Serializes a [`BatchResult`] as the `/v1/impute` response document.
pub fn render_batch(result: &BatchResult, explain: bool) -> String {
    let mut out = String::from("{\"tuples\":[");
    for (i, tuple) in result.tuples.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        for (j, v) in tuple.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            match v {
                Value::Null => out.push_str("null"),
                Value::Int(n) => out.push_str(&n.to_string()),
                Value::Float(f) => write_f64(&mut out, *f),
                Value::Text(s) => write_str(&mut out, s),
                Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            }
        }
        out.push(']');
    }
    out.push_str("],\"outcomes\":[");
    for (i, (cell, outcome)) in result.outcomes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"row\":{},\"attr\":{},\"outcome\":\"{}\"}}",
            cell.row,
            cell.col,
            outcome.label()
        ));
    }
    out.push_str(&format!(
        "],\"stats\":{{\"missing\":{},\"imputed\":{},\"unimputed\":{},\"skipped_budget\":{},\"cancelled\":{}}}",
        result.stats.missing_total,
        result.stats.imputed,
        result.stats.unimputed,
        result.stats.skipped_budget,
        result.stats.cancelled
    ));
    out.push_str(&format!(",\"degraded\":{}", result.budget.tripped.is_some()));
    if result.budget.tripped.is_some() || !result.budget.phases.is_empty() {
        out.push_str(",\"budget\":{");
        match result.budget.tripped {
            Some(trip) => {
                out.push_str("\"tripped\":");
                write_str(&mut out, trip.label());
            }
            None => out.push_str("\"tripped\":null"),
        }
        if let Some(phase) = result.budget.tripped_at {
            out.push_str(",\"tripped_at\":");
            write_str(&mut out, phase);
        }
        out.push_str(",\"phases\":[");
        for (i, (label, us)) in result.budget.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('[');
            write_str(&mut out, label);
            out.push_str(&format!(",{us}]"));
        }
        out.push_str("]}");
    }
    if explain {
        out.push_str(",\"explains\":[");
        for (i, exp) in result.explains.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"row\":{},\"attr\":{},\"outcome\":\"{}\",\"clusters\":{},\"candidates\":{}",
                exp.cell.row,
                exp.cell.col,
                exp.outcome.label(),
                exp.clusters,
                exp.candidates
            ));
            if let Some(w) = &exp.winner {
                out.push_str(&format!(
                    ",\"winner\":{{\"donor_row\":{},\"via_rfd\":{},\"distance\":",
                    w.donor_row, w.via_rfd
                ));
                write_f64(&mut out, w.distance);
                if let Some(margin) = w.runner_up_margin {
                    out.push_str(",\"runner_up_margin\":");
                    write_f64(&mut out, margin);
                }
                out.push('}');
            }
            if let Some(dry) = exp.dried_up {
                out.push_str(",\"dried_up\":");
                write_str(&mut out, dry.label());
            }
            out.push('}');
        }
        out.push(']');
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use renuver_core::RenuverConfig;
    use renuver_rfd::{Constraint, Rfd, RfdSet};

    fn test_ctx() -> Ctx {
        let rel = csv::read_str(
            "City:text,Zip:text\n\
             Malibu,90265\n\
             Malibu,90265\n\
             Hollywood,90028\n",
        )
        .unwrap();
        let rfds = RfdSet::from_vec(vec![Rfd::new(
            vec![Constraint::new(0, 0.0)],
            Constraint::new(1, 0.0),
        )]);
        let fingerprint = crate::artifact::schema_fingerprint(rel.schema());
        let engine = Engine::prepare(rel, rfds, RenuverConfig::default());
        Ctx::new(
            engine,
            ModelInfo {
                source: "test".into(),
                schema_fingerprint: fingerprint,
                artifact_bytes: 0,
            },
            None,
            60_000,
        )
    }

    fn get(path: &str) -> Request {
        let (path, query) = match path.split_once('?') {
            Some((p, q)) => (p, q),
            None => (path, ""),
        };
        Request {
            method: "GET".into(),
            path: path.into(),
            query: query
                .split('&')
                .filter(|s| !s.is_empty())
                .map(|s| match s.split_once('=') {
                    Some((k, v)) => (k.to_string(), v.to_string()),
                    None => (s.to_string(), String::new()),
                })
                .collect(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    fn post(path: &str, content_type: &str, body: &str) -> Request {
        let mut req = get(path);
        req.method = "POST".into();
        req.headers.push(("content-type".into(), content_type.into()));
        req.body = body.as_bytes().to_vec();
        req
    }

    #[test]
    fn healthz_and_unknown_paths() {
        let ctx = test_ctx();
        assert_eq!(route(&ctx, &get("/healthz")).status, 200);
        assert_eq!(route(&ctx, &get("/nope")).status, 404);
        assert_eq!(route(&ctx, &get("/v1/impute")).status, 405);
        assert_eq!(ctx.metrics.counter("http.requests").get(), 3);
        assert_eq!(ctx.metrics.counter("http.responses_2xx").get(), 1);
        assert_eq!(ctx.metrics.counter("http.responses_4xx").get(), 2);
    }

    #[test]
    fn model_endpoint_describes_the_schema() {
        let ctx = test_ctx();
        let resp = route(&ctx, &get("/v1/model"));
        assert_eq!(resp.status, 200);
        let doc = json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(doc.get("rows").unwrap().as_u64(), Some(3));
        assert_eq!(doc.get("rfds").unwrap().as_u64(), Some(1));
        let attrs = doc.get("attrs").unwrap().as_array().unwrap();
        assert_eq!(attrs[0].get("name").unwrap().as_str(), Some("City"));
        assert_eq!(attrs[1].get("type").unwrap().as_str(), Some("text"));
    }

    #[test]
    fn impute_json_round_trip() {
        let ctx = test_ctx();
        let resp = route(
            &ctx,
            &post(
                "/v1/impute?explain=1",
                "application/json",
                r#"{"tuples": [["Malibu", null], ["Atlantis", null]]}"#,
            ),
        );
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        let doc = json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        let tuples = doc.get("tuples").unwrap().as_array().unwrap();
        assert_eq!(tuples[0].as_array().unwrap()[1].as_str(), Some("90265"));
        assert_eq!(tuples[1].as_array().unwrap()[1], json::Value::Null);
        let outcomes = doc.get("outcomes").unwrap().as_array().unwrap();
        assert_eq!(outcomes.len(), 2);
        assert_eq!(outcomes[0].get("outcome").unwrap().as_str(), Some("imputed"));
        assert_eq!(outcomes[1].get("outcome").unwrap().as_str(), Some("no_candidates"));
        let explains = doc.get("explains").unwrap().as_array().unwrap();
        assert_eq!(explains.len(), 2);
        assert_eq!(explains[1].get("dried_up").unwrap().as_str(), Some("no_candidates"));
        assert_eq!(ctx.metrics.counter("serve.cells_imputed").get(), 1);
        assert_eq!(ctx.metrics.counter("serve.cells_missing").get(), 2);
    }

    #[test]
    fn impute_csv_round_trip() {
        let ctx = test_ctx();
        let resp = route(
            &ctx,
            &post("/v1/impute", "text/csv", "City:text,Zip:text\nMalibu,_\n"),
        );
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        let doc = json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        let tuples = doc.get("tuples").unwrap().as_array().unwrap();
        assert_eq!(tuples[0].as_array().unwrap()[1].as_str(), Some("90265"));
    }

    #[test]
    fn untyped_csv_headers_coerce_to_the_model_schema() {
        let rel = csv::read_str("City:text,Class:int\nMalibu,6\nMalibu,6\nVenice,2\n").unwrap();
        let rfds = RfdSet::from_vec(vec![
            Rfd::new(vec![Constraint::new(0, 0.0)], Constraint::new(1, 0.0)),
            Rfd::new(vec![Constraint::new(1, 0.0)], Constraint::new(0, 0.0)),
        ]);
        let engine = Engine::prepare(rel, rfds, RenuverConfig::default());
        let ctx = Ctx::new(
            engine,
            ModelInfo { source: "test".into(), schema_fingerprint: 0, artifact_bytes: 0 },
            None,
            60_000,
        );
        // Plain header, no `:type` annotations: "6" must land as Int(6).
        let resp = route(&ctx, &post("/v1/impute", "text/csv", "City,Class\nMalibu,_\n"));
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        let doc = json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        let tuples = doc.get("tuples").unwrap().as_array().unwrap();
        assert_eq!(tuples[0].as_array().unwrap()[1].as_u64(), Some(6));
        // A typed value in the body is accepted too.
        let resp = route(&ctx, &post("/v1/impute", "text/csv", "City,Class\n,2\n"));
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        let doc = json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        let tuples = doc.get("tuples").unwrap().as_array().unwrap();
        assert_eq!(tuples[0].as_array().unwrap()[0].as_str(), Some("Venice"));
    }

    #[test]
    fn invalid_bodies_are_400_never_500() {
        let ctx = test_ctx();
        for (ct, body) in [
            ("application/json", "not json"),
            ("application/json", "{\"rows\": []}"),
            ("application/json", "{\"tuples\": [[\"only one\"]]}"),
            ("application/json", "{\"tuples\": [[1, \"zip\"]]}"),
            ("application/json", "{\"tuples\": [{\"a\": 1}]}"),
            ("text/csv", "Wrong:text,Header:text\nx,y\n"),
            ("application/x-whatever", "???"),
        ] {
            let resp = route(&ctx, &post("/v1/impute", ct, body));
            assert_eq!(resp.status, 400, "{ct} {body:?}");
        }
        // The engine still serves after every rejection.
        let resp = route(
            &ctx,
            &post("/v1/impute", "application/json", r#"{"tuples": [["Malibu", null]]}"#),
        );
        assert_eq!(resp.status, 200);
    }

    #[test]
    fn bad_query_params_are_400() {
        let ctx = test_ctx();
        let req = post("/v1/impute?timeout_ms=soon", "application/json", "{\"tuples\":[]}");
        assert_eq!(route(&ctx, &req).status, 400);
        let req = post(
            "/v1/impute?explain_sample=sometimes",
            "application/json",
            "{\"tuples\":[]}",
        );
        assert_eq!(route(&ctx, &req).status, 400);
    }

    #[test]
    fn timed_requests_report_budget_attribution() {
        let ctx = test_ctx();
        let resp = route(
            &ctx,
            &post(
                "/v1/impute?timeout_ms=60000",
                "application/json",
                r#"{"tuples": [["Malibu", null]]}"#,
            ),
        );
        assert_eq!(resp.status, 200);
        let doc = json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(doc.get("degraded").unwrap().as_bool(), Some(false));
        // The tracer was enabled for the limited budget, so phase
        // self-times are attributed even on a healthy response.
        let budget = doc.get("budget").unwrap();
        assert!(!budget.get("phases").unwrap().as_array().unwrap().is_empty());
    }

    #[test]
    fn render_batch_is_valid_json_for_empty_results() {
        let ctx = test_ctx();
        let mut engine = ctx.lock_engine();
        let result = engine.impute_batch(Vec::new()).unwrap();
        drop(engine);
        let doc = json::parse(&render_batch(&result, true)).unwrap();
        assert_eq!(doc.get("tuples").unwrap().as_array().unwrap().len(), 0);
    }
}
