//! Request routing and the imputation endpoints.
//!
//! The API surface (all bodies JSON unless noted):
//!
//! - `GET /healthz` — liveness plus a `state` field
//!   (`ok` | `recovering` | `compacting` | `degraded`) and the highest
//!   durable sequence number. Always `200` while the process lives.
//! - `GET /v1/model` — the loaded model: schema, row/RFD counts,
//!   fingerprint, provenance, durable sequence number.
//! - `GET /metrics` — the server's metrics registry as the standard
//!   `renuver-obs` text table.
//! - `POST /v1/impute` — tuples with `null` holes in, imputed tuples
//!   with per-cell outcomes out. Accepts `{"tuples": [[...]]}` JSON or,
//!   with `Content-Type: text/csv`, a CSV document whose header names
//!   match the model schema (type annotations optional — values are
//!   coerced to the model's types). Query parameters: `timeout_ms` (budget
//!   for this request, capped by the server ceiling), `explain`
//!   (include per-cell explain records), `explain_sample`
//!   (`all` | `dry` | an integer `k` for every k-th cell).
//! - `POST /v1/ingest` — same body formats as `/v1/impute`, but the
//!   repaired batch is *committed*: appended to the WAL (fsynced before
//!   the response), folded into the model relation, oracle, and index,
//!   and available as donors to subsequent requests. `503` while the
//!   WAL is still replaying, when the model was served without
//!   durability, or after a WAL write failure degraded the server.
//! - `POST /v1/compact` — fold the WAL into a fresh snapshot (atomic
//!   rename) and truncate it.
//! - `PUT /v1/model` — hot model swap: the body is a complete `.rnv`
//!   artifact with the same schema fingerprint as the loaded model.
//!   The new model is installed atomically (in-flight requests finish
//!   on the old one); a fingerprint mismatch is rejected with `409`.
//!   `SIGHUP` triggers the same swap from the model path on disk.
//!
//! A context serves one of two topologies: **single** (one
//! `Mutex<Engine>`, the original write path) or **sharded** (a
//! [`Registry`] of N relation shards behind an atomically swapped
//! snapshot — imputes run lock-free and merge bit-identically to the
//! single engine; see `crates/serve/src/registry.rs`).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, RwLock, Weak};
use std::time::{Duration, Instant};

use renuver_budget::Budget;
use renuver_core::{BatchResult, Engine, ExplainSample};
use renuver_data::{csv, AttrType, Schema, Tuple, Value};
use renuver_obs::json::{self, write_f64, write_str};
use renuver_obs::{Field, FieldValue, Metrics, TraceRecord, Tracer};

use crate::flight::{FlightOptions, FlightRecorder, SlowEntry};
use crate::http::{Request, Response};
use crate::jobs::{JobState, JobStatus, TuneJobs};
use crate::registry::{Registry, RegistryError};
use crate::store::Durable;

/// The server's write-path health, surfaced by `GET /healthz`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ServeState {
    /// Serving reads and (when durable) writes.
    Ok = 0,
    /// WAL replay is still running; ingest is refused with `503`.
    Recovering = 1,
    /// A compaction snapshot is being written.
    Compacting = 2,
    /// A WAL write failed after the engine accepted work — ingest is
    /// refused until the operator restarts (recovery re-syncs state).
    Degraded = 3,
}

impl ServeState {
    /// The wire label used in `/healthz` and `/v1/model`.
    pub fn label(self) -> &'static str {
        match self {
            ServeState::Ok => "ok",
            ServeState::Recovering => "recovering",
            ServeState::Compacting => "compacting",
            ServeState::Degraded => "degraded",
        }
    }
    fn from_u8(v: u8) -> ServeState {
        match v {
            1 => ServeState::Recovering,
            2 => ServeState::Compacting,
            3 => ServeState::Degraded,
            _ => ServeState::Ok,
        }
    }
}

/// Provenance of the loaded model, surfaced by `GET /v1/model`.
#[derive(Clone)]
pub struct ModelInfo {
    /// Where the model came from: an artifact path or a dataset path.
    pub source: String,
    /// Schema fingerprint (as stored in the artifact header).
    pub schema_fingerprint: u64,
    /// Artifact size in bytes, `0` when the model was built in-process.
    pub artifact_bytes: usize,
}

/// How the context serves: one engine behind a mutex, or a sharded
/// registry behind an atomically swapped snapshot.
//
// The variants differ by ~500 bytes, but exactly one Topology exists
// per process (inside the one `Ctx`), so boxing would buy nothing.
#[allow(clippy::large_enum_variant)]
pub enum Topology {
    /// The original topology: every request serializes on the engine
    /// lock; ingest and compaction run inline.
    Single {
        /// The serving engine.
        engine: Mutex<Engine>,
        /// The durable store, once recovery has installed it. `None`
        /// means the model is served read-only (no WAL configured, or
        /// replay is still running). Lock order: engine before durable.
        durable: Mutex<Option<Durable>>,
    },
    /// N shard parts; imputes clone an `Arc` snapshot and run lock-free,
    /// compaction happens off-request on a worker thread.
    Sharded(Registry),
}

/// Leaked-once per-shard metric names (the registry requires
/// `&'static str` instrument names).
struct ShardLabels {
    rows: &'static str,
    ingest_rows: &'static str,
    /// Windowed histogram of the shard's scan-leg time per traced
    /// request, microseconds.
    scan_us: &'static str,
}

/// Shared server state: the topology (engine or shard registry), model
/// provenance, the metrics registry, and the request-budget policy.
pub struct Ctx {
    /// How requests are served.
    pub topology: Topology,
    /// Model provenance. Behind a lock: a hot swap replaces it.
    info: RwLock<ModelInfo>,
    /// Server-lifetime metrics, rendered by `GET /metrics`.
    pub metrics: Metrics,
    /// Budget applied to requests that do not pass `timeout_ms`.
    pub default_timeout_ms: Option<u64>,
    /// Hard ceiling on any per-request `timeout_ms`.
    pub max_timeout_ms: u64,
    /// Write-path state machine (see [`ServeState`]). For the sharded
    /// topology this is the fallback when no shard overrides it.
    state: AtomicU8,
    /// Highest durable sequence number, mirrored so read endpoints can
    /// report it without taking any write lock.
    seq: AtomicU64,
    /// Where `SIGHUP` reloads the model from, when serving a file.
    model_path: Mutex<Option<PathBuf>>,
    /// Per-shard instrument names (empty for the single topology).
    shard_labels: Vec<ShardLabels>,
    /// The flight recorder: request ids, access log, slow ring.
    flight: FlightRecorder,
    /// The async tune-job registry (`POST /v1/tune`).
    jobs: TuneJobs,
    /// Weak self-reference, bound by `Server::bind` (or [`Ctx::bind_self`]
    /// in tests), so request handlers can hand an owning handle to the
    /// worker threads they spawn.
    self_ref: Mutex<Weak<Ctx>>,
}

const BASE_COUNTERS: [&str; 17] = [
    "http.requests",
    "http.responses_2xx",
    "http.responses_4xx",
    "http.responses_5xx",
    "http.shed",
    "serve.batches",
    "serve.cells_missing",
    "serve.cells_imputed",
    "serve.budget_tripped",
    "http.timeouts",
    "serve.ingest_batches",
    "serve.ingest_rows",
    "serve.compactions",
    "serve.compact_failed",
    "serve.wal_degraded",
    "serve.swaps",
    "serve.swap_rejected",
];

/// Endpoint labels for latency attribution. `other` covers unknown
/// paths and method mismatches; `error` covers protocol-level failures
/// the connection handler rejects before routing (408/413/431/400).
const ENDPOINTS: [&str; 11] = [
    "healthz", "metrics", "model", "swap", "impute", "ingest", "compact", "debug", "tune", "other",
    "error",
];

/// Windowed latency histogram names, `[endpoint][status class]`, in
/// [`ENDPOINTS`] order. Literal so registration matches observation
/// without leaking (the metrics registry wants `&'static str`).
const LATENCY_WINDOWS: [[&str; 3]; 11] = [
    ["serve.latency.healthz.2xx", "serve.latency.healthz.4xx", "serve.latency.healthz.5xx"],
    ["serve.latency.metrics.2xx", "serve.latency.metrics.4xx", "serve.latency.metrics.5xx"],
    ["serve.latency.model.2xx", "serve.latency.model.4xx", "serve.latency.model.5xx"],
    ["serve.latency.swap.2xx", "serve.latency.swap.4xx", "serve.latency.swap.5xx"],
    ["serve.latency.impute.2xx", "serve.latency.impute.4xx", "serve.latency.impute.5xx"],
    ["serve.latency.ingest.2xx", "serve.latency.ingest.4xx", "serve.latency.ingest.5xx"],
    ["serve.latency.compact.2xx", "serve.latency.compact.4xx", "serve.latency.compact.5xx"],
    ["serve.latency.debug.2xx", "serve.latency.debug.4xx", "serve.latency.debug.5xx"],
    ["serve.latency.tune.2xx", "serve.latency.tune.4xx", "serve.latency.tune.5xx"],
    ["serve.latency.other.2xx", "serve.latency.other.4xx", "serve.latency.other.5xx"],
    ["serve.latency.error.2xx", "serve.latency.error.4xx", "serve.latency.error.5xx"],
];

/// Lifecycle event counters, one per `schema::SERVER_EVENTS` entry.
/// These count even when no `--log-out` sink is attached, so the e2e
/// reconciliation can compare `/metrics` against the event log.
const EVENT_COUNTERS: [(&str, &str); 11] = [
    ("recovery", "serve.events.recovery"),
    ("swap", "serve.events.swap"),
    ("compaction", "serve.events.compaction"),
    ("shard_degraded", "serve.events.shard_degraded"),
    ("shard_healed", "serve.events.shard_healed"),
    ("shed", "serve.events.shed"),
    ("read_timeout", "serve.events.read_timeout"),
    ("wal_degraded", "serve.events.wal_degraded"),
    ("tune_started", "serve.events.tune_started"),
    ("tune_finished", "serve.events.tune_finished"),
    ("tune_cancelled", "serve.events.tune_cancelled"),
];

/// The windowed latency histogram for `endpoint` × `status`.
fn latency_name(endpoint: &'static str, status: u16) -> &'static str {
    let ep = ENDPOINTS
        .iter()
        .position(|e| *e == endpoint)
        .expect("endpoint label missing from ENDPOINTS");
    let class = match status {
        200..=299 => 0,
        400..=499 => 1,
        _ => 2,
    };
    LATENCY_WINDOWS[ep][class]
}

/// Pre-registers the observability instruments so `/metrics` shows
/// them (zeroed) before any traffic arrives, matching the
/// `BASE_COUNTERS` convention.
fn register_observability(metrics: &Metrics) {
    for windows in LATENCY_WINDOWS {
        for name in windows {
            metrics.windowed(name);
        }
    }
    for (_, counter) in EVENT_COUNTERS {
        metrics.counter(counter);
    }
}

impl Ctx {
    /// Builds a single-engine context with the standard counters
    /// pre-registered (so `/metrics` shows zeros instead of omitting
    /// untouched counters).
    pub fn new(
        engine: Engine,
        info: ModelInfo,
        default_timeout_ms: Option<u64>,
        max_timeout_ms: u64,
    ) -> Ctx {
        let metrics = Metrics::new();
        for name in BASE_COUNTERS {
            metrics.counter(name);
        }
        register_observability(&metrics);
        Ctx {
            topology: Topology::Single {
                engine: Mutex::new(engine),
                durable: Mutex::new(None),
            },
            info: RwLock::new(info),
            metrics,
            default_timeout_ms,
            max_timeout_ms,
            state: AtomicU8::new(ServeState::Ok as u8),
            seq: AtomicU64::new(0),
            model_path: Mutex::new(None),
            shard_labels: Vec::new(),
            flight: FlightRecorder::new(FlightOptions::default()),
            jobs: TuneJobs::new(),
            self_ref: Mutex::new(Weak::new()),
        }
    }

    /// Builds a sharded context over `registry`, with per-shard row
    /// gauges and ingest counters registered up front.
    pub fn new_sharded(
        registry: Registry,
        info: ModelInfo,
        default_timeout_ms: Option<u64>,
        max_timeout_ms: u64,
    ) -> Ctx {
        let metrics = Metrics::new();
        for name in BASE_COUNTERS {
            metrics.counter(name);
        }
        register_observability(&metrics);
        let shard_labels: Vec<ShardLabels> = (0..registry.n_shards())
            .map(|k| ShardLabels {
                rows: Box::leak(format!("serve.shard{k}.rows").into_boxed_str()),
                ingest_rows: Box::leak(format!("serve.shard{k}.ingest_rows").into_boxed_str()),
                scan_us: Box::leak(format!("serve.shard{k}.scan_us").into_boxed_str()),
            })
            .collect();
        for (labels, rows) in shard_labels.iter().zip(registry.shard_rows()) {
            metrics.gauge(labels.rows).set(rows as u64);
            metrics.counter(labels.ingest_rows);
            metrics.windowed(labels.scan_us);
        }
        let seq = registry.snapshot().seq;
        Ctx {
            topology: Topology::Sharded(registry),
            info: RwLock::new(info),
            metrics,
            default_timeout_ms,
            max_timeout_ms,
            state: AtomicU8::new(ServeState::Ok as u8),
            seq: AtomicU64::new(seq),
            model_path: Mutex::new(None),
            shard_labels,
            flight: FlightRecorder::new(FlightOptions::default()),
            jobs: TuneJobs::new(),
            self_ref: Mutex::new(Weak::new()),
        }
    }

    /// Replaces the flight recorder (CLI wiring: `--log-out`,
    /// `--slow-threshold-ms`, `--no-flight`). Call before serving.
    pub fn set_flight(&mut self, opts: FlightOptions) {
        self.flight = FlightRecorder::new(opts);
    }

    /// The flight recorder.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// The tune-job registry.
    pub fn jobs(&self) -> &TuneJobs {
        &self.jobs
    }

    /// Binds the weak self-reference that lets request handlers spawn
    /// worker threads owning the context. `Server::bind` calls this;
    /// tests that route to `/v1/tune` directly must call it themselves.
    pub fn bind_self(self: &Arc<Ctx>) {
        *self.self_ref.lock().unwrap_or_else(|e| e.into_inner()) = Arc::downgrade(self);
    }

    fn self_arc(&self) -> Option<Arc<Ctx>> {
        self.self_ref.lock().unwrap_or_else(|e| e.into_inner()).upgrade()
    }

    /// Records one lifecycle event: bumps its `serve.events.*` counter
    /// (always — the counters are part of `/metrics` regardless of
    /// logging) and appends a `server_event` log line when the recorder
    /// is enabled and a `--log-out` sink is attached.
    pub fn server_event(&self, event: &'static str, fields: Vec<Field>) {
        if let Some((_, counter)) = EVENT_COUNTERS.iter().find(|(e, _)| *e == event) {
            self.metrics.counter(counter).inc();
        }
        self.flight.server_event(event, fields);
    }

    /// Current write-path state. Sharded contexts derive it: degraded if
    /// any shard is, compacting while the background worker runs.
    pub fn state(&self) -> ServeState {
        if let Topology::Sharded(reg) = &self.topology {
            if !reg.degraded_shards().is_empty() {
                return ServeState::Degraded;
            }
            if reg.compacting() {
                return ServeState::Compacting;
            }
        }
        ServeState::from_u8(self.state.load(Ordering::Acquire))
    }

    /// Moves the write-path state machine (single topology; sharded
    /// contexts derive their state from the registry).
    pub fn set_state(&self, state: ServeState) {
        self.state.store(state as u8, Ordering::Release);
    }

    /// Highest durable sequence number (0 when not durable).
    pub fn seq(&self) -> u64 {
        self.seq.load(Ordering::Acquire)
    }

    /// A snapshot of the model provenance.
    pub fn info(&self) -> ModelInfo {
        self.info.read().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Records where `SIGHUP` should reload the model from.
    pub fn set_model_path(&self, path: PathBuf) {
        *self.model_path.lock().unwrap_or_else(|e| e.into_inner()) = Some(path);
    }

    /// The registered model path, if any.
    pub fn model_path(&self) -> Option<PathBuf> {
        self.model_path.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// The shard registry, when sharded.
    pub fn registry(&self) -> Option<&Registry> {
        match &self.topology {
            Topology::Sharded(reg) => Some(reg),
            Topology::Single { .. } => None,
        }
    }

    /// Installs the durable store after WAL replay finished and flips
    /// the state to `ok`. Until this runs, `/v1/ingest` answers `503`.
    /// Single topology only.
    pub fn install_durable(&self, durable: Durable) {
        let Topology::Single { durable: slot, .. } = &self.topology else {
            panic!("install_durable on a sharded context");
        };
        self.seq.store(durable.last_seq(), Ordering::Release);
        *slot.lock().unwrap_or_else(|p| p.into_inner()) = Some(durable);
        self.set_state(ServeState::Ok);
    }

    /// Locks the engine, recovering a poisoned lock by rolling back any
    /// transient rows the panicking request left behind. Single topology
    /// only — sharded requests never lock.
    pub fn lock_engine(&self) -> std::sync::MutexGuard<'_, Engine> {
        let Topology::Single { engine, .. } = &self.topology else {
            panic!("lock_engine on a sharded context");
        };
        // A panic while holding the lock poisons it and may leave the
        // panicking request's transient rows appended; recover the guard
        // and restore the reference state before serving again.
        match engine.lock() {
            Ok(g) => g,
            Err(poisoned) => {
                let mut g = poisoned.into_inner();
                g.reset_transient();
                g
            }
        }
    }

    fn lock_durable(&self) -> std::sync::MutexGuard<'_, Option<Durable>> {
        let Topology::Single { durable, .. } = &self.topology else {
            panic!("lock_durable on a sharded context");
        };
        durable.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// Per-request observability scratch: the endpoint handlers fill it,
/// `route` folds it into the access-log line and the slow ring.
#[derive(Default)]
struct Telemetry {
    cells_missing: Option<u64>,
    cells_imputed: Option<u64>,
    /// Budget phase self-times (label, µs), present when the request
    /// ran with an enabled tracer.
    phases: Vec<(String, u64)>,
    /// Per-shard scan legs (shard, µs), from `shard_leg` trace events.
    shards: Vec<(u64, u64)>,
    /// Records returned in the `?trace=1` envelope.
    trace_events: Option<u64>,
}

/// Dispatches one request to its endpoint and accounts it in the
/// registry. Never panics: malformed input maps to 4xx.
pub fn route(ctx: &Ctx, req: &Request) -> Response {
    ctx.metrics.counter("http.requests").inc();
    let started = Instant::now();
    let mut tel = Telemetry::default();
    let (endpoint, mut resp) = match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => ("healthz", healthz_endpoint(ctx)),
        ("GET", "/metrics") => ("metrics", metrics_endpoint(ctx, req)),
        ("GET", "/v1/model") => ("model", model_endpoint(ctx)),
        ("PUT", "/v1/model") => ("swap", swap_endpoint(ctx, req)),
        ("POST", "/v1/impute") => ("impute", impute_endpoint(ctx, req, &mut tel)),
        ("POST", "/v1/ingest") => ("ingest", ingest_endpoint(ctx, req, &mut tel)),
        ("POST", "/v1/compact") => ("compact", compact_endpoint(ctx)),
        ("GET", "/v1/debug/requests") => ("debug", debug_requests_endpoint(ctx)),
        ("POST", "/v1/tune") => ("tune", tune_submit_endpoint(ctx, req)),
        (method, path) if path.starts_with("/v1/tune/") => {
            ("tune", tune_job_endpoint(ctx, method, path))
        }
        (
            _,
            "/healthz" | "/metrics" | "/v1/model" | "/v1/impute" | "/v1/ingest" | "/v1/compact"
            | "/v1/debug/requests" | "/v1/tune",
        ) => ("other", Response::text(405, "method not allowed\n")),
        _ => ("other", Response::text(404, "not found\n")),
    };
    let class = match resp.status {
        200..=299 => "http.responses_2xx",
        400..=499 => "http.responses_4xx",
        _ => "http.responses_5xx",
    };
    ctx.metrics.counter(class).inc();
    finish_request(ctx, req, endpoint, &mut resp, started, tel);
    resp
}

/// The flight recorder's per-request tail: latency histogram, request
/// id echo, access-log line, slow-ring admission. Observation only —
/// when the recorder is off the response leaves byte-identical to one
/// from a recorder-less server (the differential e2e pins this).
fn finish_request(
    ctx: &Ctx,
    req: &Request,
    endpoint: &'static str,
    resp: &mut Response,
    started: Instant,
    tel: Telemetry,
) {
    if !ctx.flight.is_enabled() {
        return;
    }
    let latency_us = started.elapsed().as_micros() as u64;
    ctx.metrics.windowed(latency_name(endpoint, resp.status)).observe(latency_us);
    for &(shard, scan_us) in &tel.shards {
        if let Some(labels) = ctx.shard_labels.get(shard as usize) {
            ctx.metrics.windowed(labels.scan_us).observe(scan_us);
        }
    }
    let id = ctx.flight.request_id(req.header("x-request-id"));
    if ctx.flight.has_log() {
        let mut fields: Vec<Field> = vec![
            ("id", FieldValue::Text(id.clone())),
            ("endpoint", FieldValue::Str(endpoint)),
            ("status", FieldValue::U64(u64::from(resp.status))),
            ("latency_us", FieldValue::U64(latency_us)),
            ("bytes_in", FieldValue::U64(req.body.len() as u64)),
            ("bytes_out", FieldValue::U64(resp.body.len() as u64)),
        ];
        if let Some(v) = tel.cells_missing {
            fields.push(("cells_missing", FieldValue::U64(v)));
        }
        if let Some(v) = tel.cells_imputed {
            fields.push(("cells_imputed", FieldValue::U64(v)));
        }
        if !tel.phases.is_empty() {
            fields.push(("phases", FieldValue::U64Map(tel.phases.clone())));
        }
        if !tel.shards.is_empty() {
            fields.push(("shards", FieldValue::U64s(tel.shards.iter().map(|&(k, _)| k).collect())));
        }
        if let Some(n) = tel.trace_events {
            fields.push(("trace_events", FieldValue::U64(n)));
        }
        ctx.flight.access(fields);
    }
    ctx.flight.note_slow(SlowEntry {
        id: id.clone(),
        endpoint,
        status: resp.status,
        latency_us,
        phases: tel.phases,
    });
    resp.extra_headers.push(("X-Request-Id", id));
}

/// The connection handler's access-log hook for requests that never
/// reach `route` (read timeout, oversized body/headers, bad request
/// line). They already count in `http.requests`/`http.responses_4xx`;
/// this gives them the same latency attribution, log line, and id echo
/// under the `error` endpoint label.
pub(crate) fn record_protocol_error(
    ctx: &Ctx,
    resp: &mut Response,
    started: Instant,
    bytes_in: usize,
) {
    if !ctx.flight.is_enabled() {
        return;
    }
    let latency_us = started.elapsed().as_micros() as u64;
    ctx.metrics.windowed(latency_name("error", resp.status)).observe(latency_us);
    let id = ctx.flight.request_id(None);
    if ctx.flight.has_log() {
        ctx.flight.access(vec![
            ("id", FieldValue::Text(id.clone())),
            ("endpoint", FieldValue::Str("error")),
            ("status", FieldValue::U64(u64::from(resp.status))),
            ("latency_us", FieldValue::U64(latency_us)),
            ("bytes_in", FieldValue::U64(bytes_in as u64)),
            ("bytes_out", FieldValue::U64(resp.body.len() as u64)),
        ]);
    }
    resp.extra_headers.push(("X-Request-Id", id));
}

/// `GET /metrics`: the standard text table, or Prometheus exposition
/// when asked for via `?format=prometheus` or content negotiation.
fn metrics_endpoint(ctx: &Ctx, req: &Request) -> Response {
    let explicit = req.query_param("format");
    if let Some(f) = explicit {
        if f != "prometheus" && f != "table" {
            return bad_request(format!("format={f:?} is not \"prometheus\" or \"table\""));
        }
    }
    let accept = req.header("accept").unwrap_or("");
    let prometheus = explicit == Some("prometheus")
        || (explicit.is_none()
            && (accept.contains("application/openmetrics-text") || accept.contains("version=0.0.4")));
    if prometheus {
        let mut resp = Response::text(200, ctx.metrics.render_prometheus());
        resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
        resp
    } else {
        Response::text(200, ctx.metrics.render_table())
    }
}

/// `GET /v1/debug/requests`: dump the slow-request ring.
fn debug_requests_endpoint(ctx: &Ctx) -> Response {
    let mut out = format!(
        "{{\"enabled\":{},\"slow_threshold_us\":{},\"requests\":[",
        ctx.flight.is_enabled(),
        ctx.flight.slow_threshold_us()
    );
    for (i, e) in ctx.flight.slow_snapshot().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"id\":");
        write_str(&mut out, &e.id);
        out.push_str(&format!(
            ",\"endpoint\":\"{}\",\"status\":{},\"latency_us\":{},\"phases\":[",
            e.endpoint, e.status, e.latency_us
        ));
        for (j, (label, us)) in e.phases.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push('[');
            write_str(&mut out, label);
            out.push_str(&format!(",{us}]"));
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    Response::json(200, out)
}

/// Liveness plus the write-path state. Always `200` while the process
/// can answer at all — orchestrators key restarts off the `state` field
/// (`degraded` means the WAL can no longer accept writes), not the
/// status code, so a degraded-but-readable server keeps serving reads.
fn healthz_endpoint(ctx: &Ctx) -> Response {
    let mut out = format!(
        "{{\"status\":\"ok\",\"state\":\"{}\",\"seq\":{}",
        ctx.state().label(),
        ctx.seq()
    );
    if let Topology::Sharded(reg) = &ctx.topology {
        out.push_str(&format!(",\"compacting\":{}", reg.compacting()));
        out.push_str(",\"shards\":[");
        let rows = reg.shard_rows();
        for (k, state) in reg.shard_states().iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"shard\":{k},\"state\":\"{}\",\"rows\":{}}}",
                state.label(),
                rows[k]
            ));
        }
        out.push(']');
    }
    if let Some((id, status, iterations)) = ctx.jobs.snapshot() {
        out.push_str(&format!(
            ",\"tune\":{{\"id\":{id},\"status\":\"{}\",\"iterations\":{iterations}}}",
            status.label()
        ));
    }
    out.push('}');
    Response::json(200, out)
}

fn model_endpoint(ctx: &Ctx) -> Response {
    let info = ctx.info();
    let (rows, rfds, indexed, attrs, shards) = match &ctx.topology {
        Topology::Single { .. } => {
            let engine = ctx.lock_engine();
            (
                engine.donor_rows(),
                engine.sigma().len(),
                engine.index().is_some(),
                engine.schema().clone(),
                None,
            )
        }
        Topology::Sharded(reg) => {
            let snap = reg.snapshot();
            (
                snap.rows(),
                snap.sigma.len(),
                false,
                snap.schema().clone(),
                Some(reg.n_shards()),
            )
        }
    };
    let mut out = String::from("{");
    out.push_str("\"source\":");
    write_str(&mut out, &info.source);
    out.push_str(&format!(
        ",\"schema_fingerprint\":\"{:#018x}\"",
        info.schema_fingerprint
    ));
    out.push_str(&format!(",\"format_version\":{}", crate::artifact::FORMAT_VERSION));
    out.push_str(&format!(",\"artifact_bytes\":{}", info.artifact_bytes));
    out.push_str(&format!(",\"rows\":{rows}"));
    out.push_str(&format!(",\"rfds\":{rfds}"));
    out.push_str(&format!(",\"indexed\":{indexed}"));
    if let Some(n) = shards {
        out.push_str(&format!(",\"shards\":{n}"));
    }
    out.push_str(&format!(",\"state\":\"{}\"", ctx.state().label()));
    out.push_str(&format!(",\"seq\":{}", ctx.seq()));
    out.push_str(",\"attrs\":[");
    for (i, attr) in attrs.attrs().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        write_str(&mut out, &attr.name);
        out.push_str(",\"type\":");
        write_str(&mut out, type_label(attr.ty));
        out.push('}');
    }
    out.push_str("]}");
    Response::json(200, out)
}

fn type_label(ty: AttrType) -> &'static str {
    match ty {
        AttrType::Text => "text",
        AttrType::Int => "int",
        AttrType::Float => "float",
        AttrType::Bool => "bool",
    }
}

fn bad_request(msg: impl std::fmt::Display) -> Response {
    let mut out = String::from("{\"error\":");
    write_str(&mut out, &msg.to_string());
    out.push('}');
    Response::json(400, out)
}

/// Per-request knobs parsed from the query string.
struct RequestOpts {
    timeout_ms: Option<u64>,
    explain: bool,
    explain_sample: ExplainSample,
    /// `?trace=1`: run traced regardless of budget and return the span
    /// breakdown in a `trace` envelope on the response.
    trace: bool,
}

fn parse_opts(ctx: &Ctx, req: &Request) -> Result<RequestOpts, Response> {
    let timeout_ms = match req.query_param("timeout_ms") {
        None => ctx.default_timeout_ms,
        Some(raw) => Some(
            raw.parse::<u64>()
                .map_err(|_| bad_request(format!("timeout_ms={raw:?} is not an integer")))?,
        ),
    }
    .map(|ms| ms.min(ctx.max_timeout_ms));
    let explain = req.query_param("explain").is_some_and(|v| v != "0");
    let explain_sample = match req.query_param("explain_sample") {
        None | Some("all") => ExplainSample::All,
        Some("dry") => ExplainSample::DryOnly,
        Some(raw) => ExplainSample::EveryKth(raw.parse::<usize>().map_err(|_| {
            bad_request(format!(
                "explain_sample={raw:?} is not \"all\", \"dry\", or an integer"
            ))
        })?),
    };
    let trace = req.query_param("trace").is_some_and(|v| v != "0");
    Ok(RequestOpts { timeout_ms, explain, explain_sample, trace })
}

/// Decodes the request body into tuples, by content type.
fn parse_tuples(schema: &Schema, req: &Request) -> Result<Vec<Tuple>, Response> {
    let content_type = req.header("content-type").unwrap_or("application/json");
    if content_type.starts_with("text/csv") {
        let text = std::str::from_utf8(&req.body)
            .map_err(|_| bad_request("CSV body is not UTF-8"))?;
        let rel = csv::read_str(text).map_err(bad_request)?;
        let names: Vec<&str> = rel.schema().attrs().map(|a| a.name.as_str()).collect();
        let expected: Vec<&str> = schema.attrs().map(|a| a.name.as_str()).collect();
        if names != expected {
            return Err(bad_request(format!(
                "CSV header {names:?} does not match the model schema {expected:?}"
            )));
        }
        // The body's header may omit type annotations (every column reads
        // as text then); coerce values to the model's attribute types.
        Ok(rel
            .tuples()
            .map(|t| {
                t.iter()
                    .enumerate()
                    .map(|(col, v)| coerce(v, schema.ty(col)))
                    .collect()
            })
            .collect())
    } else if content_type.starts_with("application/json") {
        let text = std::str::from_utf8(&req.body)
            .map_err(|_| bad_request("JSON body is not UTF-8"))?;
        let doc = json::parse(text).map_err(bad_request)?;
        let tuples = doc
            .get("tuples")
            .and_then(|t| t.as_array())
            .ok_or_else(|| bad_request("body must be {\"tuples\": [[...], ...]}"))?;
        let arity = schema.arity();
        let mut out = Vec::with_capacity(tuples.len());
        for (i, row) in tuples.iter().enumerate() {
            let cells = row
                .as_array()
                .ok_or_else(|| bad_request(format!("tuple {i} is not an array")))?;
            if cells.len() != arity {
                return Err(bad_request(format!(
                    "tuple {i} has {} values, schema has {arity}",
                    cells.len()
                )));
            }
            let mut tuple = Tuple::with_capacity(arity);
            for (attr, cell) in cells.iter().enumerate() {
                tuple.push(json_to_value(schema, i, attr, cell)?);
            }
            out.push(tuple);
        }
        Ok(out)
    } else {
        Err(bad_request(format!(
            "unsupported Content-Type {content_type:?} (use application/json or text/csv)"
        )))
    }
}

/// Converts a CSV-sourced value to the model's attribute type. Same
/// leniency as dataset loading: unparseable values become `Null`.
fn coerce(v: &Value, ty: AttrType) -> Value {
    match (v, ty) {
        (Value::Null, _) => Value::Null,
        (Value::Text(_), AttrType::Text)
        | (Value::Int(_), AttrType::Int)
        | (Value::Float(_), AttrType::Float)
        | (Value::Bool(_), AttrType::Bool) => v.clone(),
        (Value::Int(n), AttrType::Float) => Value::Float(*n as f64),
        _ => Value::parse(&v.render(), ty),
    }
}

fn json_to_value(
    schema: &Schema,
    row: usize,
    attr: usize,
    cell: &json::Value,
) -> Result<Value, Response> {
    let ty = schema.ty(attr);
    let name = schema.name(attr);
    let mismatch = |got: &str| {
        bad_request(format!(
            "tuple {row}, attribute {name:?}: expected {} or null, got {got}",
            type_label(ty)
        ))
    };
    Ok(match (cell, ty) {
        (json::Value::Null, _) => Value::Null,
        (json::Value::Num(n), AttrType::Int) => {
            if n.fract() == 0.0 && *n >= i64::MIN as f64 && *n <= i64::MAX as f64 {
                Value::Int(*n as i64)
            } else {
                return Err(mismatch("a non-integer number"));
            }
        }
        (json::Value::Num(n), AttrType::Float) => Value::Float(*n),
        (json::Value::Str(s), AttrType::Text) => Value::Text(s.clone()),
        (json::Value::Bool(b), AttrType::Bool) => Value::Bool(*b),
        (json::Value::Num(_), _) => return Err(mismatch("a number")),
        (json::Value::Str(_), _) => return Err(mismatch("a string")),
        (json::Value::Bool(_), _) => return Err(mismatch("a boolean")),
        (json::Value::Arr(_), _) => return Err(mismatch("an array")),
        (json::Value::Obj(_), _) => return Err(mismatch("an object")),
    })
}

/// Layers per-request knobs over the serving base config.
fn request_config(base: &renuver_core::RenuverConfig, opts: &RequestOpts) -> renuver_core::RenuverConfig {
    let mut config = base.clone();
    config.explain = opts.explain;
    config.explain_sample = opts.explain_sample;
    config.budget = match opts.timeout_ms {
        Some(ms) => Budget::unlimited().with_deadline(Duration::from_millis(ms)),
        None => Budget::unlimited(),
    };
    // One gate for both tracing consumers: a limited request needs
    // phase attribution so a degraded response can say where its budget
    // went, and `?trace=1` asks for the same attribution explicitly
    // (previously unlimited requests could never get it).
    config.tracer = if opts.trace || config.budget.is_limited() {
        Tracer::enabled()
    } else {
        Tracer::disabled()
    };
    config
}

/// Reads a `u64` field off a trace record.
fn field_u64(rec: &TraceRecord, name: &str) -> Option<u64> {
    rec.fields.iter().find_map(|(k, v)| match v {
        FieldValue::U64(n) if *k == name => Some(*n),
        _ => None,
    })
}

/// Reads a string field off a trace record.
fn field_str<'a>(rec: &'a TraceRecord, name: &str) -> Option<&'a str> {
    rec.fields.iter().find_map(|(k, v)| match (v, *k == name) {
        (FieldValue::Str(s), true) => Some(*s),
        (FieldValue::Text(s), true) => Some(s.as_str()),
        _ => None,
    })
}

/// Folds a finished request's trace into the telemetry scratch: budget
/// phase self-times and per-shard scan legs.
fn collect_telemetry(result: &BatchResult, tracer: &Tracer, tel: &mut Telemetry) {
    tel.cells_missing = Some(result.stats.missing_total as u64);
    tel.cells_imputed = Some(result.stats.imputed as u64);
    tel.phases = result.budget.phases.clone();
    if tracer.is_enabled() {
        for rec in tracer.records() {
            if rec.kind == "shard_leg" {
                if let (Some(shard), Some(scan_us)) =
                    (field_u64(&rec, "shard"), field_u64(&rec, "scan_us"))
                {
                    tel.shards.push((shard, scan_us));
                }
            }
        }
    }
}

/// Appends the `?trace=1` envelope to a response body (a JSON object):
/// the closed spans and shard legs from the request's tracer, capped at
/// `max_events`. The envelope is client-opt-in and independent of the
/// flight recorder's state, so the recorder on/off differential strips
/// nothing but the `X-Request-Id` header.
fn attach_trace(body: &mut String, tracer: &Tracer, max_events: usize, tel: &mut Telemetry) {
    debug_assert!(body.ends_with('}'));
    let records = tracer.records();
    let mut spans = String::new();
    let mut shards = String::new();
    let mut taken = 0usize;
    let mut span_count = 0usize;
    let mut shard_count = 0usize;
    for rec in &records {
        if taken == max_events {
            break;
        }
        match rec.kind {
            "span" => {
                if span_count > 0 {
                    spans.push(',');
                }
                spans.push_str(&format!("{{\"span\":{},\"label\":", rec.span));
                write_str(&mut spans, field_str(rec, "label").unwrap_or("?"));
                spans.push_str(&format!(
                    ",\"parent\":{},\"dur_us\":{}}}",
                    field_u64(rec, "parent").unwrap_or(0),
                    field_u64(rec, "dur_us").unwrap_or(0)
                ));
                span_count += 1;
                taken += 1;
            }
            "shard_leg" => {
                if shard_count > 0 {
                    shards.push(',');
                }
                shards.push_str(&format!(
                    "{{\"shard\":{},\"scan_us\":{}}}",
                    field_u64(rec, "shard").unwrap_or(0),
                    field_u64(rec, "scan_us").unwrap_or(0)
                ));
                shard_count += 1;
                taken += 1;
            }
            _ => {}
        }
    }
    body.pop();
    body.push_str(&format!(
        ",\"trace\":{{\"events\":{taken},\"truncated\":{},\"spans\":[{spans}],\"shards\":[{shards}]}}}}",
        taken == max_events && records.len() > max_events
    ));
    tel.trace_events = Some(taken as u64);
}

fn impute_endpoint(ctx: &Ctx, req: &Request, tel: &mut Telemetry) -> Response {
    let opts = match parse_opts(ctx, req) {
        Ok(o) => o,
        Err(resp) => return resp,
    };

    let (result, tracer) = match &ctx.topology {
        Topology::Single { .. } => {
            let mut engine = ctx.lock_engine();
            let tuples = match parse_tuples(engine.schema(), req) {
                Ok(t) => t,
                Err(resp) => return resp,
            };
            let config = request_config(engine.config(), &opts);
            match engine.impute_batch_with(tuples, &config) {
                Ok(result) => (result, config.tracer),
                Err(e) => return bad_request(e),
            }
        }
        Topology::Sharded(reg) => {
            // One Arc clone; the request runs against an immutable view,
            // concurrent with ingests and model swaps.
            let snap = reg.snapshot();
            let tuples = match parse_tuples(snap.schema(), req) {
                Ok(t) => t,
                Err(resp) => return resp,
            };
            let config = request_config(&snap.config, &opts);
            match snap.impute(tuples, &config) {
                Ok(result) => (result, config.tracer),
                Err(e) => return bad_request(e),
            }
        }
    };

    ctx.metrics.counter("serve.batches").inc();
    ctx.metrics.counter("serve.cells_missing").add(result.stats.missing_total as u64);
    ctx.metrics.counter("serve.cells_imputed").add(result.stats.imputed as u64);
    if result.budget.tripped.is_some() {
        ctx.metrics.counter("serve.budget_tripped").inc();
    }
    collect_telemetry(&result, &tracer, tel);
    let mut body = render_batch(&result, opts.explain);
    if opts.trace {
        attach_trace(&mut body, &tracer, ctx.flight.trace_max_events(), tel);
    }
    Response::json(200, body)
}

fn unavailable(msg: &str) -> Response {
    let mut body = String::from("{\"error\":");
    write_str(&mut body, msg);
    body.push('}');
    let mut resp = Response::json(503, body);
    resp.extra_headers.push(("Retry-After", "1".into()));
    resp
}

/// `POST /v1/ingest`: repair the batch, make it durable, commit it.
///
/// The sequence under the engine lock is the durability contract:
///
/// 1. impute the batch (transient — rolls back on any error),
/// 2. append the *repaired* tuples to the WAL and fsync,
/// 3. fold them into the relation/oracle/index via `commit_tuples`.
///
/// The client sees `200` only after step 2 succeeded, so every
/// acknowledged batch is recoverable; a crash before the fsync loses
/// only batches nobody was told about. A WAL failure after the fsync
/// path starts degrades the server (writes refused until restart)
/// rather than risking the log and the engine drifting apart.
fn ingest_endpoint(ctx: &Ctx, req: &Request, tel: &mut Telemetry) -> Response {
    match ctx.state() {
        ServeState::Ok => {}
        ServeState::Recovering => return unavailable("wal replay in progress, ingest not ready"),
        // Sharded compaction runs off-request; an ingest just queues on
        // the commit lock behind it instead of bouncing.
        ServeState::Compacting if ctx.registry().is_some() => {}
        ServeState::Compacting => return unavailable("compaction in progress, retry shortly"),
        ServeState::Degraded => {
            return unavailable("write path degraded by an earlier wal failure; restart to recover")
        }
    }
    let opts = match parse_opts(ctx, req) {
        Ok(o) => o,
        Err(resp) => return resp,
    };
    if let Topology::Sharded(reg) = &ctx.topology {
        return ingest_sharded(ctx, reg, req, &opts, tel);
    }

    let mut engine = ctx.lock_engine();
    let tuples = match parse_tuples(engine.schema(), req) {
        Ok(t) => t,
        Err(resp) => return resp,
    };
    let config = request_config(engine.config(), &opts);
    let result = match engine.impute_batch_with(tuples, &config) {
        Ok(result) => result,
        Err(e) => return bad_request(e),
    };

    // Engine lock held; take the durable lock second (the fixed order).
    let mut durable_guard = ctx.lock_durable();
    let Some(durable) = durable_guard.as_mut() else {
        return unavailable("model is not durable (serve it from an artifact with --wal)");
    };
    let seq = match durable.append(&result.tuples) {
        Ok(seq) => seq,
        Err(e) => {
            ctx.set_state(ServeState::Degraded);
            ctx.metrics.counter("serve.wal_degraded").inc();
            ctx.server_event("wal_degraded", vec![(
                "detail",
                FieldValue::Text(format!("wal append failed: {e}")),
            )]);
            let mut body = String::from("{\"error\":");
            write_str(&mut body, &format!("wal append failed: {e}"));
            body.push('}');
            return Response::json(500, body);
        }
    };
    let stats = match engine.commit_tuples(result.tuples.clone()) {
        Ok(stats) => stats,
        Err(e) => {
            // The WAL holds a record the engine refused — the two views
            // have diverged and only a restart (replay) re-syncs them.
            ctx.set_state(ServeState::Degraded);
            ctx.metrics.counter("serve.wal_degraded").inc();
            ctx.server_event("wal_degraded", vec![(
                "detail",
                FieldValue::Text(format!("commit failed after wal append: {e}")),
            )]);
            let mut body = String::from("{\"error\":");
            write_str(&mut body, &format!("commit failed after wal append: {e}"));
            body.push('}');
            return Response::json(500, body);
        }
    };
    ctx.seq.store(seq, Ordering::Release);

    // Threshold-triggered compaction, while both locks are still held
    // so the snapshot and the sequence number cannot drift.
    let mut compacted = false;
    if durable.should_compact() {
        ctx.set_state(ServeState::Compacting);
        match durable.compact(&engine) {
            Ok(compact_seq) => {
                compacted = true;
                ctx.metrics.counter("serve.compactions").inc();
                ctx.server_event("compaction", vec![("seq", FieldValue::U64(compact_seq))]);
            }
            Err(e) => {
                // Both pre- and post-rename failures leave a consistent
                // {snapshot, wal} pair on disk; stay serving.
                eprintln!("renuver: compaction failed (will retry at next threshold): {e}");
                ctx.metrics.counter("serve.compact_failed").inc();
            }
        }
        ctx.set_state(ServeState::Ok);
    }
    drop(durable_guard);
    drop(engine);

    ctx.metrics.counter("serve.ingest_batches").inc();
    ctx.metrics.counter("serve.ingest_rows").add(stats.rows as u64);
    ctx.metrics.counter("serve.cells_missing").add(result.stats.missing_total as u64);
    ctx.metrics.counter("serve.cells_imputed").add(result.stats.imputed as u64);
    collect_telemetry(&result, &config.tracer, tel);

    let batch_json = render_batch(&result, opts.explain);
    let mut body = format!(
        "{{\"seq\":{seq},\"committed_rows\":{},\"donor_rows\":{},\"dict_grown\":{},\"compacted\":{compacted},{}",
        stats.rows,
        stats.donors,
        stats.dict_grown,
        &batch_json[1..],
    );
    if opts.trace {
        attach_trace(&mut body, &config.tracer, ctx.flight.trace_max_events(), tel);
    }
    Response::json(200, body)
}

/// The sharded ingest path: the registry serializes commits internally,
/// appends the repaired batch to every shard WAL, and publishes a new
/// snapshot. Compaction, when due, is handed to a background worker —
/// the response never waits on a snapshot rewrite.
fn ingest_sharded(
    ctx: &Ctx,
    reg: &Registry,
    req: &Request,
    opts: &RequestOpts,
    tel: &mut Telemetry,
) -> Response {
    let snap = reg.snapshot();
    let tuples = match parse_tuples(snap.schema(), req) {
        Ok(t) => t,
        Err(resp) => return resp,
    };
    let config = request_config(&snap.config, opts);
    drop(snap);
    let outcome = match reg.ingest(tuples, &config) {
        Ok(o) => o,
        Err(RegistryError::Degraded(shards)) => {
            return unavailable(&format!(
                "shards {shards:?} degraded by an earlier wal failure; swap a model or restart"
            ))
        }
        Err(RegistryError::Data(e)) => return bad_request(e),
        Err(e) => {
            ctx.metrics.counter("serve.wal_degraded").inc();
            ctx.server_event("wal_degraded", vec![(
                "detail",
                FieldValue::Text(format!("wal append failed: {e}")),
            )]);
            for k in reg.degraded_shards() {
                ctx.server_event("shard_degraded", vec![("shard", FieldValue::U64(k as u64))]);
            }
            let mut body = String::from("{\"error\":");
            write_str(&mut body, &format!("wal append failed: {e}"));
            body.push('}');
            return Response::json(500, body);
        }
    };
    // The registry's commit lock is already released here, so two
    // concurrent ingests can reach this line out of order; a plain store
    // could publish seq 2 then 1 to /healthz. fetch_max never regresses.
    ctx.seq.fetch_max(outcome.seq, Ordering::AcqRel);

    ctx.metrics.counter("serve.ingest_batches").inc();
    ctx.metrics.counter("serve.ingest_rows").add(outcome.committed_rows as u64);
    ctx.metrics.counter("serve.cells_missing").add(outcome.batch.stats.missing_total as u64);
    ctx.metrics.counter("serve.cells_imputed").add(outcome.batch.stats.imputed as u64);
    for (labels, rows) in ctx.shard_labels.iter().zip(reg.shard_rows()) {
        ctx.metrics.gauge(labels.rows).set(rows as u64);
    }
    if ctx.shard_labels.len() == reg.n_shards() {
        let snap = reg.snapshot();
        for t in &outcome.batch.tuples {
            let k = renuver_core::shard_of(t, &snap.attrs, reg.n_shards());
            ctx.metrics.counter(ctx.shard_labels[k].ingest_rows).inc();
        }
    }

    if outcome.wants_compact {
        let metrics = ctx.metrics.clone();
        let flight = ctx.flight.clone();
        reg.spawn_compact(move |result| match result {
            Ok(seq) => {
                metrics.counter("serve.compactions").inc();
                // `Ctx::server_event` needs `&Ctx`; the worker only has
                // clones, so the counter and line are emitted directly.
                metrics.counter("serve.events.compaction").inc();
                flight.server_event("compaction", vec![("seq", FieldValue::U64(seq))]);
            }
            Err(e) => {
                eprintln!("renuver: background compaction failed (will retry): {e}");
                metrics.counter("serve.compact_failed").inc();
            }
        });
    }

    collect_telemetry(&outcome.batch, &config.tracer, tel);
    let batch_json = render_batch(&outcome.batch, opts.explain);
    let mut body = format!(
        "{{\"seq\":{},\"committed_rows\":{},\"donor_rows\":{},\"dict_grown\":false,\"compacted\":false,{}",
        outcome.seq,
        outcome.committed_rows,
        outcome.donor_rows,
        &batch_json[1..],
    );
    if opts.trace {
        attach_trace(&mut body, &config.tracer, ctx.flight.trace_max_events(), tel);
    }
    Response::json(200, body)
}

/// `POST /v1/compact`: fold the WAL into a fresh snapshot now.
fn compact_endpoint(ctx: &Ctx) -> Response {
    match ctx.state() {
        ServeState::Ok => {}
        ServeState::Recovering => return unavailable("wal replay in progress"),
        ServeState::Compacting => return unavailable("compaction already in progress"),
        ServeState::Degraded if ctx.registry().is_some() => {}
        ServeState::Degraded => return unavailable("write path degraded; restart to recover"),
    }
    if let Topology::Sharded(reg) = &ctx.topology {
        return match reg.compact() {
            Ok(seq) => {
                ctx.metrics.counter("serve.compactions").inc();
                ctx.server_event("compaction", vec![("seq", FieldValue::U64(seq))]);
                Response::json(
                    200,
                    format!("{{\"seq\":{seq},\"shards\":{}}}", reg.n_shards()),
                )
            }
            Err(e) => {
                ctx.metrics.counter("serve.compact_failed").inc();
                let mut body = String::from("{\"error\":");
                write_str(&mut body, &format!("compaction failed: {e}"));
                body.push('}');
                Response::json(500, body)
            }
        };
    }
    let engine = ctx.lock_engine();
    let mut durable_guard = ctx.lock_durable();
    let Some(durable) = durable_guard.as_mut() else {
        return unavailable("model is not durable (serve it from an artifact with --wal)");
    };
    ctx.set_state(ServeState::Compacting);
    let result = durable.compact(&engine);
    ctx.set_state(ServeState::Ok);
    match result {
        Ok(seq) => {
            ctx.metrics.counter("serve.compactions").inc();
            ctx.server_event("compaction", vec![("seq", FieldValue::U64(seq))]);
            Response::json(
                200,
                format!("{{\"seq\":{seq},\"wal_records\":{},\"wal_bytes\":{}}}",
                    durable.wal_records(),
                    durable.wal_bytes()),
            )
        }
        Err(e) => {
            ctx.metrics.counter("serve.compact_failed").inc();
            let mut body = String::from("{\"error\":");
            write_str(&mut body, &format!("compaction failed: {e}"));
            body.push('}');
            Response::json(500, body)
        }
    }
}

/// Knobs a `POST /v1/tune` body may set; everything is optional (an
/// empty body tunes with the defaults and a fingerprint-derived seed).
struct TuneParams {
    seed: Option<u64>,
    rate: Option<f64>,
    max_iters: Option<u64>,
    target_f1: Option<f64>,
    step: Option<f64>,
    /// Install the winning thresholds via the hot-swap path when the
    /// run finishes cleanly.
    install: bool,
}

fn parse_tune_params(body: &[u8]) -> Result<TuneParams, Response> {
    let mut p = TuneParams {
        seed: None,
        rate: None,
        max_iters: None,
        target_f1: None,
        step: None,
        install: false,
    };
    if body.is_empty() {
        return Ok(p);
    }
    let text =
        std::str::from_utf8(body).map_err(|_| bad_request("request body is not UTF-8"))?;
    let parsed = json::parse(text).map_err(|e| bad_request(format!("invalid JSON: {e}")))?;
    let obj = parsed.as_object().ok_or_else(|| bad_request("body must be a JSON object"))?;
    for (key, val) in obj {
        match key.as_str() {
            "seed" => {
                p.seed =
                    Some(val.as_u64().ok_or_else(|| {
                        bad_request("\"seed\" must be an unsigned integer")
                    })?)
            }
            "rate" => {
                let r = val
                    .as_f64()
                    .filter(|r| *r > 0.0 && *r <= 1.0)
                    .ok_or_else(|| bad_request("\"rate\" must be a number in (0, 1]"))?;
                p.rate = Some(r);
            }
            "max_iters" => {
                let n = val
                    .as_u64()
                    .filter(|n| *n >= 1)
                    .ok_or_else(|| bad_request("\"max_iters\" must be a positive integer"))?;
                p.max_iters = Some(n);
            }
            "target_f1" => {
                let t = val
                    .as_f64()
                    .filter(|t| *t > 0.0 && *t <= 1.0)
                    .ok_or_else(|| bad_request("\"target_f1\" must be a number in (0, 1]"))?;
                p.target_f1 = Some(t);
            }
            "step" => {
                let s = val
                    .as_f64()
                    .filter(|s| *s > 0.0)
                    .ok_or_else(|| bad_request("\"step\" must be a positive number"))?;
                p.step = Some(s);
            }
            "install" => {
                p.install = val
                    .as_bool()
                    .ok_or_else(|| bad_request("\"install\" must be a boolean"))?;
            }
            other => return Err(bad_request(format!("unknown tune field {other:?}"))),
        }
    }
    Ok(p)
}

/// `POST /v1/tune`: submits the server's one asynchronous job. Answers
/// `202` with the job id immediately; progress and the final report are
/// polled via `GET /v1/tune/<id>`. Single-flight: a second submit while
/// a job runs answers `409`.
fn tune_submit_endpoint(ctx: &Ctx, req: &Request) -> Response {
    if ctx.registry().is_some() {
        return unavailable("tune runs on the single-engine topology only");
    }
    let params = match parse_tune_params(&req.body) {
        Ok(p) => p,
        Err(resp) => return resp,
    };
    // The worker thread outlives this request, so it needs an owning
    // handle; `Server::bind` parked one behind the weak self-reference.
    let Some(owner) = ctx.self_arc() else {
        return unavailable("tune jobs need a server-bound context");
    };
    let budget = Budget::unlimited();
    let worker_budget = budget.clone();
    let submitted = ctx.jobs.submit(budget, move |id, state| {
        std::thread::Builder::new()
            .name(format!("tune-{id}"))
            .spawn(move || run_tune_job(owner, id, state, worker_budget, params))
            .expect("spawn tune worker")
    });
    match submitted {
        Ok(id) => {
            ctx.server_event("tune_started", vec![("job", FieldValue::U64(id))]);
            Response::json(202, format!("{{\"id\":{id},\"status\":\"running\"}}"))
        }
        Err(running) => Response::json(
            409,
            format!("{{\"error\":\"tune job {running} is already running\",\"id\":{running}}}"),
        ),
    }
}

/// `GET`/`DELETE /v1/tune/<id>`: poll or cancel the latest job. Only
/// the latest job is retained — earlier ids answer `404`.
fn tune_job_endpoint(ctx: &Ctx, method: &str, path: &str) -> Response {
    let Some(id) = path.strip_prefix("/v1/tune/").and_then(|s| s.parse::<u64>().ok()) else {
        return Response::text(404, "not found\n");
    };
    match method {
        "GET" => match ctx.jobs.get(id) {
            // The worker stores the result before flipping the status,
            // so a present result is always the terminal body.
            Some(state) => match state.result() {
                Some(body) => Response::json(200, body),
                None => Response::json(
                    200,
                    format!(
                        "{{\"id\":{id},\"status\":\"running\",\"iterations\":{}}}",
                        state.iterations()
                    ),
                ),
            },
            None => Response::text(404, "not found\n"),
        },
        "DELETE" => match ctx.jobs.cancel(id) {
            Some(JobStatus::Running) => {
                Response::json(202, format!("{{\"id\":{id},\"status\":\"cancelling\"}}"))
            }
            Some(status) => {
                Response::json(200, format!("{{\"id\":{id},\"status\":\"{}\"}}", status.label()))
            }
            None => Response::text(404, "not found\n"),
        },
        _ => Response::text(405, "method not allowed\n"),
    }
}

/// The tune-job worker. Snapshots the engine's relation, RFD set, and
/// config under a brief lock, then tunes entirely off-lock — requests
/// keep serving. On a clean finish with `install`, the winning
/// thresholds go through the same `apply_model_swap` path as
/// `PUT /v1/model`, so the served model is bit-identical to one
/// prepared from the tuned set directly.
fn run_tune_job(
    ctx: Arc<Ctx>,
    id: u64,
    state: Arc<JobState>,
    budget: Budget,
    params: TuneParams,
) {
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let (rel, sigma, config) = {
            let engine = ctx.lock_engine();
            (engine.relation().clone(), engine.sigma().clone(), engine.config().clone())
        };
        let fingerprint = ctx.info().schema_fingerprint;
        let defaults = renuver_tune::TuneConfig::default();
        let progress = Arc::clone(&state);
        let cfg = renuver_tune::TuneConfig {
            seed: params.seed.unwrap_or_else(|| renuver_tune::default_seed(fingerprint)),
            sample_rate: params.rate.unwrap_or(defaults.sample_rate),
            max_iters: params.max_iters.map(|n| n as usize).unwrap_or(defaults.max_iters),
            target_f1: params.target_f1.unwrap_or(defaults.target_f1),
            step: params.step.unwrap_or(defaults.step),
            budget,
            progress: Some(Arc::new(move |n| progress.set_iterations(n))),
            ..defaults
        };
        let report = renuver_tune::tune(&rel, &sigma, &cfg);
        let mut tail = format!(",\"report\":{}", report.to_json(rel.schema()));
        if params.install && !report.partial {
            let source = format!("tune job {id}");
            let engine = Engine::prepare(rel, report.tuned.clone(), config);
            let bytes = crate::artifact::encode_engine(&engine, &source, ctx.seq());
            match apply_model_swap(&ctx, &bytes, &source) {
                Ok(seq) => tail.push_str(&format!(",\"installed\":true,\"seq\":{seq}")),
                Err(resp) => {
                    tail.push_str(",\"installed\":false,\"install_error\":");
                    let why = String::from_utf8_lossy(&resp.body).trim().to_string();
                    write_str(&mut tail, &why);
                }
            }
        }
        (report, tail)
    }));
    match outcome {
        Ok((report, tail)) => {
            let status =
                if report.partial { JobStatus::Cancelled } else { JobStatus::Done };
            let iterations = report.iterations.len();
            state.set_iterations(iterations as u64);
            state.finish(
                status,
                format!(
                    "{{\"id\":{id},\"status\":\"{}\",\"iterations\":{iterations}{tail}}}",
                    status.label()
                ),
            );
            let event = if report.partial { "tune_cancelled" } else { "tune_finished" };
            ctx.server_event(
                event,
                vec![
                    ("job", FieldValue::U64(id)),
                    (
                        "detail",
                        FieldValue::Text(format!(
                            "stop {} best_f1 {:.3}",
                            report.stop.label(),
                            report.best_f1
                        )),
                    ),
                ],
            );
        }
        Err(_) => {
            state.finish(
                JobStatus::Failed,
                format!("{{\"id\":{id},\"status\":\"failed\",\"error\":\"tune worker panicked\"}}"),
            );
            ctx.server_event(
                "tune_cancelled",
                vec![
                    ("job", FieldValue::U64(id)),
                    ("detail", FieldValue::Str("worker panicked")),
                ],
            );
        }
    }
}

/// `PUT /v1/model`: hot model swap. The body is a complete `.rnv`
/// artifact; its schema fingerprint must match the loaded model's.
fn swap_endpoint(ctx: &Ctx, req: &Request) -> Response {
    match apply_model_swap(ctx, &req.body, "PUT /v1/model") {
        Ok(seq) => Response::json(200, format!("{{\"swapped\":true,\"seq\":{seq}}}")),
        Err(resp) => resp,
    }
}

/// Installs artifact `bytes` as the serving model — shared by
/// `PUT /v1/model` and the `SIGHUP` reload. The new model must carry the
/// same schema fingerprint; requests in flight finish against the old
/// model, new requests see the new one.
pub fn apply_model_swap(ctx: &Ctx, bytes: &[u8], via: &str) -> Result<u64, Response> {
    let art = match crate::artifact::decode(bytes) {
        Ok(a) => a,
        Err(e) => return Err(bad_request(format!("model swap rejected: {e}"))),
    };
    let expected = ctx.info().schema_fingerprint;
    if art.schema_fingerprint != expected {
        ctx.metrics.counter("serve.swap_rejected").inc();
        let mut body = String::from("{\"error\":");
        write_str(
            &mut body,
            &format!(
                "schema fingerprint mismatch: serving {expected:#018x}, swap carries {:#018x}",
                art.schema_fingerprint
            ),
        );
        body.push('}');
        return Err(Response::json(409, body));
    }
    let source = art.source.clone();
    // A successful sharded swap rebuilds every shard's layout, which
    // heals shards an earlier WAL failure degraded; capture the before
    // set so the heals can be logged.
    let was_degraded: Vec<usize> =
        ctx.registry().map(|reg| reg.degraded_shards()).unwrap_or_default();
    let seq = match &ctx.topology {
        Topology::Sharded(reg) => match reg.swap(art) {
            Ok(seq) => seq,
            Err(e) => {
                let mut body = String::from("{\"error\":");
                write_str(&mut body, &format!("model swap failed: {e}"));
                body.push('}');
                return Err(Response::json(500, body));
            }
        },
        Topology::Single { .. } => {
            let mut engine = ctx.lock_engine();
            let mut durable_guard = ctx.lock_durable();
            let seq = ctx.seq();
            let config = engine.config().clone();
            let new_engine = art.into_engine(config);
            if let Some(durable) = durable_guard.as_mut() {
                // Re-encode at the live seq: the snapshot on disk and the
                // reset WAL must agree on the committed horizon, whatever
                // seq the uploaded artifact carried.
                let snapshot =
                    crate::artifact::encode_engine(&new_engine, &source, seq);
                if let Err(e) = durable.replace_snapshot(&snapshot, seq) {
                    let mut body = String::from("{\"error\":");
                    write_str(&mut body, &format!("model swap failed: {e}"));
                    body.push('}');
                    return Err(Response::json(500, body));
                }
            }
            *engine = new_engine;
            seq
        }
    };
    // Sharded swaps publish outside the registry's commit lock, so a
    // concurrent ingest may already have advanced past `seq`.
    ctx.seq.fetch_max(seq, Ordering::AcqRel);
    {
        let mut info = ctx.info.write().unwrap_or_else(|e| e.into_inner());
        info.source = source;
        info.artifact_bytes = bytes.len();
    }
    ctx.metrics.counter("serve.swaps").inc();
    let mut fields: Vec<Field> = vec![("seq", FieldValue::U64(seq))];
    if let Some(reg) = ctx.registry() {
        fields.push(("generation", FieldValue::U64(reg.generation())));
    }
    fields.push(("detail", FieldValue::Text(via.to_string())));
    ctx.server_event("swap", fields);
    for k in was_degraded {
        ctx.server_event("shard_healed", vec![("shard", FieldValue::U64(k as u64))]);
    }
    eprintln!("renuver: model swapped via {via} (seq {seq})");
    Ok(seq)
}

/// Reloads the model from the registered path — the `SIGHUP` handler's
/// slow half, run on the accept loop.
pub fn reload_from_path(ctx: &Ctx) {
    let Some(path) = ctx.model_path() else {
        eprintln!("renuver: SIGHUP ignored — model was not served from a file");
        return;
    };
    match std::fs::read(&path) {
        Ok(bytes) => {
            if let Err(resp) = apply_model_swap(ctx, &bytes, "SIGHUP") {
                eprintln!(
                    "renuver: SIGHUP reload of {} rejected: {}",
                    path.display(),
                    String::from_utf8_lossy(&resp.body)
                );
            }
        }
        Err(e) => eprintln!("renuver: SIGHUP reload failed to read {}: {e}", path.display()),
    }
}

/// Serializes a [`BatchResult`] as the `/v1/impute` response document.
pub fn render_batch(result: &BatchResult, explain: bool) -> String {
    let mut out = String::from("{\"tuples\":[");
    for (i, tuple) in result.tuples.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        for (j, v) in tuple.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            match v {
                Value::Null => out.push_str("null"),
                Value::Int(n) => out.push_str(&n.to_string()),
                Value::Float(f) => write_f64(&mut out, *f),
                Value::Text(s) => write_str(&mut out, s),
                Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            }
        }
        out.push(']');
    }
    out.push_str("],\"outcomes\":[");
    for (i, (cell, outcome)) in result.outcomes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"row\":{},\"attr\":{},\"outcome\":\"{}\"}}",
            cell.row,
            cell.col,
            outcome.label()
        ));
    }
    out.push_str(&format!(
        "],\"stats\":{{\"missing\":{},\"imputed\":{},\"unimputed\":{},\"skipped_budget\":{},\"cancelled\":{}}}",
        result.stats.missing_total,
        result.stats.imputed,
        result.stats.unimputed,
        result.stats.skipped_budget,
        result.stats.cancelled
    ));
    out.push_str(&format!(",\"degraded\":{}", result.budget.tripped.is_some()));
    if result.budget.tripped.is_some() || !result.budget.phases.is_empty() {
        out.push_str(",\"budget\":{");
        match result.budget.tripped {
            Some(trip) => {
                out.push_str("\"tripped\":");
                write_str(&mut out, trip.label());
            }
            None => out.push_str("\"tripped\":null"),
        }
        if let Some(phase) = result.budget.tripped_at {
            out.push_str(",\"tripped_at\":");
            write_str(&mut out, phase);
        }
        out.push_str(",\"phases\":[");
        for (i, (label, us)) in result.budget.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('[');
            write_str(&mut out, label);
            out.push_str(&format!(",{us}]"));
        }
        out.push_str("]}");
    }
    if explain {
        out.push_str(",\"explains\":[");
        for (i, exp) in result.explains.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"row\":{},\"attr\":{},\"outcome\":\"{}\",\"clusters\":{},\"candidates\":{}",
                exp.cell.row,
                exp.cell.col,
                exp.outcome.label(),
                exp.clusters,
                exp.candidates
            ));
            if let Some(w) = &exp.winner {
                out.push_str(&format!(
                    ",\"winner\":{{\"donor_row\":{},\"via_rfd\":{},\"distance\":",
                    w.donor_row, w.via_rfd
                ));
                write_f64(&mut out, w.distance);
                if let Some(margin) = w.runner_up_margin {
                    out.push_str(",\"runner_up_margin\":");
                    write_f64(&mut out, margin);
                }
                out.push('}');
            }
            if let Some(dry) = exp.dried_up {
                out.push_str(",\"dried_up\":");
                write_str(&mut out, dry.label());
            }
            out.push('}');
        }
        out.push(']');
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use renuver_core::RenuverConfig;
    use renuver_rfd::{Constraint, Rfd, RfdSet};

    fn test_ctx() -> Ctx {
        let rel = csv::read_str(
            "City:text,Zip:text\n\
             Malibu,90265\n\
             Malibu,90265\n\
             Hollywood,90028\n",
        )
        .unwrap();
        let rfds = RfdSet::from_vec(vec![Rfd::new(
            vec![Constraint::new(0, 0.0)],
            Constraint::new(1, 0.0),
        )]);
        let fingerprint = crate::artifact::schema_fingerprint(rel.schema());
        let engine = Engine::prepare(rel, rfds, RenuverConfig::default());
        Ctx::new(
            engine,
            ModelInfo {
                source: "test".into(),
                schema_fingerprint: fingerprint,
                artifact_bytes: 0,
            },
            None,
            60_000,
        )
    }

    fn get(path: &str) -> Request {
        let (path, query) = match path.split_once('?') {
            Some((p, q)) => (p, q),
            None => (path, ""),
        };
        Request {
            method: "GET".into(),
            path: path.into(),
            query: query
                .split('&')
                .filter(|s| !s.is_empty())
                .map(|s| match s.split_once('=') {
                    Some((k, v)) => (k.to_string(), v.to_string()),
                    None => (s.to_string(), String::new()),
                })
                .collect(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    fn post(path: &str, content_type: &str, body: &str) -> Request {
        let mut req = get(path);
        req.method = "POST".into();
        req.headers.push(("content-type".into(), content_type.into()));
        req.body = body.as_bytes().to_vec();
        req
    }

    #[test]
    fn healthz_and_unknown_paths() {
        let ctx = test_ctx();
        let resp = route(&ctx, &get("/healthz"));
        assert_eq!(resp.status, 200);
        let doc = json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(doc.get("state").unwrap().as_str(), Some("ok"));
        assert_eq!(doc.get("seq").unwrap().as_u64(), Some(0));
        assert_eq!(route(&ctx, &get("/nope")).status, 404);
        assert_eq!(route(&ctx, &get("/v1/impute")).status, 405);
        assert_eq!(route(&ctx, &get("/v1/ingest")).status, 405);
        assert_eq!(ctx.metrics.counter("http.requests").get(), 4);
        assert_eq!(ctx.metrics.counter("http.responses_2xx").get(), 1);
        assert_eq!(ctx.metrics.counter("http.responses_4xx").get(), 3);
    }

    fn durable_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("renuver-router-tests-{}", std::process::id()))
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Wires a test context to a durable store rooted at a fresh temp
    /// dir, the way `renuver serve --wal` does after replay.
    fn durable_ctx(name: &str) -> (Ctx, std::path::PathBuf) {
        let ctx = test_ctx();
        let dir = durable_dir(name);
        let snapshot = dir.join("model.rnv");
        {
            let engine = ctx.lock_engine();
            std::fs::write(&snapshot, crate::artifact::encode_engine(&engine, "test", 0)).unwrap();
        }
        let opts = crate::store::DurabilityOptions::beside(&snapshot, "test");
        let durable = {
            let mut engine = ctx.lock_engine();
            let (durable, _) = Durable::recover(&mut engine, 0, opts).unwrap();
            durable
        };
        ctx.install_durable(durable);
        (ctx, dir)
    }

    #[test]
    fn ingest_without_durability_is_503() {
        let ctx = test_ctx();
        let resp = route(
            &ctx,
            &post("/v1/ingest", "application/json", r#"{"tuples": [["Venice", "90291"]]}"#),
        );
        assert_eq!(resp.status, 503, "{}", String::from_utf8_lossy(&resp.body));
        assert!(resp.extra_headers.iter().any(|(k, _)| *k == "Retry-After"));
        assert_eq!(route(&ctx, &post("/v1/compact", "application/json", "")).status, 503);
    }

    #[test]
    fn ingest_refused_while_recovering_or_degraded() {
        let (ctx, _dir) = durable_ctx("refused-states");
        for state in [ServeState::Recovering, ServeState::Degraded] {
            ctx.set_state(state);
            let resp = route(
                &ctx,
                &post("/v1/ingest", "application/json", r#"{"tuples": [["Venice", "90291"]]}"#),
            );
            assert_eq!(resp.status, 503, "state {state:?}");
        }
        ctx.set_state(ServeState::Ok);
        let resp = route(
            &ctx,
            &post("/v1/ingest", "application/json", r#"{"tuples": [["Venice", "90291"]]}"#),
        );
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
    }

    #[test]
    fn ingest_repairs_commits_and_serves_the_new_donor() {
        let (ctx, _dir) = durable_ctx("commit");
        // The batch itself has a hole; ingest must repair then commit it.
        let resp = route(
            &ctx,
            &post(
                "/v1/ingest",
                "application/json",
                r#"{"tuples": [["Venice", "90291"], ["Malibu", null]]}"#,
            ),
        );
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        let doc = json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(doc.get("seq").unwrap().as_u64(), Some(1));
        assert_eq!(doc.get("committed_rows").unwrap().as_u64(), Some(2));
        assert_eq!(doc.get("donor_rows").unwrap().as_u64(), Some(5));
        let tuples = doc.get("tuples").unwrap().as_array().unwrap();
        assert_eq!(tuples[1].as_array().unwrap()[1].as_str(), Some("90265"));
        assert_eq!(ctx.seq(), 1);
        assert_eq!(ctx.metrics.counter("serve.ingest_rows").get(), 2);

        // The committed row is a donor for plain imputation now.
        let resp = route(
            &ctx,
            &post("/v1/impute", "application/json", r#"{"tuples": [["Venice", null]]}"#),
        );
        let doc = json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        let tuples = doc.get("tuples").unwrap().as_array().unwrap();
        assert_eq!(tuples[0].as_array().unwrap()[1].as_str(), Some("90291"));
    }

    #[test]
    fn compact_endpoint_rewrites_the_snapshot() {
        let (ctx, dir) = durable_ctx("compact-endpoint");
        let resp = route(
            &ctx,
            &post("/v1/ingest", "application/json", r#"{"tuples": [["Venice", "90291"]]}"#),
        );
        assert_eq!(resp.status, 200);
        let resp = route(&ctx, &post("/v1/compact", "application/json", ""));
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        let doc = json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(doc.get("seq").unwrap().as_u64(), Some(1));
        assert_eq!(doc.get("wal_records").unwrap().as_u64(), Some(0));
        assert_eq!(ctx.metrics.counter("serve.compactions").get(), 1);
        let snapshot = crate::artifact::load(dir.join("model.rnv")).unwrap();
        assert_eq!(snapshot.committed_seq, 1);
        assert_eq!(snapshot.relation.len(), 4);
        assert_eq!(ctx.state(), ServeState::Ok);
    }

    #[test]
    fn injected_wal_failure_degrades_the_server() {
        let (ctx, _dir) = durable_ctx("degrade");
        crate::fault::arm("wal.append.pre_write", crate::fault::Action::Err);
        let resp = route(
            &ctx,
            &post("/v1/ingest", "application/json", r#"{"tuples": [["Venice", "90291"]]}"#),
        );
        crate::fault::disarm("wal.append.pre_write");
        assert_eq!(resp.status, 500, "{}", String::from_utf8_lossy(&resp.body));
        assert_eq!(ctx.state(), ServeState::Degraded);
        assert_eq!(ctx.metrics.counter("serve.wal_degraded").get(), 1);
        // The engine did not commit the failed batch.
        assert_eq!(ctx.lock_engine().donor_rows(), 3);
        // Subsequent ingests are refused, reads still work.
        let resp = route(
            &ctx,
            &post("/v1/ingest", "application/json", r#"{"tuples": [["Venice", "90291"]]}"#),
        );
        assert_eq!(resp.status, 503);
        assert_eq!(route(&ctx, &get("/v1/model")).status, 200);
    }

    #[test]
    fn model_endpoint_describes_the_schema() {
        let ctx = test_ctx();
        let resp = route(&ctx, &get("/v1/model"));
        assert_eq!(resp.status, 200);
        let doc = json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(doc.get("rows").unwrap().as_u64(), Some(3));
        assert_eq!(doc.get("rfds").unwrap().as_u64(), Some(1));
        let attrs = doc.get("attrs").unwrap().as_array().unwrap();
        assert_eq!(attrs[0].get("name").unwrap().as_str(), Some("City"));
        assert_eq!(attrs[1].get("type").unwrap().as_str(), Some("text"));
    }

    #[test]
    fn impute_json_round_trip() {
        let ctx = test_ctx();
        let resp = route(
            &ctx,
            &post(
                "/v1/impute?explain=1",
                "application/json",
                r#"{"tuples": [["Malibu", null], ["Atlantis", null]]}"#,
            ),
        );
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        let doc = json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        let tuples = doc.get("tuples").unwrap().as_array().unwrap();
        assert_eq!(tuples[0].as_array().unwrap()[1].as_str(), Some("90265"));
        assert_eq!(tuples[1].as_array().unwrap()[1], json::Value::Null);
        let outcomes = doc.get("outcomes").unwrap().as_array().unwrap();
        assert_eq!(outcomes.len(), 2);
        assert_eq!(outcomes[0].get("outcome").unwrap().as_str(), Some("imputed"));
        assert_eq!(outcomes[1].get("outcome").unwrap().as_str(), Some("no_candidates"));
        let explains = doc.get("explains").unwrap().as_array().unwrap();
        assert_eq!(explains.len(), 2);
        assert_eq!(explains[1].get("dried_up").unwrap().as_str(), Some("no_candidates"));
        assert_eq!(ctx.metrics.counter("serve.cells_imputed").get(), 1);
        assert_eq!(ctx.metrics.counter("serve.cells_missing").get(), 2);
    }

    #[test]
    fn impute_csv_round_trip() {
        let ctx = test_ctx();
        let resp = route(
            &ctx,
            &post("/v1/impute", "text/csv", "City:text,Zip:text\nMalibu,_\n"),
        );
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        let doc = json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        let tuples = doc.get("tuples").unwrap().as_array().unwrap();
        assert_eq!(tuples[0].as_array().unwrap()[1].as_str(), Some("90265"));
    }

    #[test]
    fn untyped_csv_headers_coerce_to_the_model_schema() {
        let rel = csv::read_str("City:text,Class:int\nMalibu,6\nMalibu,6\nVenice,2\n").unwrap();
        let rfds = RfdSet::from_vec(vec![
            Rfd::new(vec![Constraint::new(0, 0.0)], Constraint::new(1, 0.0)),
            Rfd::new(vec![Constraint::new(1, 0.0)], Constraint::new(0, 0.0)),
        ]);
        let engine = Engine::prepare(rel, rfds, RenuverConfig::default());
        let ctx = Ctx::new(
            engine,
            ModelInfo { source: "test".into(), schema_fingerprint: 0, artifact_bytes: 0 },
            None,
            60_000,
        );
        // Plain header, no `:type` annotations: "6" must land as Int(6).
        let resp = route(&ctx, &post("/v1/impute", "text/csv", "City,Class\nMalibu,_\n"));
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        let doc = json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        let tuples = doc.get("tuples").unwrap().as_array().unwrap();
        assert_eq!(tuples[0].as_array().unwrap()[1].as_u64(), Some(6));
        // A typed value in the body is accepted too.
        let resp = route(&ctx, &post("/v1/impute", "text/csv", "City,Class\n,2\n"));
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        let doc = json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        let tuples = doc.get("tuples").unwrap().as_array().unwrap();
        assert_eq!(tuples[0].as_array().unwrap()[0].as_str(), Some("Venice"));
    }

    #[test]
    fn invalid_bodies_are_400_never_500() {
        let ctx = test_ctx();
        for (ct, body) in [
            ("application/json", "not json"),
            ("application/json", "{\"rows\": []}"),
            ("application/json", "{\"tuples\": [[\"only one\"]]}"),
            ("application/json", "{\"tuples\": [[1, \"zip\"]]}"),
            ("application/json", "{\"tuples\": [{\"a\": 1}]}"),
            ("text/csv", "Wrong:text,Header:text\nx,y\n"),
            ("application/x-whatever", "???"),
        ] {
            let resp = route(&ctx, &post("/v1/impute", ct, body));
            assert_eq!(resp.status, 400, "{ct} {body:?}");
        }
        // The engine still serves after every rejection.
        let resp = route(
            &ctx,
            &post("/v1/impute", "application/json", r#"{"tuples": [["Malibu", null]]}"#),
        );
        assert_eq!(resp.status, 200);
    }

    #[test]
    fn bad_query_params_are_400() {
        let ctx = test_ctx();
        let req = post("/v1/impute?timeout_ms=soon", "application/json", "{\"tuples\":[]}");
        assert_eq!(route(&ctx, &req).status, 400);
        let req = post(
            "/v1/impute?explain_sample=sometimes",
            "application/json",
            "{\"tuples\":[]}",
        );
        assert_eq!(route(&ctx, &req).status, 400);
    }

    #[test]
    fn timed_requests_report_budget_attribution() {
        let ctx = test_ctx();
        let resp = route(
            &ctx,
            &post(
                "/v1/impute?timeout_ms=60000",
                "application/json",
                r#"{"tuples": [["Malibu", null]]}"#,
            ),
        );
        assert_eq!(resp.status, 200);
        let doc = json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(doc.get("degraded").unwrap().as_bool(), Some(false));
        // The tracer was enabled for the limited budget, so phase
        // self-times are attributed even on a healthy response.
        let budget = doc.get("budget").unwrap();
        assert!(!budget.get("phases").unwrap().as_array().unwrap().is_empty());
    }

    #[test]
    fn render_batch_is_valid_json_for_empty_results() {
        let ctx = test_ctx();
        let mut engine = ctx.lock_engine();
        let result = engine.impute_batch(Vec::new()).unwrap();
        drop(engine);
        let doc = json::parse(&render_batch(&result, true)).unwrap();
        assert_eq!(doc.get("tuples").unwrap().as_array().unwrap().len(), 0);
    }

    // ------------------------------------------------- flight recorder

    fn sharded_ctx() -> Ctx {
        let rel = csv::read_str(
            "City:text,Zip:text\n\
             Malibu,90265\n\
             Malibu,90265\n\
             Hollywood,90028\n\
             Venice,90291\n",
        )
        .unwrap();
        let rfds = RfdSet::from_vec(vec![Rfd::new(
            vec![Constraint::new(0, 0.0)],
            Constraint::new(1, 0.0),
        )]);
        let registry = crate::registry::Registry::build(&rel, rfds, RenuverConfig::default(), 2);
        Ctx::new_sharded(
            registry,
            ModelInfo { source: "test".into(), schema_fingerprint: 0, artifact_bytes: 0 },
            None,
            60_000,
        )
    }

    #[test]
    fn trace_query_attributes_unlimited_budget_requests() {
        let ctx = test_ctx();
        let body = r#"{"tuples": [["Malibu", null]]}"#;
        // Untraced with no deadline: the tracer stays off, so the
        // response carries no budget attribution and no envelope.
        let resp = route(&ctx, &post("/v1/impute", "application/json", body));
        assert_eq!(resp.status, 200);
        let doc = json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert!(doc.get("budget").is_none(), "untraced healthy response has no budget block");
        assert!(doc.get("trace").is_none(), "no envelope unless ?trace=1");

        // `?trace=1` on the same unlimited budget: phases are attributed
        // and the span breakdown rides back on the response. Before the
        // gate was unified, unlimited-budget requests could never get
        // phase attribution.
        let resp = route(&ctx, &post("/v1/impute?trace=1", "application/json", body));
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        let doc = json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        let phases = doc.get("budget").unwrap().get("phases").unwrap();
        assert!(
            !phases.as_array().unwrap().is_empty(),
            "trace=1 must attribute phases on an unlimited budget"
        );
        let trace = doc.get("trace").unwrap();
        assert!(trace.get("events").unwrap().as_u64().unwrap() > 0);
        assert_eq!(trace.get("truncated").unwrap().as_bool(), Some(false));
        let spans = trace.get("spans").unwrap().as_array().unwrap();
        assert!(!spans.is_empty(), "traced run closed no spans");
        for s in spans {
            assert!(s.get("label").unwrap().as_str().is_some());
            assert!(s.get("dur_us").unwrap().as_u64().is_some());
        }
    }

    #[test]
    fn trace_envelope_caps_events_and_composes_with_deadlines() {
        // Cap: trace_max_events=1 keeps exactly one record and flags it.
        let mut ctx = test_ctx();
        ctx.set_flight(FlightOptions { trace_max_events: 1, ..FlightOptions::default() });
        let body = r#"{"tuples": [["Malibu", null]]}"#;
        let resp = route(&ctx, &post("/v1/impute?trace=1", "application/json", body));
        let doc = json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        let trace = doc.get("trace").unwrap();
        assert_eq!(trace.get("events").unwrap().as_u64(), Some(1));
        assert_eq!(trace.get("truncated").unwrap().as_bool(), Some(true));

        // `?trace=1&timeout_ms=...`: the explicit-trace and
        // degraded-attribution paths share one tracer, so both the
        // budget block and the envelope are populated.
        let ctx = test_ctx();
        let resp = route(
            &ctx,
            &post("/v1/impute?trace=1&timeout_ms=60000", "application/json", body),
        );
        assert_eq!(resp.status, 200);
        let doc = json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert!(!doc.get("budget").unwrap().get("phases").unwrap().as_array().unwrap().is_empty());
        assert!(doc.get("trace").is_some());
    }

    #[test]
    fn sharded_trace_envelope_reports_per_shard_legs() {
        let ctx = sharded_ctx();
        let resp = route(
            &ctx,
            &post("/v1/impute?trace=1", "application/json", r#"{"tuples": [["Malibu", null]]}"#),
        );
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        let doc = json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        let shards = doc.get("trace").unwrap().get("shards").unwrap().as_array().unwrap();
        assert_eq!(shards.len(), 2, "one leg per shard part");
        for leg in shards {
            assert!(leg.get("shard").unwrap().as_u64().is_some());
            assert!(leg.get("scan_us").unwrap().as_u64().is_some());
        }
        // The legs also landed in the per-shard latency windows.
        assert_eq!(ctx.metrics.windowed("serve.shard0.scan_us").all_time().count(), 1);
        assert_eq!(ctx.metrics.windowed("serve.shard1.scan_us").all_time().count(), 1);
    }

    #[test]
    fn request_ids_are_echoed_and_inbound_ids_honored() {
        let ctx = test_ctx();
        let resp = route(&ctx, &get("/healthz"));
        let (_, minted) = resp
            .extra_headers
            .iter()
            .find(|(k, _)| *k == "X-Request-Id")
            .expect("response must carry a request id");
        assert!(!minted.is_empty());

        let mut req = get("/healthz");
        req.headers.push(("x-request-id".into(), "caller-42".into()));
        let resp = route(&ctx, &req);
        assert!(
            resp.extra_headers.iter().any(|(k, v)| *k == "X-Request-Id" && v == "caller-42"),
            "sane inbound ids are echoed back"
        );

        // A hostile inbound id is replaced, not reflected into the log.
        let mut req = get("/healthz");
        req.headers.push(("x-request-id".into(), "a b\u{7}c".into()));
        let resp = route(&ctx, &req);
        let (_, id) =
            resp.extra_headers.iter().find(|(k, _)| *k == "X-Request-Id").unwrap();
        assert_ne!(id, "a b\u{7}c");
    }

    #[test]
    fn recorder_toggle_never_changes_response_bytes() {
        for sharded in [false, true] {
            let on = if sharded { sharded_ctx() } else { test_ctx() };
            let mut off = if sharded { sharded_ctx() } else { test_ctx() };
            off.set_flight(FlightOptions { enabled: false, ..FlightOptions::default() });
            let requests = [
                post(
                    "/v1/impute?explain=1",
                    "application/json",
                    r#"{"tuples": [["Malibu", null], ["Atlantis", null]]}"#,
                ),
                post("/v1/impute", "text/csv", "City:text,Zip:text\nMalibu,_\n"),
                post("/v1/impute", "application/json", "not json"),
                get("/v1/model"),
                get("/healthz"),
            ];
            for req in &requests {
                let a = route(&on, req);
                let b = route(&off, req);
                assert_eq!(a.status, b.status);
                assert_eq!(
                    a.body, b.body,
                    "recorder toggle changed {} {} (sharded={sharded})",
                    req.method, req.path
                );
                assert!(a.extra_headers.iter().any(|(k, _)| *k == "X-Request-Id"));
                assert!(!b.extra_headers.iter().any(|(k, _)| *k == "X-Request-Id"));
                let strip = |h: &[(&'static str, String)]| {
                    h.iter().filter(|(k, _)| *k != "X-Request-Id").cloned().collect::<Vec<_>>()
                };
                assert_eq!(strip(&a.extra_headers), strip(&b.extra_headers));
            }
        }
    }

    #[test]
    fn slow_ring_feeds_the_debug_endpoint() {
        let mut ctx = test_ctx();
        ctx.set_flight(FlightOptions { slow_threshold_ms: 0, ..FlightOptions::default() });
        let resp = route(
            &ctx,
            &post("/v1/impute", "application/json", r#"{"tuples": [["Malibu", null]]}"#),
        );
        assert_eq!(resp.status, 200);
        let resp = route(&ctx, &get("/v1/debug/requests"));
        assert_eq!(resp.status, 200);
        let doc = json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(doc.get("enabled").unwrap().as_bool(), Some(true));
        let reqs = doc.get("requests").unwrap().as_array().unwrap();
        assert_eq!(reqs.len(), 1, "only the impute preceded the dump");
        assert_eq!(reqs[0].get("endpoint").unwrap().as_str(), Some("impute"));
        assert_eq!(reqs[0].get("status").unwrap().as_u64(), Some(200));
        assert!(reqs[0].get("id").unwrap().as_str().is_some());

        // Recorder off: the ring stays empty and the endpoint says so.
        let mut off = test_ctx();
        off.set_flight(FlightOptions { enabled: false, ..FlightOptions::default() });
        route(&off, &post("/v1/impute", "application/json", r#"{"tuples": [["Malibu", null]]}"#));
        let resp = route(&off, &get("/v1/debug/requests"));
        let doc = json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(doc.get("enabled").unwrap().as_bool(), Some(false));
        assert!(doc.get("requests").unwrap().as_array().unwrap().is_empty());
    }

    #[test]
    fn access_log_validates_and_reconciles_with_counters() {
        let mut ctx = test_ctx();
        let dir = durable_dir("flight-log");
        let path = dir.join("events.jsonl");
        ctx.set_flight(FlightOptions {
            log: Some(renuver_obs::EventLog::create(&path).unwrap()),
            ..FlightOptions::default()
        });
        let ok_body = r#"{"tuples": [["Malibu", null]]}"#;
        assert_eq!(route(&ctx, &post("/v1/impute", "application/json", ok_body)).status, 200);
        assert_eq!(
            route(&ctx, &post("/v1/impute?trace=1", "application/json", ok_body)).status,
            200
        );
        assert_eq!(route(&ctx, &post("/v1/impute", "application/json", "not json")).status, 400);
        assert_eq!(route(&ctx, &get("/nope")).status, 404);
        assert_eq!(route(&ctx, &post("/v1/compact", "application/json", "")).status, 503);
        assert_eq!(route(&ctx, &get("/healthz")).status, 200);
        ctx.server_event("swap", vec![("seq", FieldValue::U64(7))]);

        let text = std::fs::read_to_string(&path).unwrap();
        let lines = renuver_obs::schema::validate_trace(&text)
            .unwrap_or_else(|(line, why)| panic!("log line {line} invalid: {why}\n{text}"));
        assert_eq!(lines, 7, "6 access lines + 1 server_event:\n{text}");

        let access_status = |line: &str| -> Option<u64> {
            if !line.contains("\"kind\":\"access\"") {
                return None;
            }
            let rest = line.split("\"status\":").nth(1)?;
            rest.chars().take_while(char::is_ascii_digit).collect::<String>().parse().ok()
        };
        let class = |lo, hi| {
            text.lines()
                .filter_map(access_status)
                .filter(|s| (lo..=hi).contains(s))
                .count() as u64
        };
        assert_eq!(class(200, 299), ctx.metrics.counter("http.responses_2xx").get());
        assert_eq!(class(400, 499), ctx.metrics.counter("http.responses_4xx").get());
        assert_eq!(class(500, 599), ctx.metrics.counter("http.responses_5xx").get());

        // The traced request's line carries phase self-times, cell
        // counts, and the envelope size; the lifecycle event landed in
        // both the log and its counter.
        assert!(
            text.lines().any(|l| l.contains("\"phases\":{") && l.contains("\"trace_events\":")),
            "{text}"
        );
        assert!(text.lines().any(|l| l.contains("\"cells_imputed\":1")), "{text}");
        assert!(
            text.lines()
                .any(|l| l.contains("\"kind\":\"server_event\"") && l.contains("\"event\":\"swap\"")),
            "{text}"
        );
        assert_eq!(ctx.metrics.counter("serve.events.swap").get(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prometheus_exposition_renders_and_negotiates() {
        let ctx = test_ctx();
        assert_eq!(
            route(&ctx, &post("/v1/impute", "application/json", r#"{"tuples": [["Malibu", null]]}"#))
                .status,
            200
        );

        // Explicit ?format=prometheus.
        let resp = route(&ctx, &get("/metrics?format=prometheus"));
        assert_eq!(resp.status, 200);
        assert_eq!(resp.content_type, "text/plain; version=0.0.4; charset=utf-8");
        let body = std::str::from_utf8(&resp.body).unwrap();
        assert!(body.contains("# TYPE http_requests counter"), "{body}");
        assert!(body.contains("# TYPE serve_latency_impute_2xx histogram"), "{body}");
        // Every line is a comment or `name[{labels}] value` over the
        // Prometheus charset — the exposition must parse as-is.
        for line in body.lines().filter(|l| !l.is_empty()) {
            if line.starts_with("# ") {
                continue;
            }
            let (name, value) = line.rsplit_once(' ').unwrap_or_else(|| panic!("bad line {line:?}"));
            assert!(value.chars().all(|c| c.is_ascii_digit()), "bad sample value: {line:?}");
            let bare = name.split('{').next().unwrap();
            assert!(
                !bare.is_empty()
                    && !bare.starts_with(|c: char| c.is_ascii_digit())
                    && bare.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "bad metric name: {line:?}"
            );
        }

        // Accept-header negotiation selects the same rendering; the
        // plain table and unknown formats behave as before.
        let mut req = get("/metrics");
        req.headers.push(("accept".into(), "application/openmetrics-text".into()));
        let resp = route(&ctx, &req);
        assert_eq!(resp.content_type, "text/plain; version=0.0.4; charset=utf-8");
        let resp = route(&ctx, &get("/metrics"));
        assert_eq!(resp.content_type, "text/plain; charset=utf-8");
        assert_eq!(route(&ctx, &get("/metrics?format=csv")).status, 400);
    }

    // ------------------------------------------------------ tune jobs

    /// Routes `req` against an Arc-bound context, the way a real server
    /// serves it (tune submission upgrades the weak self-reference).
    fn bound_ctx() -> Arc<Ctx> {
        let ctx = Arc::new(test_ctx());
        ctx.bind_self();
        ctx
    }

    fn delete(path: &str) -> Request {
        let mut req = get(path);
        req.method = "DELETE".into();
        req
    }

    /// Polls `GET /v1/tune/<id>` until the job leaves `running`.
    fn poll_done(ctx: &Ctx, id: u64) -> json::Value {
        for _ in 0..500 {
            let resp = route(ctx, &get(&format!("/v1/tune/{id}")));
            assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
            let doc = json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
            if doc.get("status").unwrap().as_str() != Some("running") {
                return doc;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        panic!("tune job {id} never finished");
    }

    #[test]
    fn tune_job_lifecycle_submit_poll_result() {
        let ctx = bound_ctx();
        let resp = route(&ctx, &post("/v1/tune", "application/json", r#"{"seed": 7}"#));
        assert_eq!(resp.status, 202, "{}", String::from_utf8_lossy(&resp.body));
        let doc = json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(doc.get("id").unwrap().as_u64(), Some(1));
        assert_eq!(doc.get("status").unwrap().as_str(), Some("running"));

        let done = poll_done(&ctx, 1);
        assert_eq!(done.get("status").unwrap().as_str(), Some("done"));
        let report = done.get("report").unwrap();
        assert_eq!(report.get("seed").unwrap().as_u64(), Some(7));
        assert!(report.get("thresholds").unwrap().as_str().is_some());
        assert!(done.get("installed").is_none(), "install was not requested");

        // The job is surfaced by /healthz and counted in /metrics.
        let health = route(&ctx, &get("/healthz"));
        let hdoc = json::parse(std::str::from_utf8(&health.body).unwrap()).unwrap();
        let tune = hdoc.get("tune").unwrap();
        assert_eq!(tune.get("id").unwrap().as_u64(), Some(1));
        assert_eq!(tune.get("status").unwrap().as_str(), Some("done"));
        assert_eq!(ctx.metrics.counter("serve.events.tune_started").get(), 1);
        assert_eq!(ctx.metrics.counter("serve.events.tune_finished").get(), 1);
        assert_eq!(ctx.metrics.counter("serve.events.tune_cancelled").get(), 0);

        // Unknown ids and non-numeric ids answer 404.
        assert_eq!(route(&ctx, &get("/v1/tune/99")).status, 404);
        assert_eq!(route(&ctx, &get("/v1/tune/abc")).status, 404);
        // Wrong methods: 405 on the collection and on a job id.
        assert_eq!(route(&ctx, &get("/v1/tune")).status, 405);
        let mut put = get("/v1/tune/1");
        put.method = "PUT".into();
        assert_eq!(route(&ctx, &put).status, 405);
    }

    #[test]
    fn tune_install_swaps_the_served_model() {
        let ctx = bound_ctx();
        let resp = route(
            &ctx,
            &post("/v1/tune", "application/json", r#"{"seed": 3, "install": true}"#),
        );
        assert_eq!(resp.status, 202, "{}", String::from_utf8_lossy(&resp.body));
        let done = poll_done(&ctx, 1);
        assert_eq!(done.get("status").unwrap().as_str(), Some("done"));
        assert_eq!(done.get("installed").unwrap().as_bool(), Some(true), "{done:?}");
        // The install went through the hot-swap path: provenance and the
        // swap counter both show it.
        assert_eq!(ctx.info().source, "tune job 1");
        assert_eq!(ctx.metrics.counter("serve.swaps").get(), 1);
        // The served thresholds are the tuned set.
        let tuned_text = done.get("report").unwrap().get("thresholds").unwrap();
        let engine = ctx.lock_engine();
        let served = engine.sigma().to_text(engine.schema());
        assert_eq!(Some(served.as_str()), tuned_text.as_str());
    }

    #[test]
    fn tune_submit_is_single_flight_and_delete_cancels() {
        let ctx = bound_ctx();
        // Park a synthetic running job so the timing is deterministic.
        let budget = Budget::unlimited();
        let worker = budget.clone();
        let id = ctx
            .jobs()
            .submit(budget, move |_, state| {
                std::thread::spawn(move || {
                    while !worker.is_cancelled() {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    state.finish(JobStatus::Cancelled, "{\"status\":\"cancelled\"}".into());
                })
            })
            .unwrap();

        let resp = route(&ctx, &post("/v1/tune", "application/json", ""));
        assert_eq!(resp.status, 409, "{}", String::from_utf8_lossy(&resp.body));
        let doc = json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(doc.get("id").unwrap().as_u64(), Some(id));

        // DELETE delivers the cancel; the worker lands a terminal state.
        let resp = route(&ctx, &delete(&format!("/v1/tune/{id}")));
        assert_eq!(resp.status, 202);
        ctx.jobs().shutdown();
        let resp = route(&ctx, &delete(&format!("/v1/tune/{id}")));
        assert_eq!(resp.status, 200);
        let doc = json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(doc.get("status").unwrap().as_str(), Some("cancelled"));
        assert_eq!(route(&ctx, &delete("/v1/tune/99")).status, 404);
    }

    #[test]
    fn tune_rejects_bad_params_sharded_and_unbound_contexts() {
        let ctx = bound_ctx();
        for body in [
            r#"{"seed": -1}"#,
            r#"{"rate": 0}"#,
            r#"{"rate": 1.5}"#,
            r#"{"max_iters": 0}"#,
            r#"{"target_f1": 0}"#,
            r#"{"step": 0}"#,
            r#"{"install": "yes"}"#,
            r#"{"bogus": 1}"#,
            r#"[1]"#,
            "not json",
        ] {
            let resp = route(&ctx, &post("/v1/tune", "application/json", body));
            assert_eq!(resp.status, 400, "{body}: {}", String::from_utf8_lossy(&resp.body));
        }
        // Without a bound Arc there is nothing to own the worker thread.
        let unbound = test_ctx();
        assert_eq!(route(&unbound, &post("/v1/tune", "application/json", "")).status, 503);
        // The sharded topology has no single engine to tune.
        let sharded = Arc::new(sharded_ctx());
        sharded.bind_self();
        assert_eq!(route(&sharded, &post("/v1/tune", "application/json", "")).status, 503);
    }
}
