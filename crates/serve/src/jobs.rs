//! The server's asynchronous job registry (today: tune jobs only).
//!
//! `POST /v1/tune` is the first endpoint whose work outlives its
//! request, so it gets the minimal machinery that makes async safe:
//! monotonically increasing job ids, a single-flight guard (one tune at
//! a time — a second submit answers `409`), lock-light progress shared
//! with the worker thread, cancellation through the job's [`Budget`]
//! handle, and a graceful-drain hook that joins the worker so shutdown
//! never truncates the event log mid-job.
//!
//! Only the *latest* job is retained. Tune results are cheap to
//! recompute and the single-flight guard means there is never more than
//! one interesting job anyway; polling an earlier id answers `404`.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;

use renuver_budget::Budget;

/// Lifecycle of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum JobStatus {
    /// The worker thread is running.
    Running = 0,
    /// Finished normally; the result body is stored.
    Done = 1,
    /// Cancelled (or drained at shutdown); a partial result is stored.
    Cancelled = 2,
    /// The worker panicked; an error body is stored.
    Failed = 3,
}

impl JobStatus {
    /// The label the HTTP payloads carry.
    pub fn label(self) -> &'static str {
        match self {
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Cancelled => "cancelled",
            JobStatus::Failed => "failed",
        }
    }

    fn from_u8(v: u8) -> JobStatus {
        match v {
            0 => JobStatus::Running,
            1 => JobStatus::Done,
            2 => JobStatus::Cancelled,
            _ => JobStatus::Failed,
        }
    }
}

/// Progress shared between the worker thread and request handlers.
/// Everything a poll needs is readable without blocking the worker.
pub struct JobState {
    status: AtomicU8,
    iterations: AtomicU64,
    /// Terminal response body, set exactly once by [`JobState::finish`].
    result: Mutex<Option<String>>,
}

impl JobState {
    fn new() -> JobState {
        JobState {
            status: AtomicU8::new(JobStatus::Running as u8),
            iterations: AtomicU64::new(0),
            result: Mutex::new(None),
        }
    }

    /// Current lifecycle state.
    pub fn status(&self) -> JobStatus {
        JobStatus::from_u8(self.status.load(Ordering::Acquire))
    }

    /// Iterations the worker has completed so far.
    pub fn iterations(&self) -> u64 {
        self.iterations.load(Ordering::Acquire)
    }

    /// Worker-side progress update.
    pub fn set_iterations(&self, n: u64) {
        self.iterations.store(n, Ordering::Release);
    }

    /// Stores the terminal body and flips the status — in that order, so
    /// a poll that sees a terminal status always finds the body.
    pub fn finish(&self, status: JobStatus, body: String) {
        *self.result.lock().unwrap_or_else(|e| e.into_inner()) = Some(body);
        self.status.store(status as u8, Ordering::Release);
    }

    /// The stored terminal body, once [`JobState::finish`] ran.
    pub fn result(&self) -> Option<String> {
        self.result.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }
}

struct Job {
    id: u64,
    /// The run's budget — cancelling it is how `DELETE` stops the job.
    budget: Budget,
    state: Arc<JobState>,
    handle: Option<JoinHandle<()>>,
}

/// The registry: one retained job behind a slot mutex. All methods are
/// cheap; none is held across the worker's actual work.
pub struct TuneJobs {
    next_id: AtomicU64,
    slot: Mutex<Option<Job>>,
}

impl TuneJobs {
    /// An empty registry; ids start at 1.
    pub fn new() -> TuneJobs {
        TuneJobs { next_id: AtomicU64::new(1), slot: Mutex::new(None) }
    }

    /// Single-flight submit: reserves an id and state, calls `spawn`
    /// with them to start the worker, and retains the job. When a job is
    /// still running, returns `Err` with its id (the `409` path) and
    /// does not call `spawn`. A previous *terminal* job is retired (its
    /// thread joined) before the new one starts.
    pub fn submit<F>(&self, budget: Budget, spawn: F) -> Result<u64, u64>
    where
        F: FnOnce(u64, Arc<JobState>) -> JoinHandle<()>,
    {
        let mut slot = self.lock();
        if let Some(job) = slot.as_ref() {
            if job.state.status() == JobStatus::Running {
                return Err(job.id);
            }
        }
        if let Some(mut old) = slot.take() {
            if let Some(h) = old.handle.take() {
                let _ = h.join();
            }
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let state = Arc::new(JobState::new());
        let handle = spawn(id, Arc::clone(&state));
        *slot = Some(Job { id, budget, state, handle: Some(handle) });
        Ok(id)
    }

    /// The state of job `id`, while it is the retained job.
    pub fn get(&self, id: u64) -> Option<Arc<JobState>> {
        self.lock().as_ref().filter(|j| j.id == id).map(|j| Arc::clone(&j.state))
    }

    /// Requests cancellation of job `id` and reports the status it had:
    /// `Running` means the cancel was delivered (the worker stops at its
    /// next budget checkpoint); a terminal status makes the call a
    /// no-op.
    pub fn cancel(&self, id: u64) -> Option<JobStatus> {
        let slot = self.lock();
        let job = slot.as_ref().filter(|j| j.id == id)?;
        let status = job.state.status();
        if status == JobStatus::Running {
            job.budget.cancel();
        }
        Some(status)
    }

    /// Latest job `(id, status, iterations)`, for `/healthz`.
    pub fn snapshot(&self) -> Option<(u64, JobStatus, u64)> {
        self.lock().as_ref().map(|j| (j.id, j.state.status(), j.state.iterations()))
    }

    /// Graceful-drain hook: cancels a running job and joins its worker,
    /// so the terminal result and its event-log lines are written before
    /// the server exits.
    pub fn shutdown(&self) {
        let handle = {
            let mut slot = self.lock();
            match slot.as_mut() {
                Some(job) => {
                    job.budget.cancel();
                    job.handle.take()
                }
                None => None,
            }
        };
        if let Some(h) = handle {
            let _ = h.join();
        }
    }

    fn lock(&self) -> MutexGuard<'_, Option<Job>> {
        self.slot.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl Default for TuneJobs {
    fn default() -> Self {
        TuneJobs::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    /// A worker that blocks until its budget is cancelled, then finishes.
    fn blocking_worker(budget: Budget, state: Arc<JobState>) -> JoinHandle<()> {
        std::thread::spawn(move || {
            while !budget.is_cancelled() {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            state.finish(JobStatus::Cancelled, "{\"partial\":true}".into());
        })
    }

    #[test]
    fn submit_is_single_flight_and_ids_are_monotonic() {
        let jobs = TuneJobs::new();
        let budget = Budget::unlimited();
        let id = jobs
            .submit(budget.clone(), |_, state| blocking_worker(budget.clone(), state))
            .unwrap();
        assert_eq!(id, 1);
        // Second submit while running: rejected, spawn not called.
        let second = jobs.submit(Budget::unlimited(), |_, _| panic!("must not spawn"));
        assert_eq!(second, Err(1));
        assert_eq!(jobs.cancel(1), Some(JobStatus::Running));
        jobs.shutdown();
        assert_eq!(jobs.get(1).unwrap().status(), JobStatus::Cancelled);
        // Terminal job: a new submit retires it and takes the next id.
        let id2 = jobs
            .submit(Budget::unlimited(), |_, state| {
                std::thread::spawn(move || state.finish(JobStatus::Done, "{}".into()))
            })
            .unwrap();
        assert_eq!(id2, 2);
        assert!(jobs.get(1).is_none(), "only the latest job is retained");
    }

    #[test]
    fn cancel_reaches_the_worker_and_the_result_is_stored() {
        let jobs = TuneJobs::new();
        let budget = Budget::unlimited();
        let worker_budget = budget.clone();
        let (tx, rx) = mpsc::channel();
        let id = jobs
            .submit(budget, move |_, state| {
                std::thread::spawn(move || {
                    tx.send(()).unwrap();
                    while !worker_budget.is_cancelled() {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                    state.set_iterations(3);
                    state.finish(JobStatus::Cancelled, "{\"iterations\":3}".into());
                })
            })
            .unwrap();
        rx.recv().unwrap();
        assert_eq!(jobs.cancel(id), Some(JobStatus::Running));
        jobs.shutdown();
        let state = jobs.get(id).unwrap();
        assert_eq!(state.status(), JobStatus::Cancelled);
        assert_eq!(state.iterations(), 3);
        assert_eq!(state.result().unwrap(), "{\"iterations\":3}");
        // Cancelling a terminal job is a reported no-op.
        assert_eq!(jobs.cancel(id), Some(JobStatus::Cancelled));
        assert_eq!(jobs.cancel(99), None);
    }

    #[test]
    fn snapshot_reports_the_latest_job() {
        let jobs = TuneJobs::new();
        assert!(jobs.snapshot().is_none());
        let id = jobs
            .submit(Budget::unlimited(), |_, state| {
                std::thread::spawn(move || state.finish(JobStatus::Done, "{}".into()))
            })
            .unwrap();
        jobs.shutdown();
        let (sid, status, _) = jobs.snapshot().unwrap();
        assert_eq!(sid, id);
        assert_eq!(status, JobStatus::Done);
    }
}
