//! Benchmarks of metadata discovery: RFD discovery across datasets and
//! threshold limits, scaling with tuple count, and DC discovery.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use renuver_bench::{discovery_config, DATA_SEED};
use renuver_datasets::{physician, Dataset};
use renuver_dc::{discover_dcs, DcDiscoveryConfig};
use renuver_rfd::discovery::discover;

fn bench_rfd_discovery_datasets(c: &mut Criterion) {
    let mut g = c.benchmark_group("rfd_discovery");
    g.sample_size(10);
    for ds in Dataset::all() {
        let rel = ds.relation(DATA_SEED);
        for limit in [3.0, 15.0] {
            let cfg = discovery_config(limit);
            g.bench_with_input(
                BenchmarkId::new(ds.name(), format!("limit{limit}")),
                &rel,
                |bench, rel| bench.iter(|| discover(black_box(rel), &cfg)),
            );
        }
    }
    g.finish();
}

fn bench_rfd_discovery_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("rfd_discovery_scaling");
    g.sample_size(10);
    for n in [104usize, 208, 1036] {
        let rel = physician::generate(n, DATA_SEED);
        let cfg = discovery_config(3.0);
        g.bench_with_input(BenchmarkId::from_parameter(n), &rel, |bench, rel| {
            bench.iter(|| discover(black_box(rel), &cfg))
        });
    }
    g.finish();
}

fn bench_dc_discovery(c: &mut Criterion) {
    let mut g = c.benchmark_group("dc_discovery");
    g.sample_size(10);
    for ds in [Dataset::Restaurant, Dataset::Glass] {
        let rel = ds.relation(DATA_SEED);
        g.bench_with_input(BenchmarkId::from_parameter(ds.name()), &rel, |bench, rel| {
            bench.iter(|| discover_dcs(black_box(rel), &DcDiscoveryConfig::default()))
        });
    }
    g.finish();
}

fn bench_skyline_vs_naive(c: &mut Criterion) {
    // The skyline search against the brute-force reference, on an input
    // small enough for the reference to finish (12 tuples, 3 attributes,
    // grid limit 3, LHS ≤ 2).
    use renuver_data::{AttrType, Relation, Schema, Value};
    use renuver_rfd::discovery::DiscoveryConfig;
    use renuver_rfd::naive::{discover_naive, NaiveConfig};
    let schema = Schema::new([
        ("A", AttrType::Int),
        ("B", AttrType::Int),
        ("C", AttrType::Int),
    ])
    .unwrap();
    let rows: Vec<_> = (0..12i64)
        .map(|i| vec![Value::Int(i % 5), Value::Int(i % 3 * 4), Value::Int(i)])
        .collect();
    let rel = Relation::new(schema, rows).unwrap();
    let mut g = c.benchmark_group("skyline_vs_naive");
    g.sample_size(10);
    let cfg = DiscoveryConfig { max_lhs: 2, parallel: false, ..DiscoveryConfig::with_limit(3.0) };
    g.bench_function("skyline", |b| b.iter(|| discover(black_box(&rel), &cfg)));
    g.bench_function("naive", |b| {
        b.iter(|| discover_naive(black_box(&rel), &NaiveConfig::new(3, 2)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_rfd_discovery_datasets,
    bench_rfd_discovery_scaling,
    bench_dc_discovery,
    bench_skyline_vs_naive
);
criterion_main!(benches);
