//! End-to-end imputation benchmarks: all four approaches on each dataset
//! with 3% injected missing values and pre-discovered metadata — the
//! engine-time core of the paper's Tables 4–5 measurements.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use renuver_baselines::{Derand, DerandConfig, GreyKnn, GreyKnnConfig, Holoclean, HolocleanConfig};
use renuver_bench::{rfds_for, DATA_SEED};
use renuver_core::{Renuver, RenuverConfig};
use renuver_datasets::Dataset;
use renuver_dc::{discover_dcs, DcDiscoveryConfig};
use renuver_eval::inject;

fn bench_imputers(c: &mut Criterion) {
    let mut g = c.benchmark_group("impute_3pct");
    g.sample_size(10);
    for ds in Dataset::all() {
        let rel = ds.relation(DATA_SEED);
        let rfds = rfds_for(ds, 15.0);
        let dcs = discover_dcs(&rel, &DcDiscoveryConfig::default());
        let (incomplete, _) = inject(&rel, 0.03, 1);

        let renuver = Renuver::new(RenuverConfig::default());
        g.bench_with_input(
            BenchmarkId::new("renuver", ds.name()),
            &incomplete,
            |bench, rel| bench.iter(|| renuver.impute(black_box(rel), &rfds)),
        );

        let derand = Derand::new(DerandConfig::default());
        g.bench_with_input(
            BenchmarkId::new("derand", ds.name()),
            &incomplete,
            |bench, rel| bench.iter(|| derand.impute(black_box(rel), &rfds)),
        );

        let holoclean = Holoclean::new(HolocleanConfig::default());
        g.bench_with_input(
            BenchmarkId::new("holoclean", ds.name()),
            &incomplete,
            |bench, rel| bench.iter(|| holoclean.impute(black_box(rel), &dcs)),
        );

        let knn = GreyKnn::new(GreyKnnConfig::default());
        g.bench_with_input(
            BenchmarkId::new("knn", ds.name()),
            &incomplete,
            |bench, rel| bench.iter(|| knn.impute(black_box(rel))),
        );
    }
    g.finish();
}

fn bench_missing_rate_scaling(c: &mut Criterion) {
    // RENUVER's cost versus the missing rate (the Table 4 stress axis).
    let mut g = c.benchmark_group("renuver_by_rate");
    g.sample_size(10);
    let ds = Dataset::Restaurant;
    let rel = ds.relation(DATA_SEED);
    let rfds = rfds_for(ds, 15.0);
    let renuver = Renuver::new(RenuverConfig::default());
    for rate in [0.05, 0.20, 0.40] {
        let (incomplete, _) = inject(&rel, rate, 1);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{}pct", (rate * 100.0) as u32)),
            &incomplete,
            |bench, rel| bench.iter(|| renuver.impute(black_box(rel), &rfds)),
        );
    }
    g.finish();
}

fn bench_tuple_scaling(c: &mut Criterion) {
    // RENUVER's cost versus the instance size on Restaurant-structured
    // data (fixed 3% missing, metadata discovered per size).
    let mut g = c.benchmark_group("renuver_by_tuples");
    g.sample_size(10);
    let renuver = Renuver::new(RenuverConfig::default());
    for n in [216usize, 432, 864, 1728] {
        let rel = Dataset::Restaurant.relation_n(n, DATA_SEED);
        let rfds = renuver_rfd::discovery::discover(
            &rel,
            &renuver_bench::discovery_config(15.0),
        );
        let (incomplete, _) = inject(&rel, 0.03, 1);
        g.bench_with_input(BenchmarkId::from_parameter(n), &incomplete, |bench, rel| {
            bench.iter(|| renuver.impute(black_box(rel), &rfds))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_imputers, bench_missing_rate_scaling, bench_tuple_scaling);
criterion_main!(benches);
