//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! cluster visiting order, verification scope, key re-evaluation, and the
//! candidate cap. Each toggle is measured on the Restaurant dataset at 3%
//! missing with the threshold-15 RFD set.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use renuver_bench::{rfds_for, DATA_SEED};
use renuver_core::{ClusterOrder, ImputationOrder, Renuver, RenuverConfig, VerifyScope};
use renuver_datasets::Dataset;
use renuver_eval::inject;

fn configs() -> Vec<(&'static str, RenuverConfig)> {
    vec![
        ("paper_default", RenuverConfig::default()),
        (
            "clusters_descending",
            RenuverConfig {
                cluster_order: ClusterOrder::Descending,
                ..RenuverConfig::default()
            },
        ),
        (
            "verify_full_sigma",
            RenuverConfig { verify_scope: VerifyScope::Full, ..RenuverConfig::default() },
        ),
        (
            "no_key_reactivation",
            RenuverConfig { skip_key_reevaluation: true, ..RenuverConfig::default() },
        ),
        (
            "candidate_cap_8",
            RenuverConfig {
                max_candidates_per_cluster: Some(8),
                ..RenuverConfig::default()
            },
        ),
        (
            "column_major_order",
            RenuverConfig {
                imputation_order: ImputationOrder::ColumnMajor,
                ..RenuverConfig::default()
            },
        ),
        (
            "fewest_missing_first",
            RenuverConfig {
                imputation_order: ImputationOrder::FewestMissingFirst,
                ..RenuverConfig::default()
            },
        ),
    ]
}

fn bench_ablation(c: &mut Criterion) {
    let ds = Dataset::Restaurant;
    let rel = ds.relation(DATA_SEED);
    let rfds = rfds_for(ds, 15.0);
    let (incomplete, _) = inject(&rel, 0.03, 1);

    let mut g = c.benchmark_group("ablation_restaurant");
    g.sample_size(10);
    for (name, config) in configs() {
        let engine = Renuver::new(config);
        g.bench_with_input(BenchmarkId::from_parameter(name), &incomplete, |bench, rel| {
            bench.iter(|| engine.impute(black_box(rel), &rfds))
        });
    }
    g.finish();

    // Also report the quality impact once per configuration, so the
    // ablation output pairs time with effect (printed, not measured).
    println!("\nablation quality (imputed / missing, verification failures):");
    for (name, config) in configs() {
        let result = Renuver::new(config).impute(&incomplete, &rfds);
        println!(
            "  {name:22} {} / {} imputed, {} rejected candidates",
            result.stats.imputed, result.stats.missing_total, result.stats.verification_failures
        );
    }
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
