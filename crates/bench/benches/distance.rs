//! Microbenchmarks of the distance kernels: plain vs bounded Levenshtein,
//! value distances, distance patterns, and the dictionary-encoded oracle
//! against direct computation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use renuver_bench::DATA_SEED;
use renuver_datasets::Dataset;
use renuver_distance::functions::{levenshtein, levenshtein_bounded, value_distance};
use renuver_distance::{DistanceOracle, DistancePattern};

fn bench_levenshtein(c: &mut Criterion) {
    let mut g = c.benchmark_group("levenshtein");
    let pairs = [
        ("short", "Granita", "Citrus"),
        ("phone", "310/456-0488", "310-392-9025"),
        ("long", "Chinois on Main Santa Monica", "C. Main St. Santa Monica CA"),
    ];
    for (name, a, b) in pairs {
        g.bench_function(format!("plain/{name}"), |bench| {
            bench.iter(|| levenshtein(black_box(a), black_box(b)))
        });
        g.bench_function(format!("bounded3/{name}"), |bench| {
            bench.iter(|| levenshtein_bounded(black_box(a), black_box(b), 3))
        });
    }
    g.finish();
}

fn bench_value_distance(c: &mut Criterion) {
    let mut g = c.benchmark_group("value_distance");
    let text_a = renuver_data::Value::from("Los Angeles");
    let text_b = renuver_data::Value::from("LA");
    let num_a = renuver_data::Value::Float(1.51761);
    let num_b = renuver_data::Value::Float(1.52101);
    g.bench_function("text", |bench| {
        bench.iter(|| value_distance(black_box(&text_a), black_box(&text_b)))
    });
    g.bench_function("numeric", |bench| {
        bench.iter(|| value_distance(black_box(&num_a), black_box(&num_b)))
    });
    g.finish();
}

fn bench_pattern(c: &mut Criterion) {
    let rel = Dataset::Restaurant.relation(DATA_SEED);
    c.bench_function("distance_pattern/restaurant_row_pair", |bench| {
        bench.iter(|| DistancePattern::between_rows(black_box(&rel), 10, 700))
    });
}

fn bench_oracle(c: &mut Criterion) {
    let rel = Dataset::Restaurant.relation(DATA_SEED);
    let mut g = c.benchmark_group("oracle");
    g.sample_size(20);
    g.bench_function("build/restaurant", |bench| {
        bench.iter_batched(
            || &rel,
            |rel| DistanceOracle::build(black_box(rel), 3000),
            BatchSize::LargeInput,
        )
    });
    let cached = DistanceOracle::build(&rel, 3000);
    let direct = DistanceOracle::direct(&rel);
    // A full column scan, the shape of candidate generation.
    g.bench_function("column_scan/cached", |bench| {
        bench.iter(|| {
            let mut acc = 0.0;
            for j in 0..rel.len() {
                if let Some(d) = cached.distance(&rel, 0, 5, j) {
                    acc += d;
                }
            }
            acc
        })
    });
    g.bench_function("column_scan/direct", |bench| {
        bench.iter(|| {
            let mut acc = 0.0;
            for j in 0..rel.len() {
                if let Some(d) = direct.distance(&rel, 0, 5, j) {
                    acc += d;
                }
            }
            acc
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_levenshtein,
    bench_value_distance,
    bench_pattern,
    bench_oracle
);
criterion_main!(benches);
