//! Parallel-speedup benchmarks: the rayon-distributed hot paths at one
//! thread versus all available cores — the distance-matrix (oracle) build
//! and the end-to-end imputation run. The `bench_parallel` binary measures
//! the same pair and records the ratios in `BENCH_parallel.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use renuver_bench::{parallel_fixture, rfds_for, DATA_SEED};
use renuver_core::{Renuver, RenuverConfig};
use renuver_datasets::Dataset;
use renuver_distance::DistanceOracle;
use renuver_eval::inject;

fn available_cores() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// `[1, all cores]`, collapsed to `[1]` on a single-core machine.
fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1, available_cores()];
    counts.dedup();
    counts
}

fn bench_oracle_build(c: &mut Criterion) {
    // 3 000 rows over 600 distinct text values: the O(k²) Levenshtein
    // matrix fill dominates, which is exactly the scan `par_map_indexed`
    // distributes.
    let rel = parallel_fixture(3_000, 600);
    let mut g = c.benchmark_group("oracle_build_parallel");
    g.sample_size(10);
    for threads in thread_counts() {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{threads}t")),
            &rel,
            |bench, rel| {
                bench.iter(|| pool.install(|| DistanceOracle::build(black_box(rel), 3_000)))
            },
        );
    }
    g.finish();
}

fn bench_impute_end_to_end(c: &mut Criterion) {
    let ds = Dataset::Restaurant;
    let rel = ds.relation(DATA_SEED);
    let rfds = rfds_for(ds, 15.0);
    let (incomplete, _) = inject(&rel, 0.03, 1);
    let mut g = c.benchmark_group("impute_parallel");
    g.sample_size(10);
    for threads in thread_counts() {
        let engine = Renuver::new(RenuverConfig {
            parallelism: threads,
            ..RenuverConfig::default()
        });
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{threads}t")),
            &incomplete,
            |bench, rel| bench.iter(|| engine.impute(black_box(rel), &rfds)),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_oracle_build, bench_impute_end_to_end);
criterion_main!(benches);
