//! Shared plumbing for the experiment binaries and Criterion benches.
//!
//! One binary per paper table/figure lives in `src/bin/`:
//!
//! | Binary   | Reproduces |
//! |----------|------------|
//! | `fig1`   | Figure 1 — the worked Table 2 walk-through, every number computed live |
//! | `table3` | Table 3 — dataset statistics, #RFDs per threshold limit, #missing per rate |
//! | `fig2`   | Figure 2 — RENUVER P/R/F1 by RHS-threshold limit × missing rate, 4 datasets |
//! | `fig3`   | Figure 3 — RENUVER vs Derand vs Holoclean (vs kNN on Glass) by missing rate |
//! | `table4` | Table 4 — Restaurant stress at 5–40% missing: metrics, time, memory |
//! | `table5` | Table 5 — Physician scaling at 104–10359 tuples: metrics, time, memory |
//! | `robustness` | Beyond the paper — MCAR vs MNAR vs column-concentrated missingness |
//!
//! Run with `cargo run -p renuver-bench --release --bin <name>`. Binaries
//! accept a `--quick` flag that shrinks seeds/sizes for smoke runs; the
//! figure/robustness binaries also accept `--csv <path>` for tidy,
//! plot-ready output. `profile_one` / `profile_physician` are developer
//! timing tools.

use renuver_datasets::Dataset;
use renuver_rfd::discovery::{discover, DiscoveryConfig};
use renuver_rfd::RfdSet;

/// The five RHS-threshold limits of the paper's evaluation (Section 6.1).
pub const THRESHOLD_LIMITS: [f64; 5] = [3.0, 6.0, 9.0, 12.0, 15.0];

/// The missing rates of the qualitative evaluation (1% … 5%).
pub const MISSING_RATES: [f64; 5] = [0.01, 0.02, 0.03, 0.04, 0.05];

/// The five injection seeds ("five injected datasets per missing rate").
pub const SEEDS: [u64; 5] = [11, 22, 33, 44, 55];

/// Generation seed shared by all experiments.
pub const DATA_SEED: u64 = 42;

/// Discovery tuned per dataset: lattice depth 2 keeps the RFD sets in the
/// hundreds-to-thousands range of the paper's Table 3 while staying fast on
/// every machine.
pub fn discovery_config(limit: f64) -> DiscoveryConfig {
    DiscoveryConfig { max_lhs: 2, ..DiscoveryConfig::with_limit(limit) }
}

/// Discovers the RFD set for a dataset at a threshold limit.
pub fn rfds_for(ds: Dataset, limit: f64) -> RfdSet {
    discover(&ds.relation(DATA_SEED), &discovery_config(limit))
}

/// `true` when `--quick` was passed: smoke-run sizes (fewer seeds, smaller
/// scaling ladder) instead of the full paper protocol.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// The value following `--csv`, if given: binaries that support it also
/// write their results as tidy CSV (one row per measurement) to that path,
/// ready for plotting.
pub fn csv_path() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Accumulates tidy-CSV rows and writes them on request.
pub struct CsvSink {
    header: &'static str,
    rows: Vec<String>,
}

impl CsvSink {
    /// Creates a sink with the given header line (comma-separated).
    pub fn new(header: &'static str) -> Self {
        CsvSink { header, rows: Vec::new() }
    }

    /// Appends one row (already comma-separated; the caller guarantees the
    /// fields contain no commas — all emitters use names and numbers).
    pub fn push(&mut self, row: String) {
        self.rows.push(row);
    }

    /// Writes to `path` when `--csv <path>` was passed; otherwise a no-op.
    pub fn write_if_requested(&self) {
        if let Some(path) = csv_path() {
            let mut out = String::with_capacity(self.rows.len() * 32);
            out.push_str(self.header);
            out.push('\n');
            for r in &self.rows {
                out.push_str(r);
                out.push('\n');
            }
            match std::fs::write(&path, out) {
                Ok(()) => eprintln!("wrote {} CSV rows to {path}", self.rows.len()),
                Err(e) => eprintln!("failed to write {path}: {e}"),
            }
        }
    }
}

/// The seed set honoring `--quick`.
pub fn seeds() -> Vec<u64> {
    if quick_mode() {
        SEEDS[..2].to_vec()
    } else {
        SEEDS.to_vec()
    }
}

/// Prints a markdown-style table row.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let mut line = String::from("|");
    for (cell, w) in cells.iter().zip(widths) {
        line.push_str(&format!(" {cell:>w$} |", w = w));
    }
    println!("{line}");
}

/// Prints a table header with a separator line.
pub fn print_header(cells: &[&str], widths: &[usize]) {
    print_row(&cells.iter().map(|s| s.to_string()).collect::<Vec<_>>(), widths);
    let mut line = String::from("|");
    for w in widths {
        line.push_str(&format!("{}|", "-".repeat(w + 2)));
    }
    println!("{line}");
}

/// Formats a score to the 3 decimals the paper's tables use.
pub fn fmt_score(x: f64) -> String {
    format!("{x:.3}")
}

/// Number of cores available to this process — recorded in the benchmark
/// JSON so a ~1.0 parallel speedup on a single-core box reads as expected
/// behavior, not a regression.
pub fn available_cores() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Median wall-clock milliseconds over `runs` executions (the first-run
/// warm-up is included in the sample set; the median is robust to it).
pub fn median_ms(runs: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let start = std::time::Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// The value following `--out`, or `default`: where a `bench_*` binary
/// writes its JSON results.
pub fn out_path(default: &str) -> String {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| default.to_string())
}

/// The shared tail of every `bench_*` binary: writes the JSON results to
/// `path`, echoes them on stdout, and notes the destination on stderr.
pub fn write_bench_json(path: &str, json: &str) {
    std::fs::write(path, json).expect("write benchmark results");
    print!("{json}");
    eprintln!("wrote {path}");
}

/// The synthetic shop relation of `tests/index_differential.rs` and
/// `tests/parallel_determinism.rs` (5 000 rows in the full protocol):
/// high-cardinality text columns with planted City→Zip / Zip→City
/// dependencies, shared by `bench_index` and `bench_obs`.
pub fn synthetic_shops(n: usize) -> renuver_data::Relation {
    use renuver_data::{AttrType, Relation, Schema, Value};
    let schema = Schema::new([
        ("Name", AttrType::Text),
        ("City", AttrType::Text),
        ("Zip", AttrType::Text),
        ("Class", AttrType::Int),
    ])
    .unwrap();
    let rows: Vec<Vec<Value>> = (0..n)
        .map(|i| {
            let city_id = i % 40;
            vec![
                Value::from(format!("Shop-{:04}", i % 800).as_str()),
                Value::from(format!("City{city_id:02}").as_str()),
                Value::from(format!("9{:04}", city_id * 7).as_str()),
                Value::Int((i % 9) as i64),
            ]
        })
        .collect();
    Relation::new(schema, rows).unwrap()
}

/// Relation for the parallel-speedup benchmarks: `n` rows drawing a text
/// column from `k` distinct ~15-char values (plus an int column), so the
/// [`renuver_distance::DistanceOracle`] build is dominated by the O(k²)
/// Levenshtein matrix fill the parallel layer distributes.
pub fn parallel_fixture(n: usize, k: usize) -> renuver_data::Relation {
    use renuver_data::{AttrType, Relation, Schema, Value};
    let schema =
        Schema::new([("Label", AttrType::Text), ("Group", AttrType::Int)]).unwrap();
    let rows: Vec<Vec<Value>> = (0..n)
        .map(|i| {
            let v = i % k;
            vec![
                Value::from(format!("entry-{v:04}-{:04}", (v * 7919) % 10_000).as_str()),
                Value::Int((i % 17) as i64),
            ]
        })
        .collect();
    Relation::new(schema, rows).unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discovery_produces_rfds_for_every_dataset() {
        for ds in Dataset::all() {
            let set = rfds_for(ds, 3.0);
            assert!(!set.is_empty(), "{} produced no RFDs", ds.name());
        }
    }

    #[test]
    fn rfd_count_grows_with_limit_on_restaurant() {
        let low = rfds_for(Dataset::Restaurant, 3.0).len();
        let high = rfds_for(Dataset::Restaurant, 9.0).len();
        assert!(high >= low, "low={low} high={high}");
    }

    #[test]
    fn score_formatting() {
        assert_eq!(fmt_score(0.4756), "0.476");
    }
}
