//! Beyond the paper: robustness to the **missingness mechanism**.
//!
//! The paper's evaluation injects uniformly at random (MCAR). Real data
//! loses values systematically — a source system that never records a
//! field (column-concentrated, MAR-style) or drops extreme readings
//! (value-biased, MNAR). This experiment reruns the Figure 3 comparison
//! under all three mechanisms on Restaurant (Phone column) and Glass
//! (highest-variance oxide), at 3% missing.
//!
//! Expected: dependency-driven imputation degrades gracefully under
//! column-concentrated loss (donor attributes stay intact), while MNAR
//! hurts everyone — but RENUVER's verification keeps precision ahead.

use renuver_baselines::{DerandConfig, GreyKnnConfig, HolocleanConfig};
use renuver_bench::{fmt_score, print_header, print_row, rfds_for, seeds, CsvSink, DATA_SEED};
use renuver_core::RenuverConfig;
use renuver_datasets::Dataset;
use renuver_dc::{discover_dcs, DcDiscoveryConfig};
use renuver_eval::sweep::Sweep;
use renuver_eval::{
    DerandImputer, GreyKnnImputer, HolocleanImputer, Imputer, InjectionPattern, RenuverImputer,
};

fn main() {
    let seeds = seeds();
    let mut csv = CsvSink::new("dataset,approach,pattern,recall,precision,f1");
    println!(
        "Robustness to the missingness mechanism (3% missing, {} seeds)\n",
        seeds.len()
    );
    for (ds, biased_attr) in [(Dataset::Restaurant, "Phone"), (Dataset::Glass, "Ca")] {
        let rel = ds.relation(DATA_SEED);
        let rules = ds.rules();
        let rfds = rfds_for(ds, 15.0);
        let dcs = discover_dcs(&rel, &DcDiscoveryConfig::default());
        let attr = rel.schema().require(biased_attr).expect("known attribute");

        let mut imputers: Vec<Box<dyn Imputer>> = vec![
            Box::new(RenuverImputer::new(RenuverConfig::default(), rfds.clone())),
            Box::new(DerandImputer::new(DerandConfig::default(), rfds.clone())),
            Box::new(HolocleanImputer::new(HolocleanConfig::default(), dcs)),
        ];
        if ds == Dataset::Glass {
            imputers.push(Box::new(GreyKnnImputer::new(GreyKnnConfig::default())));
        }
        let patterns = [
            ("MCAR", InjectionPattern::Mcar),
            (
                "MNAR",
                InjectionPattern::ValueBiased { attr, bias: 8.0 },
            ),
            ("column", InjectionPattern::Columns(vec![attr])),
        ];
        let cells = Sweep {
            relation: &rel,
            rules: &rules,
            imputers: &imputers,
            patterns: &patterns,
            rates: &[0.03],
            seeds: &seeds,
        }
        .run();

        println!("== {} (biased attribute: {biased_attr}) ==", ds.name());
        let widths = [10, 8, 8, 10, 8];
        print_header(&["approach", "pattern", "recall", "precision", "F1"], &widths);
        for cell in &cells {
            csv.push(format!(
                "{},{},{},{:.4},{:.4},{:.4}",
                ds.name(),
                cell.imputer,
                cell.pattern,
                cell.outcome.scores.recall,
                cell.outcome.scores.precision,
                cell.outcome.scores.f1
            ));
            print_row(
                &[
                    cell.imputer.clone(),
                    cell.pattern.clone(),
                    fmt_score(cell.outcome.scores.recall),
                    fmt_score(cell.outcome.scores.precision),
                    fmt_score(cell.outcome.scores.f1),
                ],
                &widths,
            );
        }
        println!();
    }
    csv.write_if_requested();
}
