//! Reproduces **Figure 2**: RENUVER's precision, recall, and F1-measure on
//! Glass, Bridges, Cars, and Restaurant, varying the maximum RHS distance
//! threshold (limits {3, 6, 9, 12, 15}) and the missing rate (1%–5%),
//! averaged over five seeded injections per rate.
//!
//! Each dataset prints three blocks (recall / precision / F1), one row per
//! threshold limit and one column per missing rate — the data behind the
//! paper's twelve sub-plots 2a–2l.

use renuver_bench::{fmt_score, print_header, print_row, rfds_for, seeds, CsvSink, DATA_SEED, MISSING_RATES, THRESHOLD_LIMITS};
use renuver_core::RenuverConfig;
use renuver_datasets::Dataset;
use renuver_eval::{average_scores, run_variants_parallel as run_variants, RenuverImputer};

fn main() {
    let seeds = seeds();
    let mut csv = CsvSink::new("dataset,limit,rate,recall,precision,f1");
    println!(
        "Figure 2: RENUVER by max RHS distance threshold x missing rate \
         ({} seeds per cell)\n",
        seeds.len()
    );
    for ds in Dataset::all() {
        let rel = ds.relation(DATA_SEED);
        let rules = ds.rules();
        println!("== {} ==", ds.name());
        // metric -> threshold -> rate matrix.
        let mut tables: Vec<(&str, Vec<Vec<f64>>)> = vec![
            ("Recall", Vec::new()),
            ("Precision", Vec::new()),
            ("F1-measure", Vec::new()),
        ];
        for &limit in &THRESHOLD_LIMITS {
            let imputer = RenuverImputer::new(RenuverConfig::default(), rfds_for(ds, limit));
            let mut recall_row = Vec::new();
            let mut precision_row = Vec::new();
            let mut f1_row = Vec::new();
            for &rate in &MISSING_RATES {
                let avg = average_scores(&run_variants(&rel, &rules, &imputer, rate, &seeds));
                csv.push(format!(
                    "{},{limit},{rate},{:.4},{:.4},{:.4}",
                    ds.name(),
                    avg.scores.recall,
                    avg.scores.precision,
                    avg.scores.f1
                ));
                recall_row.push(avg.scores.recall);
                precision_row.push(avg.scores.precision);
                f1_row.push(avg.scores.f1);
            }
            tables[0].1.push(recall_row);
            tables[1].1.push(precision_row);
            tables[2].1.push(f1_row);
        }
        let widths = [10, 7, 7, 7, 7, 7];
        for (metric, rows) in &tables {
            println!("-- {metric} --");
            print_header(&["thr \\ rate", "1%", "2%", "3%", "4%", "5%"], &widths);
            for (i, row) in rows.iter().enumerate() {
                let mut cells = vec![format!("thr={}", THRESHOLD_LIMITS[i] as i64)];
                cells.extend(row.iter().map(|&x| fmt_score(x)));
                print_row(&cells, &widths);
            }
            println!();
        }
    }
    println!(
        "Paper shape: recall rises with the threshold limit while precision \
         falls (Bridges, Restaurant); Glass is threshold-insensitive; Cars \
         favors low limits on the precision/recall trade-off."
    );
    csv.write_if_requested();
}
