//! Reproduces **Figure 1**: the paper's worked example of one RENUVER run
//! on the Table 2 Restaurant sample — pre-processing (key-RFD filtering,
//! r̂ extraction), RFD_c selection (threshold clusters for t7[Phone]), and
//! the imputation walk (candidates t3/t2, φ7's veto, the accepted value).
//!
//! Every number printed is computed by the library, not hard-coded; the
//! integration test `tests/paper_examples.rs` asserts the same facts.

use renuver_core::{Renuver, RenuverConfig};
use renuver_data::csv;
use renuver_distance::{DistanceOracle, DistancePattern};
use renuver_rfd::check::is_key;
use renuver_rfd::RfdSet;

fn main() {
    // Table 2 (the Address column is omitted in the paper's sample too).
    let rel = csv::read_str(
        "Name:text,City:text,Phone:text,Type:text,Class:int\n\
         Granita,Malibu,310/456-0488,Californian,6\n\
         Chinois Main,LA,310-392-9025,French,5\n\
         Citrus,Los Angeles,213/857-0034,Californian,6\n\
         Citrus,Los Angeles,,Californian,6\n\
         Fenix,Hollywood,213/848-6677,,5\n\
         Fenix Argyle,,213/848-6677,French (new),5\n\
         C. Main,Los Angeles,,French,5\n",
    )
    .unwrap();
    println!("Table 2 — the Restaurant sample:\n{rel}");

    // Figure 1's Σ = {φ1 … φ7}.
    let sigma = RfdSet::from_text(
        "Name(<=8), Phone(<=0), Class(<=1) -> Type(<=0)\n\
         Class(<=0) -> Type(<=5)\n\
         City(<=2) -> Phone(<=2)\n\
         Name(<=4) -> Phone(<=1)\n\
         Name(<=8), Phone(<=0) -> City(<=9)\n\
         Name(<=6), City(<=9) -> Phone(<=0)\n\
         Phone(<=1) -> Class(<=0)\n",
        rel.schema(),
    )
    .unwrap();

    // (a) Pre-processing.
    println!("(a) pre-processing");
    println!(
        "    incomplete tuples r^: {:?}",
        rel.incomplete_rows().iter().map(|r| format!("t{}", r + 1)).collect::<Vec<_>>()
    );
    for (i, rfd) in sigma.iter().enumerate() {
        println!(
            "    φ{}: {}  [{}]",
            i + 1,
            rfd.display(rel.schema()),
            if is_key(&rel, rfd) { "key — dropped from Σ'" } else { "non-key" }
        );
    }

    // (b) RFD selection for t7[Phone].
    let phone = rel.schema().require("Phone").unwrap();
    println!("\n(b) RFD selection for t7[Phone] — clusters by RHS threshold:");
    for cluster in sigma.clusters_for(phone) {
        let members: Vec<String> = cluster
            .rfds
            .iter()
            .map(|&i| format!("φ{}", i + 1))
            .collect();
        println!("    ρ^{} = {}", cluster.rhs_threshold, members.join(", "));
    }

    // (c) Candidates for t7[Phone] under φ6 (the ρ⁰ cluster).
    println!("\n(c) imputing t7[Phone]");
    let oracle = DistanceOracle::build(&rel, 100);
    let _ = &oracle;
    for donor in [1usize, 2] {
        let p = DistancePattern::between_rows(&rel, donor, 6);
        println!(
            "    p(t{}, t7) = {}  →  dist over {{Name, City}} = {}",
            donor + 1,
            p,
            p.mean_over(&[0, 1]).map(|d| d.to_string()).unwrap_or("_".into())
        );
    }

    // The full run, with provenance.
    let result = Renuver::new(RenuverConfig::default()).impute(&rel, &sigma);
    for ic in &result.imputed {
        println!(
            "    t{}[{}] <- {:?} (donor t{}, distance {}, via {})",
            ic.cell.row + 1,
            rel.schema().name(ic.cell.col),
            ic.value.render(),
            ic.donor_row + 1,
            ic.distance,
            ic.via.display(rel.schema()),
        );
    }
    println!(
        "    candidates rejected by verification: {}",
        result.stats.verification_failures
    );
    println!("\nresult:\n{}", result.relation);
    println!(
        "The paper's narrative: t3's phone (distance 3) is vetoed by \
         φ7: Phone(≤1) → Class(≤0) — classes 6 vs 5 — and t2's phone \
         (distance 7.5) is accepted."
    );
}
