//! Reproduces **Figure 3**: comparative evaluation by missing rate.
//!
//! - Figures 3a–3c: RENUVER vs Derand vs Holoclean on **Restaurant**
//!   (recall, precision, F1), RFD threshold limit 15.
//! - Figures 3d–3f: the same plus the numeric-only **kNN** on **Glass**,
//!   RFD threshold limit 15.
//!
//! Every approach sees the same injected datasets (paper: "All
//! experimental sessions were performed on the same sets of missing
//! values"); Holoclean consumes automatically discovered denial
//! constraints, and both dependency-driven approaches share one RFD set.

use renuver_bench::{fmt_score, print_header, print_row, rfds_for, seeds, CsvSink, DATA_SEED, MISSING_RATES};
use renuver_baselines::{DerandConfig, GreyKnnConfig, HolocleanConfig};
use renuver_core::RenuverConfig;
use renuver_datasets::Dataset;
use renuver_dc::{discover_dcs, DcDiscoveryConfig};
use renuver_eval::{
    average_scores, run_variants_parallel as run_variants, DerandImputer, GreyKnnImputer, HolocleanImputer, Imputer,
    RenuverImputer,
};

fn main() {
    let seeds = seeds();
    let mut csv = CsvSink::new("dataset,approach,rate,recall,precision,f1");
    println!(
        "Figure 3: comparative evaluation by missing rate ({} seeds per cell)\n",
        seeds.len()
    );
    for (ds, with_knn, fig) in [
        (Dataset::Restaurant, false, "3a-3c"),
        (Dataset::Glass, true, "3d-3f"),
    ] {
        let rel = ds.relation(DATA_SEED);
        let rules = ds.rules();
        let rfds = rfds_for(ds, 15.0);
        let dcs = discover_dcs(&rel, &DcDiscoveryConfig::default());
        println!(
            "== {} (Figures {fig}) — {} RFDs, {} DCs ==",
            ds.name(),
            rfds.len(),
            dcs.len()
        );
        let mut imputers: Vec<Box<dyn Imputer>> = vec![
            Box::new(RenuverImputer::new(RenuverConfig::default(), rfds.clone())),
            Box::new(DerandImputer::new(DerandConfig::default(), rfds.clone())),
            Box::new(HolocleanImputer::new(HolocleanConfig::default(), dcs)),
        ];
        if with_knn {
            imputers.push(Box::new(GreyKnnImputer::new(GreyKnnConfig::default())));
        }

        // One imputation grid, printed three ways.
        let mut grid: Vec<(String, Vec<renuver_eval::Scores>)> = Vec::new();
        for imp in &imputers {
            let mut row = Vec::new();
            for &rate in &MISSING_RATES {
                let avg =
                    average_scores(&run_variants(&rel, &rules, imp.as_ref(), rate, &seeds));
                csv.push(format!(
                    "{},{},{rate},{:.4},{:.4},{:.4}",
                    ds.name(),
                    imp.name(),
                    avg.scores.recall,
                    avg.scores.precision,
                    avg.scores.f1
                ));
                row.push(avg.scores);
            }
            grid.push((imp.name().to_owned(), row));
        }
        for metric in ["Recall", "Precision", "F1-measure"] {
            println!("-- {metric} --");
            let widths = [10, 7, 7, 7, 7, 7];
            print_header(&["approach", "1%", "2%", "3%", "4%", "5%"], &widths);
            for (name, row) in &grid {
                let mut cells = vec![name.clone()];
                for scores in row {
                    let v = match metric {
                        "Recall" => scores.recall,
                        "Precision" => scores.precision,
                        _ => scores.f1,
                    };
                    cells.push(fmt_score(v));
                }
                print_row(&cells, &widths);
            }
            println!();
        }
    }
    println!(
        "Paper shape: RENUVER leads every metric; its precision stays above \
         ~0.8 while Derand peaks near 0.55 and Holoclean near 0.47; on \
         Glass the margins widen and Derand collapses."
    );
    csv.write_if_requested();
}
