//! Measures what structured tracing costs — a full imputation run with the
//! disabled tracer vs a fresh enabled tracer per run — and writes the
//! results to `BENCH_obs.json`.
//!
//! Run with `cargo run -p renuver-bench --release --bin bench_obs`
//! (`--quick` shrinks the fixture, `--out <path>` overrides the output
//! file). The fixture is the 5 000-row synthetic shop relation of the
//! differential suites. Two claims are checked here:
//!
//! * the **disabled** tracer is the default configuration, so the plain
//!   run *is* the production path — its time is the baseline;
//! * an **enabled** tracer (which also turns on per-cell explain
//!   computation: LHS distance vectors, runner-up margins) should cost at
//!   most a few percent; `overhead_pct` records the measured figure and
//!   the budget in DESIGN.md is 5%.
//!
//! The binary also asserts the traced run's decisions are bit-identical to
//! the plain run's — tracing observes the pipeline, it never steers it.

use renuver_bench::{
    available_cores, median_ms, out_path, quick_mode, synthetic_shops, write_bench_json,
};
use renuver_core::{Renuver, RenuverConfig};
use renuver_eval::inject;
use renuver_obs::Tracer;
use renuver_rfd::RfdSet;

fn main() {
    let cores = available_cores();
    let runs = if quick_mode() { 3 } else { 7 };
    let n = if quick_mode() { 1_000 } else { 5_000 };
    let rel = synthetic_shops(n);
    // The tight-threshold set of `bench_index`: the discovery-realistic
    // regime, where per-cell work (and thus per-cell tracing) dominates.
    let sigma = RfdSet::from_text(
        "City(<=0) -> Zip(<=0)\n\
         Zip(<=0) -> City(<=3)\n\
         Name(<=1) -> City(<=3)\n\
         Zip(<=0) -> Class(<=8)",
        rel.schema(),
    )
    .unwrap();
    let (incomplete, _truth) = inject(&rel, 0.002, 23);

    // Single-threaded for stable medians: the per-thread trace buffers are
    // exercised by the determinism suites; here we want the overhead.
    let engine = |tracer: Tracer| {
        Renuver::new(RenuverConfig { parallelism: 1, tracer, ..RenuverConfig::default() })
    };

    let plain_ms =
        median_ms(runs, || drop(engine(Tracer::disabled()).impute(&incomplete, &sigma)));
    // A fresh tracer per run: an accumulating buffer would make later
    // samples pay for earlier runs' records.
    let traced_ms =
        median_ms(runs, || drop(engine(Tracer::enabled()).impute(&incomplete, &sigma)));

    // Correctness cross-check: tracing never changes a decision.
    let tracer = Tracer::enabled();
    let traced = engine(tracer.clone()).impute(&incomplete, &sigma);
    let plain = engine(Tracer::disabled()).impute(&incomplete, &sigma);
    assert_eq!(traced, plain, "tracing changed the run's decisions");
    let records = tracer.records().len();

    let overhead_pct = (traced_ms - plain_ms) / plain_ms * 100.0;
    let json = format!(
        "{{\n  \
         \"machine_cores\": {cores},\n  \
         \"runs_per_measurement\": {runs},\n  \
         \"rows\": {n},\n  \
         \"missing_cells\": {missing},\n  \
         \"trace_records\": {records},\n  \
         \"impute_end_to_end\": {{\n    \
         \"plain_ms\": {plain_ms:.3},\n    \
         \"traced_ms\": {traced_ms:.3},\n    \
         \"overhead_pct\": {overhead_pct:.2},\n    \
         \"overhead_budget_pct\": 5.0\n  }}\n}}\n",
        missing = incomplete.missing_count(),
    );

    write_bench_json(&out_path("BENCH_obs.json"), &json);
}
