//! Measures the threshold-tuning loop end to end — iterations to the
//! quality target, wall time per iteration, and the held-out score
//! trajectory — and writes the results to `BENCH_tune.json`.
//!
//! Run with `cargo run -p renuver-bench --release --bin bench_tune`
//! (`--quick` shrinks the fixture, `--out <path>` overrides the output
//! file). The fixture is the synthetic Restaurant relation (the
//! paper's fuzzy-duplicate regime: ~26% of listings appear twice with
//! spelling variants) under deliberately *tight* RFDs — `Name(≤0)`
//! finds only exact-duplicate donors, so the loop has real recall
//! headroom to climb and the trajectory is informative rather than
//! flat.
//!
//! Two figures matter here:
//!
//! * **iterations_to_target** — how many impute/score/adjust rounds the
//!   loop needs before held-out F1 crosses the target (null when it
//!   stops for another reason: convergence, iteration cap, budget);
//! * **mean_iteration_ms** — the unit cost a `/v1/tune` job pays per
//!   round, which bounds how long the single-flight slot stays busy.
//!
//! The run also re-checks determinism at the bench scale: a second tune
//! with the same seed must produce byte-identical thresholds.

use renuver_bench::{available_cores, out_path, quick_mode, write_bench_json};
use renuver_datasets::restaurant;
use renuver_rfd::RfdSet;
use renuver_tune::{tune, TuneConfig};

fn main() {
    let cores = available_cores();
    let quick = quick_mode();
    let n = if quick { 300 } else { restaurant::TUPLES };
    let rel = restaurant::generate_n(n, 11);
    // Tight where it hurts: the planted duplicate variants sit at Name
    // edit distance 2–6, so `Name(<=0)` starts recall-starved on
    // Phone/Address and tuning has real headroom. `Type -> Class` is an
    // exact planted FD: already perfect, a correct tune leaves it alone.
    let sigma = RfdSet::from_text(
        "Name(<=0) -> Phone(<=4)\n\
         Name(<=0) -> Address(<=6)\n\
         Phone(<=0) -> City(<=12)\n\
         Type(<=0) -> Class(<=0)",
        rel.schema(),
    )
    .unwrap();

    let cfg = TuneConfig {
        seed: 7,
        sample_rate: 0.1,
        max_iters: if quick { 4 } else { 10 },
        parallelism: 1,
        ..TuneConfig::default()
    };

    let start = std::time::Instant::now();
    let report = tune(&rel, &sigma, &cfg);
    let total_ms = start.elapsed().as_secs_f64() * 1e3;

    // Determinism at bench scale: same seed, same thresholds, exactly.
    let again = tune(&rel, &sigma, &cfg);
    assert_eq!(
        report.tuned.to_text(rel.schema()),
        again.tuned.to_text(rel.schema()),
        "same-seed tune runs diverged"
    );

    let iters = report.iterations.len();
    let mean_iteration_ms = if iters > 0 { total_ms / iters as f64 } else { 0.0 };
    let to_target = if report.stop.label() == "target" { iters.to_string() } else { "null".into() };

    let mut trajectory = String::new();
    for it in &report.iterations {
        if !trajectory.is_empty() {
            trajectory.push_str(",\n    ");
        }
        trajectory.push_str(&format!(
            "{{\"iter\": {}, \"precision\": {:.4}, \"recall\": {:.4}, \"f1\": {:.4}, \
             \"elapsed_ms\": {:.3}, \"candidates\": {}, \"moves\": {}}}",
            it.iter,
            it.scores.precision,
            it.scores.recall,
            it.scores.f1,
            it.elapsed.as_secs_f64() * 1e3,
            it.work.candidates_scored,
            it.moves.len(),
        ));
    }

    let json = format!(
        "{{\n  \
         \"machine_cores\": {cores},\n  \
         \"rows\": {n},\n  \
         \"rfds\": {rfds},\n  \
         \"masked_cells\": {masked},\n  \
         \"seed\": 7,\n  \
         \"target_f1\": {target:.2},\n  \
         \"stop\": \"{stop}\",\n  \
         \"iterations_run\": {iters},\n  \
         \"iterations_to_target\": {to_target},\n  \
         \"baseline_f1\": {base:.4},\n  \
         \"best_f1\": {best:.4},\n  \
         \"total_ms\": {total_ms:.3},\n  \
         \"mean_iteration_ms\": {mean_iteration_ms:.3},\n  \
         \"trajectory\": [\n    {trajectory}\n  ]\n}}\n",
        rfds = sigma.len(),
        masked = report.masked,
        target = cfg.target_f1,
        stop = report.stop.label(),
        base = report.baseline.f1,
        best = report.best_f1,
    );
    write_bench_json(&out_path("BENCH_tune.json"), &json);
}
