//! Developer tool: times all three metadata-driven approaches on the
//! largest Physician rung (10 359 tuples, Table 5's stress point).

use renuver_bench::discovery_config;
use renuver_baselines::{Derand, DerandConfig, Holoclean, HolocleanConfig};
use renuver_core::{Renuver, RenuverConfig};
use renuver_datasets::physician;
use renuver_dc::{discover_dcs, DcDiscoveryConfig};
use renuver_eval::inject;
use renuver_rfd::discovery::discover;
use std::time::Instant;

fn main() {
    let rel = physician::generate(10359, 42);
    let t = Instant::now();
    let rfds = discover(&rel, &discovery_config(3.0));
    println!("rfd discovery: {:?} ({} RFDs)", t.elapsed(), rfds.len());
    let t = Instant::now();
    let dcs = discover_dcs(&rel, &DcDiscoveryConfig::default());
    println!("dc discovery: {:?} ({} DCs)", t.elapsed(), dcs.len());
    let (inc, _) = inject(&rel, 0.01, 1);
    let t = Instant::now();
    let res = Renuver::new(RenuverConfig::default()).impute(&inc, &rfds);
    println!("renuver: {:?} (imputed {}/{})", t.elapsed(), res.stats.imputed, res.stats.missing_total);
    let t = Instant::now();
    let _ = Derand::new(DerandConfig::default()).impute(&inc, &rfds);
    println!("derand: {:?}", t.elapsed());
    let t = Instant::now();
    let _ = Holoclean::new(HolocleanConfig::default()).impute(&inc, &dcs);
    println!("holoclean: {:?}", t.elapsed());
}
