//! Developer tool: times discovery and one RENUVER imputation run per
//! benchmark dataset at threshold limit 15 and 5% missing. Not part of a
//! paper experiment; useful for spotting performance regressions quickly.

use renuver_bench::{rfds_for, DATA_SEED};
use renuver_core::{Renuver, RenuverConfig};
use renuver_datasets::Dataset;
use renuver_eval::inject;
use std::time::Instant;

fn main() {
    for ds in [Dataset::Restaurant, Dataset::Cars, Dataset::Glass, Dataset::Bridges] {
        let rel = ds.relation(DATA_SEED);
        let t0 = Instant::now();
        let rfds = rfds_for(ds, 15.0);
        let t_disc = t0.elapsed();
        let (inc, _) = inject(&rel, 0.05, 1);
        let t1 = Instant::now();
        let res = Renuver::new(RenuverConfig::default()).impute(&inc, &rfds);
        println!("{}: discovery {:?}, impute {:?}, rfds={}, missing={}, imputed={}, verif={}, cand={}",
            ds.name(), t_disc, t1.elapsed(), rfds.len(), res.stats.missing_total,
            res.stats.imputed, res.stats.verifications, res.stats.candidates_scored);
    }
}
