//! Measures what the similarity index buys over the naive reference scans
//! — candidate generation and end-to-end imputation at `parallelism: 1` —
//! and writes the results to `BENCH_index.json`.
//!
//! Run with `cargo run -p renuver-bench --release --bin bench_index`
//! (`--quick` shrinks the fixture, `--out <path>` overrides the output
//! file). Everything is measured single-threaded on purpose: the index is
//! an *algorithmic* improvement (inverted-list lookups instead of O(n)
//! distance checks per query), so its speedup must not be conflated with
//! the thread-pool speedups `bench_parallel` reports.
//!
//! Two RFD sets run over the same relation:
//!
//! * the **headline** set uses tight thresholds — the regime RFD
//!   discovery actually produces and the index is built for, where the
//!   q-gram/value filters are selective;
//! * the **loose** set (the one `tests/index_differential.rs` pins for
//!   correctness) has thresholds so wide that true neighborhoods cover
//!   much of the relation. There the selectivity cutoff makes the index
//!   decline and fall back to scans, so its speedup hovers near 1× by
//!   design — recorded here to document that regime, not to win it.

use renuver_bench::{median_ms, out_path, quick_mode, synthetic_shops, write_bench_json};
use renuver_core::{
    find_candidate_tuples, find_candidate_tuples_with, IndexMode, Renuver, RenuverConfig,
};
use renuver_data::Relation;
use renuver_distance::{DistanceOracle, SimilarityIndex};
use renuver_eval::inject;
use renuver_rfd::{Rfd, RfdSet};

/// Every missing cell with a non-empty cluster — the per-cell loop of
/// Algorithm 2 — paired with its cluster under `sigma`.
fn cluster_cells<'a>(rel: &Relation, sigma: &'a RfdSet) -> Vec<(usize, usize, Vec<&'a Rfd>)> {
    (0..rel.len())
        .flat_map(|row| (0..rel.arity()).map(move |attr| (row, attr)))
        .filter(|&(row, attr)| rel.is_missing(row, attr))
        .map(|(row, attr)| {
            let cluster: Vec<&Rfd> = sigma.iter().filter(|r| r.rhs_attr() == attr).collect();
            (row, attr, cluster)
        })
        .filter(|(_, _, cluster)| !cluster.is_empty())
        .collect()
}

/// Candidate generation over all cluster cells, scan vs indexed. Returns
/// `(queries, scan_ms, indexed_ms)`.
fn measure_candidates(
    rel: &Relation,
    sigma: &RfdSet,
    oracle: &DistanceOracle,
    index: &SimilarityIndex,
    pool: &rayon::ThreadPool,
    runs: usize,
) -> (usize, f64, f64) {
    let cells = cluster_cells(rel, sigma);
    let scan = median_ms(runs, || {
        pool.install(|| {
            for (row, attr, cluster) in &cells {
                drop(find_candidate_tuples(oracle, rel, *row, *attr, cluster));
            }
        })
    });
    let indexed = median_ms(runs, || {
        pool.install(|| {
            for (row, attr, cluster) in &cells {
                drop(find_candidate_tuples_with(oracle, Some(index), rel, *row, *attr, cluster));
            }
        })
    });
    (cells.len(), scan, indexed)
}

fn main() {
    let runs = if quick_mode() { 3 } else { 7 };
    let n = if quick_mode() { 1_000 } else { 5_000 };
    let rel = synthetic_shops(n);
    // Headline: discovery-realistic tight thresholds (selective filters).
    let tight = RfdSet::from_text(
        "City(<=0) -> Zip(<=0)\n\
         Zip(<=0) -> City(<=3)\n\
         Name(<=1) -> City(<=3)\n\
         Zip(<=0) -> Class(<=8)",
        rel.schema(),
    )
    .unwrap();
    // Secondary: the loose thresholds the differential suite pins.
    let loose = RfdSet::from_text(
        "City(<=0) -> Zip(<=0)\n\
         Zip(<=1) -> City(<=3)\n\
         Name(<=3) -> City(<=6)\n\
         Zip(<=0) -> Class(<=8)",
        rel.schema(),
    )
    .unwrap();
    let (incomplete, _truth) = inject(&rel, 0.002, 23);

    // Single-threaded pool: the scan paths fall through to rayon, and the
    // point here is the algorithmic gap, not the core count.
    let pool = rayon::ThreadPoolBuilder::new().num_threads(1).build().unwrap();

    let oracle = pool.install(|| DistanceOracle::build(&incomplete, 3_000));
    let index_build_ms =
        median_ms(runs, || drop(pool.install(|| SimilarityIndex::build(&incomplete, &oracle))));
    let index = pool.install(|| SimilarityIndex::build(&incomplete, &oracle));

    let (queries, cand_scan, cand_indexed) =
        measure_candidates(&incomplete, &tight, &oracle, &index, &pool, runs);
    let (loose_queries, loose_scan, loose_indexed) =
        measure_candidates(&incomplete, &loose, &oracle, &index, &pool, runs);

    // End-to-end run, index construction included.
    let engine = |mode: IndexMode| {
        Renuver::new(RenuverConfig { parallelism: 1, index_mode: mode, ..RenuverConfig::default() })
    };
    let impute_scan = median_ms(runs, || drop(engine(IndexMode::Scan).impute(&incomplete, &tight)));
    let impute_indexed =
        median_ms(runs, || drop(engine(IndexMode::Indexed).impute(&incomplete, &tight)));

    // Correctness cross-check while we're here (the differential suite is
    // the real harness; this catches a stale build).
    for sigma in [&tight, &loose] {
        assert_eq!(
            engine(IndexMode::Scan).impute(&incomplete, sigma),
            engine(IndexMode::Indexed).impute(&incomplete, sigma),
            "indexed and scan runs diverged"
        );
    }

    let json = format!(
        "{{\n  \
         \"rows\": {n},\n  \
         \"runs_per_measurement\": {runs},\n  \
         \"parallelism\": 1,\n  \
         \"index_build_ms\": {index_build_ms:.3},\n  \
         \"candidate_generation\": {{\n    \
         \"queries\": {queries},\n    \
         \"scan_ms\": {cand_scan:.3},\n    \
         \"indexed_ms\": {cand_indexed:.3},\n    \
         \"speedup\": {:.3}\n  }},\n  \
         \"candidate_generation_loose_thresholds\": {{\n    \
         \"queries\": {loose_queries},\n    \
         \"scan_ms\": {loose_scan:.3},\n    \
         \"indexed_ms\": {loose_indexed:.3},\n    \
         \"speedup\": {:.3}\n  }},\n  \
         \"impute_end_to_end\": {{\n    \
         \"scan_ms\": {impute_scan:.3},\n    \
         \"indexed_ms\": {impute_indexed:.3},\n    \
         \"speedup\": {:.3}\n  }}\n}}\n",
        cand_scan / cand_indexed,
        loose_scan / loose_indexed,
        impute_scan / impute_indexed,
    );

    write_bench_json(&out_path("BENCH_index.json"), &json);
}
