//! Measures the parallel-layer speedups (1 thread vs all cores) on the two
//! headline hot paths — distance-oracle construction and end-to-end
//! imputation — and writes the results to `BENCH_parallel.json`.
//!
//! Run with `cargo run -p renuver-bench --release --bin bench_parallel`
//! (`--quick` shrinks the fixtures, `--out <path>` overrides the output
//! file). Speedups are reported against the machine's measured wall-clock
//! medians; `machine_cores` records how many cores were actually available,
//! since the expected speedup on a single-core machine is ~1.0.

use renuver_bench::{
    available_cores, median_ms, out_path, parallel_fixture, quick_mode, rfds_for,
    write_bench_json, DATA_SEED,
};
use renuver_core::{Renuver, RenuverConfig};
use renuver_datasets::Dataset;
use renuver_distance::DistanceOracle;
use renuver_eval::inject;

fn main() {
    let cores = available_cores();
    let runs = if quick_mode() { 3 } else { 7 };
    let (n, k) = if quick_mode() { (1_000, 300) } else { (3_000, 600) };

    // Hot path 1: the O(k²) Levenshtein matrix fill of the oracle build.
    let rel = parallel_fixture(n, k);
    let seq_pool = rayon::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
    let par_pool = rayon::ThreadPoolBuilder::new().num_threads(0).build().unwrap();
    let oracle_seq =
        median_ms(runs, || drop(seq_pool.install(|| DistanceOracle::build(&rel, 3_000))));
    let oracle_par =
        median_ms(runs, || drop(par_pool.install(|| DistanceOracle::build(&rel, 3_000))));

    // Hot path 2: a full imputation run (donor scans + verification scans).
    let ds = Dataset::Restaurant;
    let data = ds.relation(DATA_SEED);
    let rfds = rfds_for(ds, 15.0);
    let (incomplete, _) = inject(&data, 0.03, 1);
    let engine_seq = Renuver::new(RenuverConfig { parallelism: 1, ..RenuverConfig::default() });
    let engine_par = Renuver::new(RenuverConfig { parallelism: 0, ..RenuverConfig::default() });
    let impute_seq = median_ms(runs, || drop(engine_seq.impute(&incomplete, &rfds)));
    let impute_par = median_ms(runs, || drop(engine_par.impute(&incomplete, &rfds)));

    // Correctness cross-check while we're here: identical outputs.
    assert_eq!(
        engine_seq.impute(&incomplete, &rfds),
        engine_par.impute(&incomplete, &rfds),
        "parallel and sequential runs diverged"
    );

    let json = format!(
        "{{\n  \
         \"machine_cores\": {cores},\n  \
         \"runs_per_measurement\": {runs},\n  \
         \"oracle_build\": {{\n    \
         \"rows\": {n},\n    \
         \"distinct_values\": {k},\n    \
         \"sequential_ms\": {oracle_seq:.3},\n    \
         \"parallel_ms\": {oracle_par:.3},\n    \
         \"speedup\": {:.3}\n  }},\n  \
         \"impute_end_to_end\": {{\n    \
         \"dataset\": \"{}\",\n    \
         \"missing_rate\": 0.03,\n    \
         \"sequential_ms\": {impute_seq:.3},\n    \
         \"parallel_ms\": {impute_par:.3},\n    \
         \"speedup\": {:.3}\n  }}\n}}\n",
        oracle_seq / oracle_par,
        ds.name(),
        impute_seq / impute_par,
    );

    write_bench_json(&out_path("BENCH_parallel.json"), &json);
}
