//! Reproduces **Table 5**: performance limits on the Physician dataset,
//! varying the number of tuples over {104, 208, 1036, 2072, 10359} at a
//! fixed 1% missing rate — per size: #RFDs, #DCs, and per approach the
//! qualitative metrics, wall time, and peak heap.
//!
//! Discovery runs per size with RFD threshold limit 3 (the paper's choice
//! for Physician). `--quick` stops the ladder at 1036 tuples.

use renuver_bench::{discovery_config, fmt_score, print_header, print_row, quick_mode, seeds};
use renuver_baselines::{DerandConfig, HolocleanConfig};
use renuver_core::RenuverConfig;
use renuver_datasets::physician;
use renuver_dc::{discover_dcs, DcDiscoveryConfig};
use renuver_eval::budget::{format_bytes, format_duration, TrackingAlloc};
use renuver_eval::{
    average_scores, run_variants, DerandImputer, HolocleanImputer, Imputer, RenuverImputer,
};
use renuver_rfd::discovery::discover;

#[global_allocator]
static ALLOC: TrackingAlloc = TrackingAlloc;

fn main() {
    let seeds = seeds();
    let sizes: Vec<usize> = if quick_mode() {
        physician::TABLE_5_SIZES[..3].to_vec()
    } else {
        physician::TABLE_5_SIZES.to_vec()
    };
    println!(
        "Table 5: performance limits on Physician (18 attributes), \
         1% missing, RFD limit 3, {} seeds\n",
        seeds.len()
    );
    let widths = [7, 7, 6, 10, 7, 9, 8, 10, 9];
    print_header(
        &["tuples", "#RFDs", "#DCs", "approach", "recall", "precision", "F1", "time", "memory"],
        &widths,
    );
    let rules = physician::rules();
    for &n in &sizes {
        let rel = physician::generate(n, 42);
        let rfds = discover(&rel, &discovery_config(3.0));
        let dcs = discover_dcs(&rel, &DcDiscoveryConfig::default());
        let imputers: Vec<Box<dyn Imputer>> = vec![
            Box::new(RenuverImputer::new(RenuverConfig::default(), rfds.clone())),
            Box::new(DerandImputer::new(DerandConfig::default(), rfds.clone())),
            Box::new(HolocleanImputer::new(HolocleanConfig::default(), dcs.clone())),
        ];
        for imp in &imputers {
            let avg = average_scores(&run_variants(&rel, &rules, imp.as_ref(), 0.01, &seeds));
            print_row(
                &[
                    n.to_string(),
                    rfds.len().to_string(),
                    dcs.len().to_string(),
                    imp.name().to_owned(),
                    fmt_score(avg.scores.recall),
                    fmt_score(avg.scores.precision),
                    fmt_score(avg.scores.f1),
                    format_duration(avg.elapsed),
                    format_bytes(avg.peak_bytes),
                ],
                &widths,
            );
        }
    }
    println!(
        "\nPaper shape: RENUVER and Holoclean scale to thousands of tuples \
         while Derand's conditional-expectation pass grows fastest; \
         Holoclean's co-occurrence tables dominate memory; RENUVER leads \
         the qualitative metrics at every size."
    );
}
