//! Measures what the Myers bit-parallel kernel and the batch-verification
//! cache buy over the scalar DP and the per-cell scans, and writes the
//! results to `BENCH_kernels.json`.
//!
//! Run with `cargo run -p renuver-bench --release --bin bench_kernels`
//! (`--quick` shrinks sample counts, `--out <path>` overrides the output
//! file). Three layers are measured, innermost out:
//!
//! * **kernel** — `levenshtein_scalar` (the O(n·m) row DP) vs
//!   `myers_levenshtein` (O(⌈m/64⌉·n) bit-vectors) on string pairs of
//!   64 / 256 / 1024 chars, plus the bounded variants at a paper-scale
//!   band. The binary asserts the ≥4× floor at 256 chars that CI smokes.
//! * **oracle matrix fill** — the k×k dictionary matrix that dominates
//!   pre-processing, hand-filled with the scalar kernel vs the dispatched
//!   one, on the long-text dictionary the end-to-end fixture uses.
//! * **impute_end_to_end** — a full run on a long-text relation with
//!   `batch_verify` off vs on (both single-threaded, both through the
//!   Myers-routed oracle), isolating what signature-sharing saves. The
//!   two runs are asserted identical — the speedup may never come from
//!   changed decisions.

use renuver_bench::{median_ms, out_path, quick_mode, write_bench_json};
use renuver_core::{Renuver, RenuverConfig};
use renuver_data::{AttrType, Relation, Schema, Value};
use renuver_distance::{levenshtein_scalar, myers_levenshtein, DistanceOracle};
use renuver_distance::functions::levenshtein_bounded_scalar;
use renuver_distance::levenshtein_bounded;
use renuver_rfd::RfdSet;

/// Deterministic 64-bit LCG — the bench must not depend on a seeded run
/// of the `rand` crate, and the pairs must be identical across machines.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// A string of `len` chars over a 20-letter alphabet with occasional
/// multi-byte chars, so the kernel's `Peq` map path and the UTF-8
/// pre-checks both participate.
fn random_string(rng: &mut Lcg, len: usize) -> String {
    const ALPHABET: [char; 20] = [
        'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h', 'i', 'j', 'k', 'l', 'm', 'n', 'o', 'p', 'q',
        'é', 'ü', 'α',
    ];
    (0..len).map(|_| ALPHABET[(rng.next() % 20) as usize]).collect()
}

/// `pairs` string pairs of `len` chars: half are mutated copies (~len/8
/// edits — the near-duplicate regime RFD thresholds select for), half are
/// independent strings (the far regime the bounded kernel rejects early).
fn make_pairs(rng: &mut Lcg, pairs: usize, len: usize) -> Vec<(String, String)> {
    (0..pairs)
        .map(|i| {
            let a = random_string(rng, len);
            let b = if i % 2 == 0 {
                let mut chars: Vec<char> = a.chars().collect();
                for _ in 0..len / 8 {
                    let at = (rng.next() as usize) % chars.len();
                    chars[at] = ['x', 'y', 'z'][(rng.next() % 3) as usize];
                }
                chars.into_iter().collect()
            } else {
                random_string(rng, len)
            };
            (a, b)
        })
        .collect()
}

/// Median ms to run `kernel` over every pair, with a checksum fold so the
/// calls cannot be optimized away.
fn measure_kernel(
    runs: usize,
    pairs: &[(String, String)],
    mut kernel: impl FnMut(&str, &str) -> usize,
) -> f64 {
    median_ms(runs, || {
        let mut acc = 0usize;
        for (a, b) in pairs {
            acc = acc.wrapping_add(kernel(a, b));
        }
        std::hint::black_box(acc);
    })
}

/// Long-text relation: 12 cities and 100 shop names of 40–64 chars, so
/// every distance the oracle computes goes through the multi-block Myers
/// path, and missing cells share `City` signatures heavily (the regime
/// the batch-verification cache serves).
fn long_text_relation(n: usize) -> Relation {
    let mut rng = Lcg(7);
    let cities: Vec<String> = (0..12).map(|_| random_string(&mut rng, 48)).collect();
    let zips: Vec<String> = (0..12).map(|_| random_string(&mut rng, 40)).collect();
    let names: Vec<String> = (0..100).map(|_| random_string(&mut rng, 64)).collect();
    let schema = Schema::new([
        ("Name", AttrType::Text),
        ("City", AttrType::Text),
        ("Zip", AttrType::Text),
        ("Class", AttrType::Int),
    ])
    .unwrap();
    let rows: Vec<Vec<Value>> = (0..n)
        .map(|i| {
            let c = i % 12;
            // Holes concentrate on Zip and Class — the columns the RFD
            // set can impute — at a combined ~3% of cells, so missing
            // cells share LHS signatures the way dirty real data does
            // (the same broken extractor hits the same column).
            vec![
                Value::from(names[i % 100].as_str()),
                Value::from(cities[c].as_str()),
                if i % 8 == 7 { Value::Null } else { Value::from(zips[c].as_str()) },
                if i % 8 == 3 { Value::Null } else { Value::Int((i % 9) as i64) },
            ]
        })
        .collect();
    Relation::new(schema, rows).unwrap()
}

fn main() {
    let runs = if quick_mode() { 3 } else { 7 };
    let pair_count = if quick_mode() { 48 } else { 192 };
    let mut rng = Lcg(42);

    // ---- kernel micro-bench: scalar DP vs Myers, three lengths --------
    let mut kernel_json = String::new();
    let mut speedup_256 = 0.0;
    for len in [64usize, 256, 1024] {
        let pairs = make_pairs(&mut rng, pair_count, len);
        let scalar_ms = measure_kernel(runs, &pairs, levenshtein_scalar);
        let myers_ms = measure_kernel(runs, &pairs, myers_levenshtein);
        let speedup = scalar_ms / myers_ms;
        if len == 256 {
            speedup_256 = speedup;
        }
        // Parity spot-check: the suite pins this exhaustively, but a
        // benchmark of a wrong kernel is worse than no benchmark.
        for (a, b) in pairs.iter().take(8) {
            assert_eq!(levenshtein_scalar(a, b), myers_levenshtein(a, b), "kernel mismatch");
        }
        kernel_json.push_str(&format!(
            "    \"len_{len}\": {{ \"pairs\": {pair_count}, \"scalar_ms\": {scalar_ms:.3}, \
             \"myers_ms\": {myers_ms:.3}, \"speedup\": {speedup:.3} }},\n"
        ));
    }
    assert!(
        speedup_256 >= 4.0,
        "Myers kernel speedup floor regressed: {speedup_256:.2}x at 256 chars (need >= 4x)"
    );

    // ---- bounded kernel: narrow and wide bands ------------------------
    // Band 8 on 256-char strings is the regime RFD thresholds produce.
    // There the Ukkonen band is already sub-quadratic and the dispatch
    // keeps it — the "speedup" documents drop-in parity, not a win. At
    // band 64 the band covers a quarter of the matrix and the dispatch
    // flips to Myers.
    let band_pairs = make_pairs(&mut rng, pair_count, 256);
    let mut bounded_json = String::new();
    for band in [8usize, 64] {
        let scalar_ms = measure_kernel(runs, &band_pairs, |a, b| {
            levenshtein_bounded_scalar(a, b, band).unwrap_or(band + 1)
        });
        let dispatched_ms = measure_kernel(runs, &band_pairs, |a, b| {
            levenshtein_bounded(a, b, band).unwrap_or(band + 1)
        });
        let speedup = scalar_ms / dispatched_ms;
        if band == 8 {
            assert!(
                speedup >= 0.8,
                "dispatched bounded kernel regressed at paper-scale bands: {speedup:.2}x"
            );
        }
        bounded_json.push_str(&format!(
            "    \"bounded_len_256_band_{band}\": {{ \"pairs\": {pair_count}, \
             \"scalar_ms\": {scalar_ms:.3}, \"dispatched_ms\": {dispatched_ms:.3}, \
             \"speedup\": {speedup:.3} }}"
        ));
        bounded_json.push_str(if band == 8 { ",\n" } else { "\n" });
    }

    // ---- oracle dictionary-matrix fill --------------------------------
    let n = if quick_mode() { 4_000 } else { 20_000 };
    let incomplete = long_text_relation(n);
    let dict: Vec<String> = (0..incomplete.len())
        .filter_map(|i| match incomplete.value(i, 0) {
            Value::Text(s) => Some(s.clone()),
            _ => None,
        })
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    let k = dict.len();
    let fill_scalar_ms = median_ms(runs, || {
        let mut acc = 0usize;
        for a in &dict {
            for b in &dict {
                acc = acc.wrapping_add(levenshtein_scalar(a, b));
            }
        }
        std::hint::black_box(acc);
    });
    let fill_dispatched_ms =
        median_ms(runs, || drop(DistanceOracle::build(&incomplete, 3_000)));

    // ---- end-to-end: batch verification off vs on ---------------------
    let sigma = RfdSet::from_text(
        "City(<=2) -> Zip(<=2)\n\
         Zip(<=2) -> City(<=4)\n\
         Name(<=6) -> City(<=8)\n\
         Zip(<=2) -> Class(<=8)",
        incomplete.schema(),
    )
    .unwrap();
    let engine = |batch: bool| {
        Renuver::new(RenuverConfig {
            parallelism: 1,
            batch_verify: batch,
            ..RenuverConfig::default()
        })
    };
    let impute_unbatched = median_ms(runs, || drop(engine(false).impute(&incomplete, &sigma)));
    let impute_batched = median_ms(runs, || drop(engine(true).impute(&incomplete, &sigma)));
    assert_eq!(
        engine(false).impute(&incomplete, &sigma),
        engine(true).impute(&incomplete, &sigma),
        "batched and unbatched runs diverged"
    );

    let json = format!(
        "{{\n  \
         \"runs_per_measurement\": {runs},\n  \
         \"parallelism\": 1,\n  \
         \"kernel\": {{\n\
         {kernel_json}\
         {bounded_json}  }},\n  \
         \"oracle_matrix_fill\": {{\n    \
         \"dictionary\": {k},\n    \
         \"scalar_ms\": {fill_scalar_ms:.3},\n    \
         \"dispatched_ms\": {fill_dispatched_ms:.3},\n    \
         \"speedup\": {:.3}\n  }},\n  \
         \"impute_end_to_end\": {{\n    \
         \"rows\": {n},\n    \
         \"unbatched_ms\": {impute_unbatched:.3},\n    \
         \"batched_ms\": {impute_batched:.3},\n    \
         \"speedup\": {:.3}\n  }}\n}}\n",
        fill_scalar_ms / fill_dispatched_ms,
        impute_unbatched / impute_batched,
    );

    write_bench_json(&out_path("BENCH_kernels.json"), &json);
}
