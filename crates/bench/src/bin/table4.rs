//! Reproduces **Table 4**: performance limits on the Restaurant dataset at
//! missing rates {5, 10, 20, 30, 40}% — recall, precision, F1, wall time,
//! and peak heap per approach (RENUVER, Derand, Holoclean).
//!
//! The paper enforces 48 h / 30 GB kill limits; this binary scales them to
//! a configurable per-run budget (default 600 s) and reports `TL` when an
//! approach exceeds it, mirroring the table's timeout entries.

use std::time::Duration;

use renuver_bench::{fmt_score, print_header, print_row, rfds_for, seeds, DATA_SEED};
use renuver_baselines::{DerandConfig, HolocleanConfig};
use renuver_core::RenuverConfig;
use renuver_datasets::Dataset;
use renuver_dc::{discover_dcs, DcDiscoveryConfig};
use renuver_eval::budget::{format_bytes, format_duration, TrackingAlloc};
use renuver_eval::{
    average_scores, run_variants, DerandImputer, HolocleanImputer, Imputer, RenuverImputer,
};

#[global_allocator]
static ALLOC: TrackingAlloc = TrackingAlloc;

/// Stress missing rates of Table 4.
const RATES: [f64; 5] = [0.05, 0.10, 0.20, 0.30, 0.40];

fn main() {
    let seeds = seeds();
    let budget = Duration::from_secs(600);
    let ds = Dataset::Restaurant;
    let rel = ds.relation(DATA_SEED);
    let rules = ds.rules();
    let rfds = rfds_for(ds, 15.0);
    let dcs = discover_dcs(&rel, &DcDiscoveryConfig::default());
    println!(
        "Table 4: performance limits on Restaurant, rates 5-40% \
         ({} RFDs, {} DCs, {} seeds, {:?} budget per run)\n",
        rfds.len(),
        dcs.len(),
        seeds.len(),
        budget
    );

    let imputers: Vec<Box<dyn Imputer>> = vec![
        Box::new(RenuverImputer::new(RenuverConfig::default(), rfds.clone())),
        Box::new(DerandImputer::new(DerandConfig::default(), rfds.clone())),
        Box::new(HolocleanImputer::new(HolocleanConfig::default(), dcs)),
    ];

    let widths = [10, 9, 7, 9, 8, 10, 9];
    print_header(
        &["approach", "missing", "recall", "precision", "F1", "time", "memory"],
        &widths,
    );
    for imp in &imputers {
        let mut over_budget = false;
        for &rate in &RATES {
            if over_budget {
                print_row(
                    &[
                        imp.name().to_owned(),
                        format!("{}%", (rate * 100.0) as u32),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "TL".into(),
                        "-".into(),
                    ],
                    &widths,
                );
                continue;
            }
            let outcomes = run_variants(&rel, &rules, imp.as_ref(), rate, &seeds);
            let avg = average_scores(&outcomes);
            print_row(
                &[
                    imp.name().to_owned(),
                    format!("{}%", (rate * 100.0) as u32),
                    fmt_score(avg.scores.recall),
                    fmt_score(avg.scores.precision),
                    fmt_score(avg.scores.f1),
                    format_duration(avg.elapsed),
                    format_bytes(avg.peak_bytes),
                ],
                &widths,
            );
            // Mirror the paper's kill limit: once a single run exceeds the
            // budget, larger rates are reported as TL.
            if avg.elapsed > budget {
                over_budget = true;
            }
        }
    }
    println!(
        "\nPaper shape: Holoclean is the fastest (few constraints to \
         process) but the least precise; Derand is orders of magnitude \
         slower than RENUVER and the first to hit the time limit; RENUVER \
         wins every qualitative metric with flat, modest memory."
    );
}
