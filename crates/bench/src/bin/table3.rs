//! Reproduces **Table 3**: per-dataset statistics — attribute and tuple
//! counts, the number of discovered RFDs at each threshold limit
//! {3, 6, 9, 12, 15}, and the number of injected missing values at each
//! missing rate 1%–5%.

use renuver_bench::{discovery_config, print_header, print_row, DATA_SEED, MISSING_RATES, THRESHOLD_LIMITS};
use renuver_datasets::Dataset;
use renuver_eval::inject;
use renuver_rfd::discovery::discover;

fn main() {
    println!("Table 3: details of the considered datasets (synthetic stand-ins)\n");
    let widths = [10, 6, 6, 8, 8, 8, 8, 8, 6, 6, 6, 6, 6];
    print_header(
        &[
            "Dataset", "Attrs", "Tuples", "thr=3", "thr=6", "thr=9", "thr=12",
            "thr=15", "1%", "2%", "3%", "4%", "5%",
        ],
        &widths,
    );
    for ds in Dataset::all() {
        let rel = ds.relation(DATA_SEED);
        let mut cells = vec![
            ds.name().to_string(),
            rel.arity().to_string(),
            rel.len().to_string(),
        ];
        for limit in THRESHOLD_LIMITS {
            let rfds = discover(&rel, &discovery_config(limit));
            cells.push(rfds.len().to_string());
        }
        for rate in MISSING_RATES {
            let (_, truth) = inject(&rel, rate, 1);
            cells.push(truth.len().to_string());
        }
        print_row(&cells, &widths);
    }
    println!(
        "\nPaper reference (real datasets): Restaurant 6×864, Cars 9×406, \
         Glass 11×214, Bridges 13×108; RFD counts grow with the threshold \
         limit (e.g. Restaurant 25 → 1961). Absolute counts differ on the \
         synthetic stand-ins; the growth pattern is the reproduced shape."
    );
}
