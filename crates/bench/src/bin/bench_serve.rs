//! Measures the serving stack — artifact load vs full rebuild, and
//! `/v1/impute` throughput/latency over loopback — and writes the results
//! to `BENCH_serve.json`.
//!
//! Run with `cargo run -p renuver-bench --release --bin bench_serve`
//! (`--quick` shrinks the fixture and request counts, `--out <path>`
//! overrides the output file).
//!
//! Two claims are on trial:
//!
//! * **The artifact earns its keep.** `renuver serve model.rnv` must be
//!   strictly cheaper than `renuver serve dataset.csv`: decoding the
//!   snapshot skips RFD discovery, the O(k²) Levenshtein matrices, and
//!   the index build. On the full 5 000-row fixture the load must be at
//!   least 5× faster than the rebuild — asserted, not just recorded.
//! * **The server holds up under concurrency.** Loopback clients at
//!   1/4/8 connections hammer `/v1/impute` with keep-alive requests;
//!   req/s and p50/p99 latency are recorded per level. The engine is
//!   serialized behind a mutex (requests mutate and roll back engine
//!   state), so added concurrency buys queueing, not speedup — the
//!   numbers document that honestly.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

use renuver_bench::{median_ms, out_path, quick_mode, synthetic_shops, write_bench_json};
use renuver_core::{Engine, IndexMode, RenuverConfig};
use renuver_rfd::discovery::{discover, DiscoveryConfig};
use renuver_serve::{artifact, Ctx, FlightOptions, ModelInfo, Registry, ServeConfig, Server};

/// What `renuver serve <dataset>` does before it can answer a request:
/// RFD discovery plus the oracle/index build.
fn rebuild(rel: &renuver_data::Relation, config: &RenuverConfig) -> Engine {
    let rfds = discover(rel, &DiscoveryConfig::with_limit(3.0));
    Engine::prepare(rel.clone(), rfds, config.clone())
}

/// One keep-alive client connection issuing `count` impute requests,
/// returning each request's latency in microseconds.
fn client_loop(addr: std::net::SocketAddr, body: &str, count: usize) -> Vec<u64> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).ok();
    let request = format!(
        "POST /v1/impute HTTP/1.1\r\nHost: bench\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\n\r\n{}",
        body.len(),
        body
    );
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut latencies = Vec::with_capacity(count);
    for _ in 0..count {
        let start = Instant::now();
        stream.write_all(request.as_bytes()).expect("write request");
        let mut status_line = String::new();
        reader.read_line(&mut status_line).expect("read status");
        assert!(status_line.contains("200"), "unexpected response: {status_line}");
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).expect("read header");
            if line.trim().is_empty() {
                break;
            }
            if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = v.trim().parse().expect("content-length");
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).expect("read body");
        latencies.push(start.elapsed().as_micros() as u64);
    }
    latencies
}

/// Runs `per_conn` requests on each of `concurrency` connections.
/// Returns `(req_per_s, p50_ms, p99_ms)`.
fn measure_level(
    addr: std::net::SocketAddr,
    body: &str,
    concurrency: usize,
    per_conn: usize,
) -> (f64, f64, f64) {
    let start = Instant::now();
    let mut handles = Vec::with_capacity(concurrency);
    for _ in 0..concurrency {
        let body = body.to_string();
        handles.push(std::thread::spawn(move || client_loop(addr, &body, per_conn)));
    }
    let mut latencies: Vec<u64> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("client thread"))
        .collect();
    let wall = start.elapsed().as_secs_f64();
    latencies.sort_unstable();
    let pct = |p: f64| latencies[((latencies.len() - 1) as f64 * p) as usize] as f64 / 1e3;
    (latencies.len() as f64 / wall, pct(0.50), pct(0.99))
}

/// `--shards`: the shard-registry sweep. A single engine serializes
/// every impute behind a mutex; the sharded registry answers from an
/// immutable `Arc` snapshot, so concurrent requests run truly in
/// parallel. The sweep serves the same model at 1/2/4 shards, hammers
/// `/v1/impute` at fixed concurrency, and records req/s per count plus
/// the speedup over the 1-shard baseline in `BENCH_shards.json`.
///
/// The ≥1.5× floor at 4 shards only holds when the machine can actually
/// run shards in parallel, so `machine_cores` is recorded honestly and
/// the floor is asserted only on multi-core, non-quick runs.
fn shard_sweep(quick: bool) {
    let n = if quick { 1_000 } else { 5_000 };
    let per_conn = if quick { 50 } else { 200 };
    let concurrency = 8usize;
    let cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
    let rel = synthetic_shops(n);
    let rfds = discover(&rel, &DiscoveryConfig::with_limit(3.0));
    let config = RenuverConfig { index_mode: IndexMode::Indexed, ..RenuverConfig::default() };
    let body = r#"{"tuples": [["Shop-0007", "City07", null, 3]]}"#;

    let mut levels = Vec::new();
    let mut baseline = 0.0f64;
    let mut rps_at_4 = 0.0f64;
    for shards in [1usize, 2, 4] {
        let registry = Registry::build(&rel, rfds.clone(), config.clone(), shards);
        let ctx = Arc::new(Ctx::new_sharded(
            registry,
            ModelInfo {
                source: "bench:synthetic_shops".into(),
                schema_fingerprint: artifact::schema_fingerprint(rel.schema()),
                artifact_bytes: 0,
            },
            None,
            60_000,
        ));
        let server = Server::bind(
            ServeConfig {
                addr: "127.0.0.1:0".into(),
                workers: concurrency,
                queue: 64,
                ..ServeConfig::default()
            },
            Arc::clone(&ctx),
        )
        .expect("bind");
        let addr = server.local_addr().expect("local_addr");
        let stop = server.shutdown_handle();
        let server_thread = std::thread::spawn(move || server.run().expect("server run"));
        let (rps, p50, p99) = measure_level(addr, body, concurrency, per_conn);
        stop.store(true, Ordering::Relaxed);
        let shed = server_thread.join().expect("join server");
        assert_eq!(shed, 0, "benchmark load must not be shed");
        if shards == 1 {
            baseline = rps;
        }
        if shards == 4 {
            rps_at_4 = rps;
        }
        let speedup = rps / baseline;
        eprintln!(
            "shards={shards}: {rps:.0} req/s ({speedup:.2}x vs 1 shard), \
             p50 {p50:.2} ms, p99 {p99:.2} ms"
        );
        levels.push(format!(
            "{{\n    \"shards\": {shards},\n    \"requests\": {},\n    \
             \"req_per_s\": {rps:.1},\n    \"p50_ms\": {p50:.3},\n    \
             \"p99_ms\": {p99:.3},\n    \"speedup_vs_1shard\": {speedup:.3}\n  }}",
            concurrency * per_conn
        ));
    }

    let speedup_4 = rps_at_4 / baseline;
    if !quick && cores >= 2 {
        assert!(
            speedup_4 >= 1.5,
            "4 shards must serve at least 1.5x the 1-shard throughput on a \
             multi-core machine ({cores} cores), got {speedup_4:.2}x"
        );
    } else if cores < 2 {
        eprintln!(
            "note: single-core machine — recording throughput without asserting the \
             4-shard speedup floor"
        );
    }

    let json = format!(
        "{{\n  \
         \"rows\": {n},\n  \
         \"machine_cores\": {cores},\n  \
         \"concurrency\": {concurrency},\n  \
         \"speedup_floor_asserted\": {},\n  \
         \"throughput\": [{}]\n}}\n",
        !quick && cores >= 2,
        levels.join(", "),
    );
    write_bench_json(&out_path("BENCH_shards.json"), &json);
}

fn main() {
    let quick = quick_mode();
    if std::env::args().any(|a| a == "--shards") {
        return shard_sweep(quick);
    }
    let runs = if quick { 3 } else { 5 };
    let n = if quick { 1_000 } else { 5_000 };
    let per_conn = if quick { 50 } else { 200 };
    let rel = synthetic_shops(n);
    let config = RenuverConfig { index_mode: IndexMode::Indexed, ..RenuverConfig::default() };

    // --- Artifact: load vs rebuild -------------------------------------
    let engine = rebuild(&rel, &config);
    let bytes = artifact::encode_engine(&engine, "bench:synthetic_shops", 0);
    let artifact_bytes = bytes.len();
    let rebuild_ms = median_ms(runs, || drop(rebuild(&rel, &config)));
    let load_ms = median_ms(runs, || drop(artifact::decode(&bytes).expect("decode artifact")));
    let speedup = rebuild_ms / load_ms;
    eprintln!("rebuild {rebuild_ms:.1} ms, load {load_ms:.1} ms ({speedup:.1}x)");
    if !quick {
        assert!(
            speedup >= 5.0,
            "artifact load must be at least 5x faster than rebuild, got {speedup:.2}x \
             (rebuild {rebuild_ms:.1} ms, load {load_ms:.1} ms)"
        );
    }

    // Loaded and rebuilt engines answer identically (the differential
    // suite is the real harness; this catches a stale build).
    let loaded = artifact::decode(&bytes).expect("decode artifact").into_engine(config.clone());
    {
        let mut a = rebuild(&rel, &config);
        let mut b = artifact::decode(&bytes).expect("decode").into_engine(config.clone());
        let probe = vec![vec![
            renuver_data::Value::from("Shop-0007"),
            renuver_data::Value::from("City07"),
            renuver_data::Value::Null,
            renuver_data::Value::Int(3),
        ]];
        assert_eq!(
            a.impute_batch(probe.clone()).unwrap(),
            b.impute_batch(probe).unwrap(),
            "loaded and rebuilt engines diverged"
        );
    }

    // --- Server throughput ---------------------------------------------
    let ctx = Arc::new(Ctx::new(
        loaded,
        ModelInfo {
            source: "bench:synthetic_shops".into(),
            schema_fingerprint: artifact::schema_fingerprint(rel.schema()),
            artifact_bytes,
        },
        None,
        60_000,
    ));
    let server = Server::bind(
        ServeConfig { addr: "127.0.0.1:0".into(), workers: 8, queue: 64, ..ServeConfig::default() },
        Arc::clone(&ctx),
    )
    .expect("bind");
    let addr = server.local_addr().expect("local_addr");
    let stop = server.shutdown_handle();
    let server_thread = std::thread::spawn(move || server.run().expect("server run"));

    // One hole per request: LHS values present, Zip missing.
    let body = r#"{"tuples": [["Shop-0007", "City07", null, 3]]}"#;
    let mut levels = Vec::new();
    for concurrency in [1usize, 4, 8] {
        let (rps, p50, p99) = measure_level(addr, body, concurrency, per_conn);
        eprintln!("c={concurrency}: {rps:.0} req/s, p50 {p50:.2} ms, p99 {p99:.2} ms");
        levels.push(format!(
            "{{\n    \"concurrency\": {concurrency},\n    \"requests\": {},\n    \
             \"req_per_s\": {rps:.1},\n    \"p50_ms\": {p50:.3},\n    \"p99_ms\": {p99:.3}\n  }}",
            concurrency * per_conn
        ));
    }

    // Server-side latency, from the flight recorder's rolling-window
    // histogram (what `/metrics` reports as p50/p95/p99) — read right
    // after the sweep so the 60 s window still holds its samples.
    let lat = ctx.metrics.windowed("serve.latency.impute.2xx");
    let (lat_p50_us, lat_p95_us, lat_p99_us) = lat.quantiles();
    let lat_count = lat.all_time().count();
    eprintln!(
        "server-side impute latency: n={lat_count}, p50 {lat_p50_us} us, \
         p95 {lat_p95_us} us, p99 {lat_p99_us} us"
    );

    stop.store(true, Ordering::Relaxed);
    let shed = server_thread.join().expect("join server");
    assert_eq!(shed, 0, "benchmark load must not be shed (queue too small?)");
    let imputed = ctx.metrics.counter("serve.cells_imputed").get();

    // --- Flight-recorder overhead --------------------------------------
    // The same model under the same load with the recorder on vs off
    // (`--no-flight`). Interleaved best-of-3 rounds damp scheduler
    // noise; the recorder must cost under 5% of throughput.
    let overhead_conc = 4usize;
    let mut best = [0.0f64; 2]; // [on, off]
    for _ in 0..3 {
        for (slot, enabled) in [(0usize, true), (1, false)] {
            let engine =
                artifact::decode(&bytes).expect("decode artifact").into_engine(config.clone());
            let mut ctx = Ctx::new(
                engine,
                ModelInfo {
                    source: "bench:synthetic_shops".into(),
                    schema_fingerprint: artifact::schema_fingerprint(rel.schema()),
                    artifact_bytes,
                },
                None,
                60_000,
            );
            ctx.set_flight(FlightOptions { enabled, ..FlightOptions::default() });
            let server = Server::bind(
                ServeConfig {
                    addr: "127.0.0.1:0".into(),
                    workers: 8,
                    queue: 64,
                    ..ServeConfig::default()
                },
                Arc::new(ctx),
            )
            .expect("bind");
            let addr = server.local_addr().expect("local_addr");
            let stop = server.shutdown_handle();
            let server_thread = std::thread::spawn(move || server.run().expect("server run"));
            let (rps, _, _) = measure_level(addr, body, overhead_conc, per_conn);
            stop.store(true, Ordering::Relaxed);
            server_thread.join().expect("join server");
            best[slot] = best[slot].max(rps);
        }
    }
    let (rps_on, rps_off) = (best[0], best[1]);
    let overhead_pct = (rps_off / rps_on - 1.0) * 100.0;
    eprintln!(
        "flight recorder: on {rps_on:.0} req/s, off {rps_off:.0} req/s \
         ({overhead_pct:+.2}% overhead)"
    );
    if !quick {
        assert!(
            overhead_pct < 5.0,
            "flight recorder must cost under 5% throughput, measured {overhead_pct:.2}% \
             (on {rps_on:.0} req/s, off {rps_off:.0} req/s)"
        );
    }

    let json = format!(
        "{{\n  \
         \"rows\": {n},\n  \
         \"runs_per_measurement\": {runs},\n  \
         \"artifact\": {{\n    \
         \"bytes\": {artifact_bytes},\n    \
         \"rebuild_ms\": {rebuild_ms:.3},\n    \
         \"load_ms\": {load_ms:.3},\n    \
         \"load_speedup\": {speedup:.3}\n  }},\n  \
         \"impute_cells_served\": {imputed},\n  \
         \"server_latency\": {{\n    \
         \"histogram\": \"serve.latency.impute.2xx\",\n    \
         \"count\": {lat_count},\n    \
         \"p50_us\": {lat_p50_us},\n    \
         \"p95_us\": {lat_p95_us},\n    \
         \"p99_us\": {lat_p99_us}\n  }},\n  \
         \"flight_recorder\": {{\n    \
         \"recorder_on_req_per_s\": {rps_on:.1},\n    \
         \"recorder_off_req_per_s\": {rps_off:.1},\n    \
         \"overhead_pct\": {overhead_pct:.3},\n    \
         \"overhead_floor_asserted\": {}\n  }},\n  \
         \"throughput\": [{}]\n}}\n",
        !quick,
        levels.join(", "),
    );

    write_bench_json(&out_path("BENCH_serve.json"), &json);
}
