//! Measures the durable write path and the incremental-append speedup
//! it rides on, writing results to `BENCH_ingest.json`.
//!
//! Run with `cargo run -p renuver-bench --release --bin bench_ingest`
//! (`--quick` shrinks the fixture, `--out <path>` overrides the output
//! file). Three questions, one fixture (the synthetic shop relation):
//!
//! 1. **Incremental vs rebuild** — growing a prepared engine by a batch
//!    through [`Engine::commit_tuples`] vs rebuilding the oracle/index
//!    from scratch on the extended relation. This is the algorithmic
//!    claim behind `/v1/ingest`: the rebuild is quadratic in the
//!    dictionary, the append touches only the new rows' values.
//! 2. **WAL overhead** — the same committed batches with the
//!    CRC-framed, fsynced log write in front, as `renuver ingest` and
//!    the server run them. The delta is the durability tax.
//! 3. **Recovery** — replaying a WAL of many small records into a
//!    freshly loaded snapshot, plus one compaction, the cold-restart
//!    cost an operator actually waits on.

use renuver_bench::{median_ms, out_path, quick_mode, synthetic_shops, write_bench_json};
use renuver_core::{Engine, RenuverConfig};
use renuver_data::{Relation, Tuple};
use renuver_rfd::{Constraint, Rfd, RfdSet};
use renuver_serve::{artifact, Durable, DurabilityOptions};

fn sigma() -> RfdSet {
    // The planted City→Zip / Zip→City dependencies of the fixture.
    RfdSet::from_vec(vec![
        Rfd::new(vec![Constraint::new(1, 0.0)], Constraint::new(2, 0.0)),
        Rfd::new(vec![Constraint::new(2, 0.0)], Constraint::new(1, 0.0)),
    ])
}

fn split(rel: &Relation, base_rows: usize) -> (Relation, Vec<Tuple>) {
    let base: Vec<Tuple> = rel.tuples().take(base_rows).cloned().collect();
    let rest: Vec<Tuple> = rel.tuples().skip(base_rows).cloned().collect();
    (Relation::new(rel.schema().clone(), base).unwrap(), rest)
}

fn main() {
    let quick = quick_mode();
    let (rows, batch_rows, runs, wal_records) =
        if quick { (800, 40, 3, 20) } else { (5000, 250, 5, 200) };
    let full = synthetic_shops(rows);
    let base_rows = rows - batch_rows;
    let (base, batch) = split(&full, base_rows);
    let config = RenuverConfig::default();

    // 1. Incremental append vs full rebuild for one batch. Engine is
    // not Clone, so each run gets a faithful copy via the artifact
    // round-trip; the decode cost is identical across the measurements
    // being compared, so deltas and ratios are still meaningful.
    let prepared = Engine::prepare(base, sigma(), config.clone());
    let bytes = artifact::encode_engine(&prepared, "bench", 0);
    let commit_only_ms = median_ms(runs, || {
        let mut e = artifact::decode(&bytes).unwrap().into_engine(config.clone());
        let _ = e.commit_tuples(batch.clone()).unwrap();
    });
    let rebuild_ms = median_ms(runs, || {
        drop(Engine::prepare(full.clone(), sigma(), config.clone()));
    });

    // 2. The durability tax: the same commit with the fsynced WAL write
    // in front, through the real Durable store.
    let dir = std::env::temp_dir().join(format!("renuver-bench-ingest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let snapshot = dir.join("model.rnv");
    std::fs::write(&snapshot, &bytes).unwrap();
    let durable_ms = median_ms(runs, || {
        let _ = std::fs::remove_file(dir.join("model.rnv.wal"));
        let mut e = artifact::decode(&bytes).unwrap().into_engine(config.clone());
        let (mut durable, _) =
            Durable::recover(&mut e, 0, DurabilityOptions::beside(&snapshot, "bench")).unwrap();
        durable.append(&batch).unwrap();
        let _ = e.commit_tuples(batch.clone()).unwrap();
    });

    // 3. Cold recovery: replay `wal_records` one-row records, then fold
    // them into the snapshot.
    let _ = std::fs::remove_file(dir.join("model.rnv.wal"));
    {
        let mut e = artifact::decode(&bytes).unwrap().into_engine(config.clone());
        let (mut durable, _) =
            Durable::recover(&mut e, 0, DurabilityOptions::beside(&snapshot, "bench")).unwrap();
        for t in batch.iter().cycle().take(wal_records) {
            durable.append(std::slice::from_ref(t)).unwrap();
            e.commit_tuples(vec![t.clone()]).unwrap();
        }
    }
    let replay_ms = median_ms(runs, || {
        let mut e = artifact::decode(&bytes).unwrap().into_engine(config.clone());
        let (_, report) =
            Durable::recover(&mut e, 0, DurabilityOptions::beside(&snapshot, "bench")).unwrap();
        assert_eq!(report.replayed, wal_records);
    });
    let compact_ms = {
        let mut e = artifact::decode(&bytes).unwrap().into_engine(config.clone());
        let (mut durable, _) =
            Durable::recover(&mut e, 0, DurabilityOptions::beside(&snapshot, "bench")).unwrap();
        let start = std::time::Instant::now();
        durable.compact(&e).unwrap();
        start.elapsed().as_secs_f64() * 1e3
    };
    let _ = std::fs::remove_dir_all(&dir);

    let batch_per_s = |ms: f64| if ms > 0.0 { batch_rows as f64 / (ms / 1e3) } else { 0.0 };
    let json = format!(
        "{{\n  \"rows\": {rows},\n  \"batch_rows\": {batch_rows},\n  \"runs_per_measurement\": {runs},\n  \
         \"append\": {{\n    \"commit_ms\": {commit_only_ms:.3},\n    \"commit_rows_per_s\": {:.1},\n    \
         \"rebuild_ms\": {rebuild_ms:.3},\n    \"speedup_vs_rebuild\": {:.3}\n  }},\n  \
         \"durability\": {{\n    \"wal_commit_ms\": {durable_ms:.3},\n    \
         \"overhead_ms\": {:.3}\n  }},\n  \
         \"recovery\": {{\n    \"wal_records\": {wal_records},\n    \"replay_ms\": {replay_ms:.3},\n    \
         \"records_per_s\": {:.1},\n    \"compact_ms\": {compact_ms:.3}\n  }}\n}}\n",
        batch_per_s(commit_only_ms),
        if commit_only_ms > 0.0 { rebuild_ms / commit_only_ms } else { 0.0 },
        (durable_ms - commit_only_ms).max(0.0),
        if replay_ms > 0.0 { wal_records as f64 / (replay_ms / 1e3) } else { 0.0 },
    );
    write_bench_json(&out_path("BENCH_ingest.json"), &json);
}
