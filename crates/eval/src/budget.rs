//! Wall-clock and peak-memory tracking for the stress experiments
//! (paper Tables 4 and 5 report time and memory per run, with 48 h / 30 GB
//! kill limits).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Bytes currently allocated through [`TrackingAlloc`].
static CURRENT: AtomicUsize = AtomicUsize::new(0);
/// High-water mark since the last [`reset_peak`].
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// A counting global allocator: wraps the system allocator and maintains
/// the live-bytes counter and its high-water mark. Install it in a binary
/// with:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: renuver_eval::budget::TrackingAlloc = renuver_eval::budget::TrackingAlloc;
/// ```
///
/// The paper reports OS-level memory; a counting allocator measures the
/// same quantity (heap high-water mark) portably and deterministically.
pub struct TrackingAlloc;

// SAFETY: delegates allocation to `System`; the counters are simple
// atomics with no safety impact.
unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            let now = CURRENT.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(now, Ordering::Relaxed);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = unsafe { System.realloc(ptr, layout, new_size) };
        if !new_ptr.is_null() {
            let old = layout.size();
            if new_size >= old {
                let now = CURRENT.fetch_add(new_size - old, Ordering::Relaxed) + (new_size - old);
                PEAK.fetch_max(now, Ordering::Relaxed);
            } else {
                CURRENT.fetch_sub(old - new_size, Ordering::Relaxed);
            }
        }
        new_ptr
    }
}

/// Resets the high-water mark to the current live size.
pub fn reset_peak() {
    PEAK.store(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// The high-water mark (bytes) since the last [`reset_peak`]. Zero when
/// [`TrackingAlloc`] is not installed as the global allocator.
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Bytes currently live. Zero when the allocator is not installed.
pub fn current_bytes() -> usize {
    CURRENT.load(Ordering::Relaxed)
}

/// Runs `f`, returning its output, the elapsed wall time, and the heap
/// high-water mark observed during the call (relative to the start).
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, Duration, usize) {
    reset_peak();
    let before = current_bytes();
    let start = Instant::now();
    let out = f();
    let elapsed = start.elapsed();
    let peak = peak_bytes().saturating_sub(before);
    (out, elapsed, peak)
}

/// Formats a byte count the way the paper's tables do (`1.38 GB`,
/// `730 MB`).
pub fn format_bytes(bytes: usize) -> String {
    const GB: f64 = 1024.0 * 1024.0 * 1024.0;
    const MB: f64 = 1024.0 * 1024.0;
    const KB: f64 = 1024.0;
    let b = bytes as f64;
    if b >= GB {
        format!("{:.2} GB", b / GB)
    } else if b >= MB {
        format!("{:.0} MB", b / MB)
    } else if b >= KB {
        format!("{:.0} KB", b / KB)
    } else {
        format!("{bytes} B")
    }
}

/// Formats a duration the way the paper's tables do (`14m 29s`, `470ms`).
pub fn format_duration(d: Duration) -> String {
    let ms = d.as_millis();
    if ms < 1_000 {
        format!("{ms}ms")
    } else if ms < 60_000 {
        format!("{:.1}s", d.as_secs_f64())
    } else if ms < 3_600_000 {
        let m = d.as_secs() / 60;
        let s = d.as_secs() % 60;
        format!("{m}m {s}s")
    } else {
        let h = d.as_secs() / 3600;
        let m = (d.as_secs() % 3600) / 60;
        format!("{h}h {m}m")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_returns_output_and_nonzero_time() {
        let (out, elapsed, _peak) = measure(|| {
            let v: Vec<u64> = (0..100_000).collect();
            v.len()
        });
        assert_eq!(out, 100_000);
        assert!(elapsed.as_nanos() > 0);
        // Peak is only nonzero when TrackingAlloc is the global allocator,
        // which unit tests do not install.
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(format_bytes(512), "512 B");
        assert_eq!(format_bytes(10 * 1024), "10 KB");
        assert_eq!(format_bytes(730 * 1024 * 1024), "730 MB");
        assert_eq!(format_bytes(1_482_000_000), "1.38 GB");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_millis(470)), "470ms");
        assert_eq!(format_duration(Duration::from_millis(3_200)), "3.2s");
        assert_eq!(format_duration(Duration::from_secs(869)), "14m 29s");
        assert_eq!(format_duration(Duration::from_secs(48 * 3600 + 120)), "48h 2m");
    }
}
