//! Wall-clock and peak-memory tracking, re-exported from
//! [`renuver_budget`].
//!
//! The tracking allocator and formatting helpers originated here; they now
//! live in the `renuver-budget` crate (at the bottom of the dependency
//! graph) so that `renuver-rfd`, `renuver-distance`, and `renuver-core`
//! can enforce budgets against the same counters. This module stays as a
//! re-export so existing `renuver_eval::budget::…` paths keep working.

pub use renuver_budget::{
    current_bytes, format_bytes, format_duration, measure, peak_bytes, reset_peak, Budget,
    BudgetReport, BudgetTrip, ManualClock, TrackingAlloc,
};
