//! Precision / recall / F1 over rule-validated imputations
//! (paper Section 6.1, "Evaluation metrics").

use renuver_data::Relation;
use renuver_rulekit::RuleSet;

use crate::inject::GroundTruth;

/// The paper's three effectiveness metrics, plus the raw counts behind
/// them.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Scores {
    /// `|true ∩ imputed| / |imputed|` — reliability of what was filled.
    pub precision: f64,
    /// `|true ∩ missing| / |missing|` — coverage of what was missing.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
    /// Injected (ground-truth) missing cells.
    pub missing: usize,
    /// Cells the approach filled.
    pub imputed: usize,
    /// Filled cells judged correct by the rule set.
    pub correct: usize,
}

impl Scores {
    /// Derives the metric triple from the raw counts.
    pub fn from_counts(missing: usize, imputed: usize, correct: usize) -> Scores {
        let precision = if imputed == 0 { 0.0 } else { correct as f64 / imputed as f64 };
        let recall = if missing == 0 { 0.0 } else { correct as f64 / missing as f64 };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        Scores { precision, recall, f1, missing, imputed, correct }
    }
}

/// Judges an imputed relation against the ground truth: for every injected
/// cell, checks whether it was filled and whether the filled value is
/// admissible under the dataset's rules (exact match or any rule).
pub fn evaluate(imputed_rel: &Relation, truth: &GroundTruth, rules: &RuleSet) -> Scores {
    let mut imputed = 0usize;
    let mut correct = 0usize;
    for (cell, expected) in truth {
        let got = imputed_rel.value(cell.row, cell.col);
        if got.is_null() {
            continue;
        }
        imputed += 1;
        let attr = imputed_rel.schema().name(cell.col);
        if rules.validate(attr, &got.render(), &expected.render()) {
            correct += 1;
        }
    }
    Scores::from_counts(truth.len(), imputed, correct)
}

#[cfg(test)]
mod tests {
    use super::*;
    use renuver_data::{AttrType, Cell, Schema, Value};
    use renuver_rulekit::parse_rules;

    fn rel(values: Vec<Value>) -> Relation {
        let schema = Schema::new([("Phone", AttrType::Text)]).unwrap();
        Relation::new(schema, values.into_iter().map(|v| vec![v]).collect()).unwrap()
    }

    #[test]
    fn from_counts_edge_cases() {
        let s = Scores::from_counts(0, 0, 0);
        assert_eq!((s.precision, s.recall, s.f1), (0.0, 0.0, 0.0));
        let s = Scores::from_counts(10, 0, 0);
        assert_eq!((s.precision, s.recall), (0.0, 0.0));
        let s = Scores::from_counts(10, 10, 10);
        assert_eq!((s.precision, s.recall, s.f1), (1.0, 1.0, 1.0));
        let s = Scores::from_counts(10, 5, 5);
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 0.5);
        assert!((s.f1 - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn evaluate_counts_rule_admissible_as_correct() {
        let rules = parse_rules(
            "attr Phone\n  regex \\d{3}[-/ ]\\d{3}[- ]\\d{4} project digits\n",
        )
        .unwrap();
        // Three injected cells: one exact, one separator variant, one wrong.
        let imputed = rel(vec![
            "213-848-6677".into(),
            "310/456-0488".into(),
            "999-999-9999".into(),
        ]);
        let truth: GroundTruth = vec![
            (Cell::new(0, 0), "213-848-6677".into()),
            (Cell::new(1, 0), "310-456-0488".into()),
            (Cell::new(2, 0), "111-111-1111".into()),
        ];
        let s = evaluate(&imputed, &truth, &rules);
        assert_eq!(s.imputed, 3);
        assert_eq!(s.correct, 2);
        assert!((s.precision - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.recall - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn unfilled_cells_hit_recall_not_precision() {
        let rules = parse_rules("").unwrap();
        let imputed = rel(vec![Value::Null, "x".into()]);
        let truth: GroundTruth = vec![
            (Cell::new(0, 0), "a".into()),
            (Cell::new(1, 0), "x".into()),
        ];
        let s = evaluate(&imputed, &truth, &rules);
        assert_eq!(s.imputed, 1);
        assert_eq!(s.correct, 1);
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 0.5);
    }
}
