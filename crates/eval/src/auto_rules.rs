//! Automatic validation-rule generation from attribute profiles.
//!
//! The paper's rule files are written "after a painstaking evaluation of
//! each attribute value distribution" (Section 6.1). For arbitrary CSVs —
//! the CLI's `evaluate --auto-rules` path — this module derives a serviceable
//! approximation mechanically: numeric attributes admit a delta scaled to
//! their observed spread, exactly the Horsepower ±25 pattern the paper
//! describes, while text and boolean attributes stay strict (exact match
//! only). Hand-written rule files remain better when domain knowledge
//! exists; this removes the blank-page problem.

use renuver_data::{profile, AttrType, Relation};
use renuver_rulekit::{Rule, RuleSet};

/// Builds a rule set admitting, per numeric attribute, a delta of
/// `fraction` of the attribute's observed range (skipped when the range is
/// degenerate). Text attributes receive no rules — exact matching applies.
pub fn auto_rules(rel: &Relation, fraction: f64) -> RuleSet {
    let mut rules = RuleSet::new();
    for p in profile(rel) {
        if !matches!(p.ty, AttrType::Int | AttrType::Float) {
            continue;
        }
        if let Some((lo, hi)) = p.numeric_range {
            let delta = (hi - lo) * fraction;
            if delta > 0.0 {
                rules.add(p.name, Rule::Delta(delta));
            }
        }
    }
    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use renuver_data::{Schema, Value};

    fn rel() -> Relation {
        let schema = Schema::new([
            ("Name", AttrType::Text),
            ("Horsepower", AttrType::Float),
            ("Year", AttrType::Int),
            ("Constant", AttrType::Int),
        ])
        .unwrap();
        Relation::new(
            schema,
            vec![
                vec!["a".into(), Value::Float(50.0), Value::Int(70), Value::Int(1)],
                vec!["b".into(), Value::Float(250.0), Value::Int(82), Value::Int(1)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn numeric_deltas_scale_with_range() {
        let rules = auto_rules(&rel(), 0.1);
        // Horsepower range 200 → delta 20.
        assert!(rules.validate("Horsepower", "100", "118"));
        assert!(!rules.validate("Horsepower", "100", "121"));
        // Year range 12 → delta 1.2.
        assert!(rules.validate("Year", "70", "71"));
        assert!(!rules.validate("Year", "70", "72"));
    }

    #[test]
    fn text_and_degenerate_columns_stay_strict() {
        let rules = auto_rules(&rel(), 0.1);
        assert!(rules.rules_for("Name").is_empty());
        assert!(rules.rules_for("Constant").is_empty());
        assert!(!rules.validate("Name", "a", "b"));
        assert!(rules.validate("Name", "a", "A")); // exact (case-insensitive)
    }

    #[test]
    fn zero_fraction_means_exact_everywhere() {
        let rules = auto_rules(&rel(), 0.0);
        assert!(rules.is_empty());
    }
}
