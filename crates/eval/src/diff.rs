//! The shared metrics-diff engine: work counters for one imputation run
//! and signed deltas between two runs.
//!
//! Built once here so both consumers render the same arithmetic:
//!
//! - `renuver tune` explains every threshold move with the work deltas
//!   (candidates scored, verifications, oracle hits) that justified it.
//! - `renuver compare --metrics-diff` shows how each injected variant's
//!   work profile departs from the first variant's.

use renuver_core::ImputationStats;

/// Work counters of one imputation run, the diffable subset of
/// [`ImputationStats`] plus the budget's per-phase self-times.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkMetrics {
    /// Candidate tuples scored across all clusters.
    pub candidates_scored: u64,
    /// Candidate values submitted to IS_FAULTLESS.
    pub verifications: u64,
    /// Verifications that passed (candidate accepted by the oracle).
    pub oracle_hits: u64,
    /// Clusters visited across all missing values.
    pub clusters_visited: u64,
    /// Missing values successfully filled.
    pub imputed: u64,
    /// Budget phase self-times `(label, microseconds)`; empty unless the
    /// run was traced.
    pub phases: Vec<(String, u64)>,
}

impl WorkMetrics {
    /// Extracts the diffable counters from a run's stats and phase times.
    pub fn from_stats(stats: &ImputationStats, phases: Vec<(String, u64)>) -> WorkMetrics {
        WorkMetrics {
            candidates_scored: stats.candidates_scored as u64,
            verifications: stats.verifications as u64,
            oracle_hits: (stats.verifications - stats.verification_failures) as u64,
            clusters_visited: stats.clusters_visited as u64,
            imputed: stats.imputed as u64,
            phases,
        }
    }

    /// Signed deltas of `self` relative to `baseline` (`self - baseline`).
    pub fn diff(&self, baseline: &WorkMetrics) -> MetricsDiff {
        let d = |a: u64, b: u64| a as i64 - b as i64;
        // Union of phase labels, ordered: baseline's order first, then
        // labels only `self` has — deterministic regardless of timing.
        let mut d_phases: Vec<(String, i64)> = baseline
            .phases
            .iter()
            .map(|(label, b)| {
                let a = self
                    .phases
                    .iter()
                    .find(|(l, _)| l == label)
                    .map_or(0, |(_, v)| *v);
                (label.clone(), d(a, *b))
            })
            .collect();
        for (label, a) in &self.phases {
            if !baseline.phases.iter().any(|(l, _)| l == label) {
                d_phases.push((label.clone(), *a as i64));
            }
        }
        MetricsDiff {
            d_candidates_scored: d(self.candidates_scored, baseline.candidates_scored),
            d_verifications: d(self.verifications, baseline.verifications),
            d_oracle_hits: d(self.oracle_hits, baseline.oracle_hits),
            d_clusters_visited: d(self.clusters_visited, baseline.clusters_visited),
            d_imputed: d(self.imputed, baseline.imputed),
            d_phases,
        }
    }
}

/// Signed per-counter deltas between two runs (`after - before`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsDiff {
    /// Change in candidates scored.
    pub d_candidates_scored: i64,
    /// Change in verification attempts.
    pub d_verifications: i64,
    /// Change in accepted verifications.
    pub d_oracle_hits: i64,
    /// Change in clusters visited.
    pub d_clusters_visited: i64,
    /// Change in cells imputed.
    pub d_imputed: i64,
    /// Per-phase self-time deltas, microseconds.
    pub d_phases: Vec<(String, i64)>,
}

impl MetricsDiff {
    /// Whether every counter delta is zero (phase times ignored — they
    /// are wall-clock and never reproducible).
    pub fn is_zero(&self) -> bool {
        self.d_candidates_scored == 0
            && self.d_verifications == 0
            && self.d_oracle_hits == 0
            && self.d_clusters_visited == 0
            && self.d_imputed == 0
    }
}

/// Explicitly signed rendering: `+12`, `-3`, `0`.
pub fn signed(v: i64) -> String {
    if v > 0 {
        format!("+{v}")
    } else {
        v.to_string()
    }
}

/// Renders labeled diffs as the fixed-width table `compare
/// --metrics-diff` prints. Counter columns are deterministic; the phase
/// column carries wall-clock self-time deltas and is `-` for untraced
/// runs.
pub fn diff_table(rows: &[(String, MetricsDiff)]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12} {:>12} {:>15} {:>13} {:>10} {:>9}  {}\n",
        "variant", "Δcandidates", "Δverifications", "Δoracle-hits", "Δclusters", "Δimputed",
        "Δphases (us)"
    ));
    for (label, d) in rows {
        let phases: Vec<String> = d
            .d_phases
            .iter()
            .filter(|(_, v)| *v != 0)
            .map(|(p, v)| format!("{p} {}", signed(*v)))
            .collect();
        out.push_str(&format!(
            "{:<12} {:>12} {:>15} {:>13} {:>10} {:>9}  {}\n",
            label,
            signed(d.d_candidates_scored),
            signed(d.d_verifications),
            signed(d.d_oracle_hits),
            signed(d.d_clusters_visited),
            signed(d.d_imputed),
            if phases.is_empty() { "-".to_string() } else { phases.join(", ") },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> ImputationStats {
        ImputationStats {
            missing_total: 10,
            imputed: 7,
            unimputed: 3,
            candidates_scored: 120,
            verifications: 30,
            verification_failures: 9,
            clusters_visited: 15,
            keys_reactivated: 0,
            keys_filtered: 1,
            skipped_budget: 0,
            cancelled: 0,
        }
    }

    #[test]
    fn work_metrics_capture_the_diffable_counters() {
        let w = WorkMetrics::from_stats(&stats(), vec![("core::scan".into(), 500)]);
        assert_eq!(w.candidates_scored, 120);
        assert_eq!(w.verifications, 30);
        assert_eq!(w.oracle_hits, 21, "verifications minus failures");
        assert_eq!(w.clusters_visited, 15);
        assert_eq!(w.imputed, 7);
        assert_eq!(w.phases, vec![("core::scan".to_string(), 500)]);
    }

    #[test]
    fn diff_is_signed_and_phase_union_is_deterministic() {
        let base = WorkMetrics {
            candidates_scored: 100,
            verifications: 20,
            oracle_hits: 18,
            clusters_visited: 10,
            imputed: 8,
            phases: vec![("core::scan".into(), 400), ("core::verify".into(), 100)],
        };
        let after = WorkMetrics {
            candidates_scored: 140,
            verifications: 17,
            oracle_hits: 17,
            clusters_visited: 10,
            imputed: 9,
            phases: vec![("core::verify".into(), 150), ("core::oracle".into(), 30)],
        };
        let d = after.diff(&base);
        assert_eq!(d.d_candidates_scored, 40);
        assert_eq!(d.d_verifications, -3);
        assert_eq!(d.d_oracle_hits, -1);
        assert_eq!(d.d_clusters_visited, 0);
        assert_eq!(d.d_imputed, 1);
        assert_eq!(
            d.d_phases,
            vec![
                ("core::scan".to_string(), -400),
                ("core::verify".to_string(), 50),
                ("core::oracle".to_string(), 30),
            ]
        );
        assert!(!d.is_zero());
        assert!(after.diff(&after).is_zero());
    }

    #[test]
    fn table_rendering_is_pinned() {
        let zero = MetricsDiff::default();
        let moved = MetricsDiff {
            d_candidates_scored: 40,
            d_verifications: -3,
            d_oracle_hits: -1,
            d_clusters_visited: 0,
            d_imputed: 1,
            d_phases: vec![("core::scan".into(), -400), ("core::idle".into(), 0)],
        };
        let table = diff_table(&[("seed 1".into(), zero), ("seed 2".into(), moved)]);
        assert_eq!(
            table,
            "variant       Δcandidates  Δverifications  Δoracle-hits  Δclusters  Δimputed  Δphases (us)\n\
             seed 1                  0               0             0          0         0  -\n\
             seed 2                +40              -3            -1          0        +1  core::scan -400\n"
        );
    }
}
