//! Seeded missing-value injection (paper Section 6.1, "Datasets").
//!
//! The paper injects uniformly at random (MCAR — missing completely at
//! random). [`inject_with`] additionally supports the two standard
//! non-uniform mechanisms for robustness studies: value-biased
//! missingness (MNAR — high values of a chosen attribute go missing
//! preferentially) and column-concentrated missingness (MAR-style — only
//! chosen attributes lose values).

use rand::rngs::StdRng;
use rand::{seq::SliceRandom, RngExt, SeedableRng};

use renuver_data::{AttrId, Cell, Relation, Value};

/// How injected cells are selected.
#[derive(Debug, Clone, PartialEq)]
pub enum InjectionPattern {
    /// Uniformly at random over all non-missing cells — the paper's
    /// protocol (missing completely at random).
    Mcar,
    /// Missing **not** at random: cells of `attr` whose value ranks in the
    /// upper half of the attribute's ordering are `bias`× more likely to
    /// be selected. Only cells of `attr` are injected.
    ValueBiased {
        /// The attribute losing values.
        attr: AttrId,
        /// Selection weight multiplier for upper-half values (≥ 1).
        bias: f64,
    },
    /// Only the listed attributes lose values (uniform within them).
    Columns(Vec<AttrId>),
}

/// The injected cells with their original values — the ground truth an
/// evaluation compares against.
pub type GroundTruth = Vec<(Cell, Value)>;

/// Turns `rate` (fraction of all cells, e.g. `0.01` for the paper's 1%)
/// of the non-missing cells into missing values, selected uniformly with
/// the given seed. Returns the incomplete instance and the ground truth.
///
/// Different seeds give the paper's "five injected datasets per missing
/// rate"; the same seed always selects the same cells.
pub fn inject(rel: &Relation, rate: f64, seed: u64) -> (Relation, GroundTruth) {
    let total = rel.len() * rel.arity();
    let count = ((total as f64) * rate).round() as usize;
    inject_count(rel, count, seed)
}

/// Like [`inject`] but with an explicit number of cells.
pub fn inject_count(rel: &Relation, count: usize, seed: u64) -> (Relation, GroundTruth) {
    inject_pattern(rel, count, seed, &InjectionPattern::Mcar)
}

/// Injects `rate` of the cells under the given selection pattern. For
/// [`InjectionPattern::Mcar`] this is exactly [`inject`].
pub fn inject_with(
    rel: &Relation,
    rate: f64,
    seed: u64,
    pattern: &InjectionPattern,
) -> (Relation, GroundTruth) {
    let total = rel.len() * rel.arity();
    let count = ((total as f64) * rate).round() as usize;
    inject_pattern(rel, count, seed, pattern)
}

fn inject_pattern(
    rel: &Relation,
    count: usize,
    seed: u64,
    pattern: &InjectionPattern,
) -> (Relation, GroundTruth) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x17CE11);
    let mut candidates: Vec<Cell> = Vec::new();
    match pattern {
        InjectionPattern::Mcar => {
            for row in 0..rel.len() {
                for col in 0..rel.arity() {
                    if !rel.is_missing(row, col) {
                        candidates.push(Cell::new(row, col));
                    }
                }
            }
            candidates.shuffle(&mut rng);
        }
        InjectionPattern::Columns(cols) => {
            for row in 0..rel.len() {
                for &col in cols {
                    if col < rel.arity() && !rel.is_missing(row, col) {
                        candidates.push(Cell::new(row, col));
                    }
                }
            }
            candidates.shuffle(&mut rng);
        }
        InjectionPattern::ValueBiased { attr, bias } => {
            // Rank the attribute's present values; upper-half cells get
            // weight `bias`, lower-half weight 1, then a weighted shuffle
            // (exponential-sort trick on -ln(u)/w keys).
            let mut ranked: Vec<(usize, &Value)> = (0..rel.len())
                .filter(|&r| !rel.is_missing(r, *attr))
                .map(|r| (r, rel.value(r, *attr)))
                .collect();
            ranked.sort_by(|a, b| a.1.total_cmp(b.1));
            let half = ranked.len() / 2;
            let mut keyed: Vec<(f64, Cell)> = ranked
                .iter()
                .enumerate()
                .map(|(pos, &(row, _))| {
                    let w = if pos >= half { bias.max(1.0) } else { 1.0 };
                    let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
                    ((-u.ln()) / w, Cell::new(row, *attr))
                })
                .collect();
            keyed.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            candidates = keyed.into_iter().map(|(_, c)| c).collect();
        }
    }
    candidates.truncate(count.min(candidates.len()));
    candidates.sort();

    let mut out = rel.clone();
    let mut truth = Vec::with_capacity(candidates.len());
    for cell in candidates {
        truth.push((cell, rel.value(cell.row, cell.col).clone()));
        out.set_value(cell.row, cell.col, Value::Null);
    }
    (out, truth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use renuver_data::{AttrType, Schema};

    fn sample() -> Relation {
        let schema = Schema::new([("A", AttrType::Int), ("B", AttrType::Int)]).unwrap();
        Relation::new(
            schema,
            (0..50)
                .map(|i| vec![Value::Int(i), Value::Int(i * 2)])
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn injects_requested_fraction() {
        let rel = sample();
        let (injected, truth) = inject(&rel, 0.1, 1);
        assert_eq!(truth.len(), 10); // 100 cells * 10%
        assert_eq!(injected.missing_count(), 10);
    }

    #[test]
    fn ground_truth_matches_original() {
        let rel = sample();
        let (injected, truth) = inject(&rel, 0.05, 2);
        for (cell, original) in &truth {
            assert!(injected.is_missing(cell.row, cell.col));
            assert_eq!(rel.value(cell.row, cell.col), original);
        }
    }

    #[test]
    fn untouched_cells_preserved() {
        let rel = sample();
        let (injected, truth) = inject(&rel, 0.05, 3);
        let hit: std::collections::HashSet<Cell> =
            truth.iter().map(|(c, _)| *c).collect();
        for row in 0..rel.len() {
            for col in 0..rel.arity() {
                if !hit.contains(&Cell::new(row, col)) {
                    assert_eq!(injected.value(row, col), rel.value(row, col));
                }
            }
        }
    }

    #[test]
    fn seeds_select_different_cells() {
        let rel = sample();
        let (_, a) = inject(&rel, 0.05, 1);
        let (_, b) = inject(&rel, 0.05, 2);
        assert_ne!(a, b);
        let (_, a2) = inject(&rel, 0.05, 1);
        assert_eq!(a, a2); // deterministic per seed
    }

    #[test]
    fn never_injects_into_already_missing() {
        let schema = Schema::new([("A", AttrType::Int)]).unwrap();
        let rel = Relation::new(schema, vec![vec![Value::Null], vec![Value::Int(1)]]).unwrap();
        let (injected, truth) = inject_count(&rel, 5, 1);
        assert_eq!(truth.len(), 1); // only one non-missing cell existed
        assert_eq!(injected.missing_count(), 2);
    }

    #[test]
    fn columns_pattern_restricts_attributes() {
        let rel = sample();
        let (incomplete, truth) =
            inject_with(&rel, 0.1, 1, &InjectionPattern::Columns(vec![1]));
        assert_eq!(truth.len(), 10);
        assert!(truth.iter().all(|(c, _)| c.col == 1));
        assert!((0..rel.len()).all(|r| !incomplete.is_missing(r, 0)));
    }

    #[test]
    fn value_biased_pattern_prefers_upper_half() {
        // Column B holds i*2 for i in 0..50; with strong bias the selected
        // rows should skew to the top of the ordering.
        let rel = sample();
        let pattern = InjectionPattern::ValueBiased { attr: 1, bias: 50.0 };
        let mut upper = 0usize;
        let mut total = 0usize;
        for seed in 0..10 {
            let (_, truth) = inject_with(&rel, 0.1, seed, &pattern);
            assert!(truth.iter().all(|(c, _)| c.col == 1));
            for (cell, _) in &truth {
                total += 1;
                if cell.row >= 25 {
                    upper += 1;
                }
            }
        }
        assert!(
            upper as f64 / total as f64 > 0.8,
            "bias too weak: {upper}/{total}"
        );
    }

    #[test]
    fn mcar_pattern_equals_plain_inject() {
        let rel = sample();
        let (a, ta) = inject(&rel, 0.07, 3);
        let (b, tb) = inject_with(&rel, 0.07, 3, &InjectionPattern::Mcar);
        assert_eq!(a, b);
        assert_eq!(ta, tb);
    }

    #[test]
    fn zero_rate_is_identity() {
        let rel = sample();
        let (injected, truth) = inject(&rel, 0.0, 9);
        assert_eq!(injected, rel);
        assert!(truth.is_empty());
    }
}
