//! Human-readable run reports.
//!
//! Formats an imputation run the way the paper's tables present results —
//! metrics, resource use, and per-attribute breakdowns — for the CLI and
//! the examples. Pure string building; no I/O.

use std::time::Duration;

use renuver_data::{Relation, Schema};

use crate::budget::{format_bytes, format_duration};
use crate::inject::GroundTruth;
use crate::metrics::Scores;
use crate::runner::RunOutcome;

/// Formats the metric triple as one line: `precision 0.833 | recall 0.641
/// | F1 0.724 (imputed 166/259, correct 138)`.
pub fn scores_line(s: &Scores) -> String {
    format!(
        "precision {:.3} | recall {:.3} | F1 {:.3} (imputed {}/{}, correct {})",
        s.precision, s.recall, s.f1, s.imputed, s.missing, s.correct
    )
}

/// Formats a full outcome with resource use appended.
pub fn outcome_line(o: &RunOutcome) -> String {
    let mut line = scores_line(&o.scores);
    line.push_str(&format!(" in {}", format_duration(o.elapsed)));
    if o.peak_bytes > 0 {
        line.push_str(&format!(", peak {}", format_bytes(o.peak_bytes)));
    }
    line
}

/// Per-attribute imputation breakdown: how many of each attribute's
/// injected cells were filled and judged correct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrBreakdown {
    /// Attribute name.
    pub name: String,
    /// Injected cells on this attribute.
    pub missing: usize,
    /// Cells filled.
    pub imputed: usize,
    /// Filled cells judged correct.
    pub correct: usize,
}

/// Computes the per-attribute breakdown of a run.
pub fn attr_breakdown(
    imputed_rel: &Relation,
    truth: &GroundTruth,
    rules: &renuver_rulekit::RuleSet,
) -> Vec<AttrBreakdown> {
    let schema: &Schema = imputed_rel.schema();
    let mut rows: Vec<AttrBreakdown> = schema
        .attrs()
        .map(|a| AttrBreakdown {
            name: a.name.clone(),
            missing: 0,
            imputed: 0,
            correct: 0,
        })
        .collect();
    for (cell, expected) in truth {
        let slot = &mut rows[cell.col];
        slot.missing += 1;
        let got = imputed_rel.value(cell.row, cell.col);
        if got.is_null() {
            continue;
        }
        slot.imputed += 1;
        if rules.validate(&slot.name, &got.render(), &expected.render()) {
            slot.correct += 1;
        }
    }
    rows.retain(|r| r.missing > 0);
    rows
}

/// Renders the breakdown as an aligned text table.
pub fn breakdown_table(rows: &[AttrBreakdown]) -> String {
    let name_w = rows
        .iter()
        .map(|r| r.name.chars().count())
        .max()
        .unwrap_or(4)
        .max("attribute".len());
    let mut out = format!(
        "{:<name_w$} {:>8} {:>8} {:>8} {:>10}\n",
        "attribute", "missing", "imputed", "correct", "precision"
    );
    for r in rows {
        let precision = if r.imputed == 0 {
            "-".to_owned()
        } else {
            format!("{:.3}", r.correct as f64 / r.imputed as f64)
        };
        out.push_str(&format!(
            "{:<name_w$} {:>8} {:>8} {:>8} {:>10}\n",
            r.name, r.missing, r.imputed, r.correct, precision
        ));
    }
    out
}

/// One-line summary used by the examples: duration plus the triple.
pub fn summarize(scores: &Scores, elapsed: Duration) -> String {
    format!("{} [{}]", scores_line(scores), format_duration(elapsed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::evaluate;
    use renuver_data::{AttrType, Cell, Value};
    use renuver_rulekit::RuleSet;

    fn setup() -> (Relation, GroundTruth) {
        let schema = renuver_data::Schema::new([
            ("City", AttrType::Text),
            ("Zip", AttrType::Text),
        ])
        .unwrap();
        let imputed = Relation::new(
            schema,
            vec![
                vec!["Salerno".into(), "84084".into()],
                vec![Value::Null, "84084".into()],
            ],
        )
        .unwrap();
        let truth: GroundTruth = vec![
            (Cell::new(0, 0), "Salerno".into()),   // imputed correctly
            (Cell::new(1, 0), "Milano".into()),    // left missing
            (Cell::new(1, 1), "99999".into()),     // imputed wrong
        ];
        (imputed, truth)
    }

    #[test]
    fn lines_render() {
        let (rel, truth) = setup();
        let scores = evaluate(&rel, &truth, &RuleSet::new());
        let line = scores_line(&scores);
        assert!(line.contains("imputed 2/3"), "{line}");
        assert!(line.contains("correct 1"), "{line}");
        let out = RunOutcome {
            scores,
            elapsed: Duration::from_millis(470),
            peak_bytes: 0,
            tripped: None,
            work: None,
        };
        let line = outcome_line(&out);
        assert!(line.ends_with("in 470ms"), "{line}");
    }

    #[test]
    fn breakdown_routes_by_attribute() {
        let (rel, truth) = setup();
        let rows = attr_breakdown(&rel, &truth, &RuleSet::new());
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, "City");
        assert_eq!((rows[0].missing, rows[0].imputed, rows[0].correct), (2, 1, 1));
        assert_eq!(rows[1].name, "Zip");
        assert_eq!((rows[1].missing, rows[1].imputed, rows[1].correct), (1, 1, 0));
        let table = breakdown_table(&rows);
        assert!(table.contains("City"));
        assert!(table.contains("0.000")); // Zip precision
    }

    #[test]
    fn attributes_without_injections_omitted() {
        let (rel, _) = setup();
        let truth: GroundTruth = vec![(Cell::new(0, 0), "Salerno".into())];
        let rows = attr_breakdown(&rel, &truth, &RuleSet::new());
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].name, "City");
    }
}
