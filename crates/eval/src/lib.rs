//! Evaluation harness: missing-value injection, metrics, imputer adapters,
//! and resource tracking (paper Section 6.1).
//!
//! The paper's protocol, reproduced end to end:
//!
//! 1. Start from a complete instance and **inject** missing values at a
//!    rate in `[1%, 5%]`, five seeded variants per rate ([`inject()`]).
//! 2. Run each imputation approach through the common [`Imputer`] trait.
//! 3. **Validate** every imputed cell against the ground truth with the
//!    dataset's rule file — not just strict equality ([`metrics`]).
//! 4. Report precision / recall / F1 averaged over the variants, plus wall
//!    time and peak memory ([`budget`], [`runner`]).

pub mod auto_rules;
pub mod budget;
pub mod diff;
pub mod imputer;
pub mod inject;
pub mod metrics;
pub mod report;
pub mod runner;
pub mod sweep;

pub use auto_rules::auto_rules;
pub use diff::{diff_table, MetricsDiff, WorkMetrics};
pub use imputer::{
    DerandImputer, GreyKnnImputer, HolocleanImputer, Imputer, RenuverImputer,
};
pub use inject::{inject, inject_count, inject_with, GroundTruth, InjectionPattern};
pub use metrics::{evaluate, Scores};
pub use runner::{
    average_scores, run_variants, run_variants_budgeted, run_variants_parallel, summarize,
    MeanStd, OutcomeSummary, RunOutcome,
};
