//! Declarative experiment sweeps.
//!
//! The paper's evaluation is a grid: approaches × missing rates ×
//! injection seeds (Figures 2–3), sometimes × datasets or sizes (Tables
//! 4–5). [`Sweep`] captures one such grid over a fixed relation and runs
//! it, yielding one averaged [`SweepCell`] per (approach, pattern, rate) —
//! the experiment binaries and the robustness study are thin formatting
//! layers over this.

use renuver_data::Relation;
use renuver_rulekit::RuleSet;

use crate::budget::measure;
use crate::imputer::Imputer;
use crate::inject::{inject_with, InjectionPattern};
use crate::metrics::evaluate;
use crate::runner::{average_scores, RunOutcome};

/// A declarative experiment grid over one relation.
pub struct Sweep<'a> {
    /// The complete instance to inject into.
    pub relation: &'a Relation,
    /// Validation rules for correctness judgments.
    pub rules: &'a RuleSet,
    /// The approaches under test.
    pub imputers: &'a [Box<dyn Imputer>],
    /// Injection mechanisms to compare (the paper uses only
    /// [`InjectionPattern::Mcar`]).
    pub patterns: &'a [(&'a str, InjectionPattern)],
    /// Missing rates.
    pub rates: &'a [f64],
    /// Injection seeds averaged per cell.
    pub seeds: &'a [u64],
}

/// One grid cell: an approach under one pattern and rate, averaged over
/// the seeds.
pub struct SweepCell {
    /// Name of the approach ([`Imputer::name`]).
    pub imputer: String,
    /// Name of the injection pattern.
    pub pattern: String,
    /// Missing rate.
    pub rate: f64,
    /// Averaged outcome.
    pub outcome: RunOutcome,
}

impl Sweep<'_> {
    /// Runs the grid, in deterministic order (pattern-major, then rate,
    /// then approach).
    pub fn run(&self) -> Vec<SweepCell> {
        let mut out = Vec::new();
        for (pattern_name, pattern) in self.patterns {
            for &rate in self.rates {
                // Inject once per (pattern, rate, seed); every approach
                // sees the same incomplete instances, as in the paper.
                let injected: Vec<_> = self
                    .seeds
                    .iter()
                    .map(|&seed| inject_with(self.relation, rate, seed, pattern))
                    .collect();
                for imputer in self.imputers {
                    let outcomes: Vec<RunOutcome> = injected
                        .iter()
                        .map(|(incomplete, truth)| {
                            let (repaired, elapsed, peak_bytes) =
                                measure(|| imputer.impute(incomplete));
                            RunOutcome {
                                scores: evaluate(&repaired, truth, self.rules),
                                elapsed,
                                peak_bytes,
                                tripped: None,
                                work: None,
                            }
                        })
                        .collect();
                    out.push(SweepCell {
                        imputer: imputer.name().to_owned(),
                        pattern: (*pattern_name).to_owned(),
                        rate,
                        outcome: average_scores(&outcomes),
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imputer::RenuverImputer;
    use renuver_core::RenuverConfig;
    use renuver_data::{AttrType, Schema, Value};
    use renuver_rfd::{Constraint, Rfd, RfdSet};

    fn paired_rel() -> Relation {
        let schema = Schema::new([("A", AttrType::Int), ("B", AttrType::Int)]).unwrap();
        let mut rows = Vec::new();
        for i in 0..30i64 {
            rows.push(vec![Value::Int(i), Value::Int(i * 7)]);
            rows.push(vec![Value::Int(i), Value::Int(i * 7)]);
        }
        Relation::new(schema, rows).unwrap()
    }

    #[test]
    fn grid_shape_and_determinism() {
        let rel = paired_rel();
        let rules = RuleSet::new();
        let rfds = RfdSet::from_vec(vec![Rfd::new(
            vec![Constraint::new(0, 0.0)],
            Constraint::new(1, 0.0),
        )]);
        let imputers: Vec<Box<dyn Imputer>> =
            vec![Box::new(RenuverImputer::new(RenuverConfig::default(), rfds))];
        let patterns = [
            ("mcar", InjectionPattern::Mcar),
            ("colB", InjectionPattern::Columns(vec![1])),
        ];
        let sweep = Sweep {
            relation: &rel,
            rules: &rules,
            imputers: &imputers,
            patterns: &patterns,
            rates: &[0.02, 0.05],
            seeds: &[1, 2],
        };
        let cells = sweep.run();
        assert_eq!(cells.len(), 4); // 2 patterns × 2 rates × 1 imputer
        assert_eq!(cells[0].pattern, "mcar");
        assert_eq!(cells[0].rate, 0.02);
        assert_eq!(cells[3].pattern, "colB");
        // Deterministic across runs.
        let again = sweep.run();
        for (a, b) in cells.iter().zip(&again) {
            assert_eq!(a.outcome.scores, b.outcome.scores);
        }
        // The column-restricted pattern fills B-only holes: donor column A
        // intact → recall at least as high as MCAR at the same rate.
        let mcar = &cells[1].outcome.scores; // mcar @ 0.05
        let colb = &cells[3].outcome.scores; // colB @ 0.05
        assert!(colb.recall >= mcar.recall - 1e-9, "{colb:?} vs {mcar:?}");
    }
}
