//! Experiment runner: inject → impute → validate, across seeds and rates.

use std::time::Duration;

use renuver_budget::{Budget, BudgetTrip};
use renuver_data::Relation;
use renuver_rulekit::RuleSet;

use crate::budget::measure;
use crate::diff::WorkMetrics;
use crate::imputer::Imputer;
use crate::inject::inject;
use crate::metrics::{evaluate, Scores};

/// Outcome of one imputation run (one injected variant).
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Effectiveness metrics.
    pub scores: Scores,
    /// Wall-clock time of the imputation call.
    pub elapsed: Duration,
    /// Heap high-water mark during the call (0 unless the binary installs
    /// [`crate::budget::TrackingAlloc`]).
    pub peak_bytes: usize,
    /// Which budget limit tripped during the run, if any (`None` for
    /// unbudgeted runs and runs that finished inside their budget). A
    /// tripped run's scores describe a *partial* repair.
    pub tripped: Option<BudgetTrip>,
    /// Diffable work counters, when the approach tracks them (the
    /// budgeted runner fills this via [`Imputer::impute_measured`]; the
    /// parallel runner does not).
    pub work: Option<WorkMetrics>,
}

/// Runs `imputer` on `seeds.len()` injected variants of `rel` at the given
/// missing `rate`, validating with `rules` (the paper averages five
/// variants per rate).
pub fn run_variants(
    rel: &Relation,
    rules: &RuleSet,
    imputer: &dyn Imputer,
    rate: f64,
    seeds: &[u64],
) -> Vec<RunOutcome> {
    run_variants_budgeted(rel, rules, imputer, rate, seeds, &Budget::unlimited)
}

/// [`run_variants`] under an execution budget. `make_budget` is invoked
/// once per variant — each run gets a **fresh** budget, so a deadline or
/// ceiling tripped by one variant does not poison the rest of the batch.
/// Each outcome records which limit (if any) its run tripped.
pub fn run_variants_budgeted(
    rel: &Relation,
    rules: &RuleSet,
    imputer: &dyn Imputer,
    rate: f64,
    seeds: &[u64],
    make_budget: &(dyn Fn() -> Budget + Sync),
) -> Vec<RunOutcome> {
    seeds
        .iter()
        .map(|&seed| {
            let (incomplete, truth) = inject(rel, rate, seed);
            let budget = make_budget();
            let ((repaired, work), elapsed, peak_bytes) =
                measure(|| imputer.impute_measured(&incomplete, &budget));
            RunOutcome {
                scores: evaluate(&repaired, &truth, rules),
                elapsed,
                peak_bytes,
                tripped: budget.trip(),
                work,
            }
        })
        .collect()
}

/// [`run_variants`] with the seeds fanned out across threads. Scores are
/// identical to the serial version (each variant is independent); wall
/// times remain meaningful per run, but the **peak-memory** figures are
/// not attributable to a single run when variants overlap — use the serial
/// runner for memory studies (Tables 4–5 do).
pub fn run_variants_parallel(
    rel: &Relation,
    rules: &RuleSet,
    imputer: &dyn Imputer,
    rate: f64,
    seeds: &[u64],
) -> Vec<RunOutcome> {
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = seeds
            .iter()
            .map(|&seed| {
                scope.spawn(move |_| {
                    let (incomplete, truth) = inject(rel, rate, seed);
                    let (repaired, elapsed, peak_bytes) =
                        measure(|| imputer.impute(&incomplete));
                    RunOutcome {
                        scores: evaluate(&repaired, &truth, rules),
                        elapsed,
                        peak_bytes,
                        tripped: None,
                        work: None,
                    }
                })
            })
            .collect();
        // A worker that panicked has no outcome to contribute; its variant
        // is dropped rather than taking the whole batch down.
        handles.into_iter().filter_map(|h| h.join().ok()).collect()
    })
    .unwrap_or_default()
}

/// Mean and sample standard deviation of a metric across outcomes —
/// the dispersion behind the paper's per-rate averages, which the paper
/// itself does not report ("a slight variability in missing rates…").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanStd {
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 for fewer than two outcomes).
    pub std: f64,
}

impl std::fmt::Display for MeanStd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3} ± {:.3}", self.mean, self.std)
    }
}

fn mean_std(values: impl Iterator<Item = f64> + Clone) -> MeanStd {
    let n = values.clone().count();
    if n == 0 {
        return MeanStd { mean: 0.0, std: 0.0 };
    }
    let mean = values.clone().sum::<f64>() / n as f64;
    if n < 2 {
        return MeanStd { mean, std: 0.0 };
    }
    let var = values.map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
    MeanStd { mean, std: var.sqrt() }
}

/// Per-metric dispersion of a batch of outcomes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutcomeSummary {
    /// Precision across the variants.
    pub precision: MeanStd,
    /// Recall across the variants.
    pub recall: MeanStd,
    /// F1 across the variants.
    pub f1: MeanStd,
}

/// Summarizes outcomes as mean ± sample std per metric.
pub fn summarize(outcomes: &[RunOutcome]) -> OutcomeSummary {
    OutcomeSummary {
        precision: mean_std(outcomes.iter().map(|o| o.scores.precision)),
        recall: mean_std(outcomes.iter().map(|o| o.scores.recall)),
        f1: mean_std(outcomes.iter().map(|o| o.scores.f1)),
    }
}

/// Averages the metric triple over a batch of outcomes, as the paper does
/// per missing rate. Time is averaged; memory takes the maximum.
pub fn average_scores(outcomes: &[RunOutcome]) -> RunOutcome {
    assert!(!outcomes.is_empty(), "cannot average zero outcomes");
    let n = outcomes.len() as f64;
    let mut p = 0.0;
    let mut r = 0.0;
    let mut f = 0.0;
    let mut missing = 0;
    let mut imputed = 0;
    let mut correct = 0;
    let mut elapsed = Duration::ZERO;
    let mut peak = 0usize;
    for o in outcomes {
        p += o.scores.precision;
        r += o.scores.recall;
        f += o.scores.f1;
        missing += o.scores.missing;
        imputed += o.scores.imputed;
        correct += o.scores.correct;
        elapsed += o.elapsed;
        peak = peak.max(o.peak_bytes);
    }
    RunOutcome {
        scores: Scores {
            precision: p / n,
            recall: r / n,
            f1: f / n,
            missing,
            imputed,
            correct,
        },
        elapsed: elapsed / outcomes.len() as u32,
        peak_bytes: peak,
        // An average over any tripped run is itself partial; surface the
        // first trip so callers cannot mistake it for a complete batch.
        tripped: outcomes.iter().find_map(|o| o.tripped),
        // Work counters are per-run; an average has none.
        work: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imputer::RenuverImputer;
    use renuver_core::RenuverConfig;
    use renuver_data::{AttrType, Schema, Value};
    use renuver_rfd::{Constraint, Rfd, RfdSet};
    use renuver_rulekit::RuleSet;

    /// A relation where A(≤0) → B(≤0) perfectly reconstructs B.
    fn paired_rel() -> Relation {
        let schema = Schema::new([("A", AttrType::Int), ("B", AttrType::Int)]).unwrap();
        let mut rows = Vec::new();
        for i in 0..40i64 {
            // Two copies of each pair so a donor survives injection.
            rows.push(vec![Value::Int(i), Value::Int(i * 7)]);
            rows.push(vec![Value::Int(i), Value::Int(i * 7)]);
        }
        Relation::new(schema, rows).unwrap()
    }

    fn rfds() -> RfdSet {
        RfdSet::from_vec(vec![
            Rfd::new(vec![Constraint::new(0, 0.0)], Constraint::new(1, 0.0)),
            Rfd::new(vec![Constraint::new(1, 0.0)], Constraint::new(0, 0.0)),
        ])
    }

    #[test]
    fn renuver_reconstructs_planted_dependency() {
        let rel = paired_rel();
        let imputer = RenuverImputer::new(RenuverConfig::default(), rfds());
        let outcomes = run_variants(&rel, &RuleSet::new(), &imputer, 0.03, &[1, 2, 3]);
        assert_eq!(outcomes.len(), 3);
        let avg = average_scores(&outcomes);
        // With a duplicate of every row, nearly every injected cell has a
        // surviving donor; precision should be perfect, recall high.
        assert!(avg.scores.precision > 0.95, "precision {avg:?}");
        assert!(avg.scores.recall > 0.7, "recall {avg:?}");
    }

    #[test]
    fn budgeted_runner_records_trips() {
        let rel = paired_rel();
        let imputer = RenuverImputer::new(
            RenuverConfig { parallelism: 1, ..RenuverConfig::default() },
            rfds(),
        );
        let outcomes = run_variants_budgeted(
            &rel,
            &RuleSet::new(),
            &imputer,
            0.03,
            &[1, 2],
            &|| Budget::unlimited().with_ops_limit(0),
        );
        assert_eq!(outcomes.len(), 2);
        for o in &outcomes {
            // Each variant got a FRESH zero-op budget and tripped it.
            assert_eq!(o.tripped, Some(BudgetTrip::Ops));
            assert_eq!(o.scores.imputed, 0, "zero-op budget imputes nothing");
        }
        // Unbudgeted runs never report a trip.
        let free = run_variants(&rel, &RuleSet::new(), &imputer, 0.03, &[1]);
        assert!(free[0].tripped.is_none());
    }

    #[test]
    fn parallel_matches_serial_scores() {
        let rel = paired_rel();
        let imputer = RenuverImputer::new(RenuverConfig::default(), rfds());
        let serial = run_variants(&rel, &RuleSet::new(), &imputer, 0.04, &[1, 2, 3, 4]);
        let parallel =
            run_variants_parallel(&rel, &RuleSet::new(), &imputer, 0.04, &[1, 2, 3, 4]);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.scores, p.scores);
        }
    }

    #[test]
    fn average_is_elementwise() {
        let mk = |p: f64, r: f64| RunOutcome {
            scores: Scores {
                precision: p,
                recall: r,
                f1: 0.0,
                missing: 10,
                imputed: 5,
                correct: 4,
            },
            elapsed: Duration::from_secs(2),
            peak_bytes: 100,
            tripped: None,
            work: None,
        };
        let avg = average_scores(&[mk(1.0, 0.5), mk(0.5, 1.0)]);
        assert_eq!(avg.scores.precision, 0.75);
        assert_eq!(avg.scores.recall, 0.75);
        assert_eq!(avg.scores.missing, 20);
        assert_eq!(avg.elapsed, Duration::from_secs(2));
    }

    #[test]
    #[should_panic(expected = "zero outcomes")]
    fn average_of_nothing_panics() {
        let _ = average_scores(&[]);
    }

    #[test]
    fn summary_mean_and_std() {
        let mk = |p: f64| RunOutcome {
            scores: Scores {
                precision: p,
                recall: p,
                f1: p,
                missing: 1,
                imputed: 1,
                correct: 1,
            },
            elapsed: Duration::ZERO,
            peak_bytes: 0,
            tripped: None,
            work: None,
        };
        let s = summarize(&[mk(0.8), mk(1.0)]);
        assert!((s.precision.mean - 0.9).abs() < 1e-12);
        // Sample std of {0.8, 1.0} = sqrt(0.02) ≈ 0.1414.
        assert!((s.precision.std - 0.02f64.sqrt()).abs() < 1e-12);
        assert_eq!(s.precision.to_string(), "0.900 ± 0.141");

        let single = summarize(&[mk(0.7)]);
        assert_eq!(single.f1.std, 0.0);
        let empty = summarize(&[]);
        assert_eq!(empty.recall.mean, 0.0);
    }
}
