//! The common imputer interface and adapters for all four approaches.

use renuver_baselines::{Derand, DerandConfig, GreyKnn, GreyKnnConfig, Holoclean, HolocleanConfig};
use renuver_budget::Budget;
use renuver_core::{Renuver, RenuverConfig};
use renuver_data::Relation;
use renuver_dc::DenialConstraint;
use renuver_rfd::RfdSet;

use crate::diff::WorkMetrics;

/// A missing-value imputation approach: relation in, repaired relation out.
///
/// Metadata (RFDs for the dependency-driven approaches, DCs for Holoclean)
/// is bound into the adapter at construction, mirroring the paper's setup
/// where discovery runs once per dataset before the comparison. The
/// `Send + Sync` bound lets the runner fan seeds out across threads.
pub trait Imputer: Send + Sync {
    /// Display name used in experiment output.
    fn name(&self) -> &str;

    /// Imputes the relation. Cells an approach cannot fill stay missing.
    fn impute(&self, rel: &Relation) -> Relation;

    /// Imputes under an execution [`Budget`]. Approaches that do not poll a
    /// budget run to completion (the default); budget-aware approaches
    /// return whatever partial repair they reached when a limit tripped.
    /// The caller inspects `budget.trip()` afterwards to learn whether —
    /// and which — limit was hit.
    fn impute_budgeted(&self, rel: &Relation, budget: &Budget) -> Relation {
        let _ = budget;
        self.impute(rel)
    }

    /// [`Imputer::impute_budgeted`], additionally reporting the run's
    /// diffable work counters ([`WorkMetrics`]) when the approach tracks
    /// them. The default reports `None`; RENUVER overrides it.
    fn impute_measured(&self, rel: &Relation, budget: &Budget) -> (Relation, Option<WorkMetrics>) {
        (self.impute_budgeted(rel, budget), None)
    }
}

/// RENUVER behind the [`Imputer`] interface.
pub struct RenuverImputer {
    engine: Renuver,
    config: RenuverConfig,
    rfds: RfdSet,
}

impl RenuverImputer {
    /// Binds a configured engine to a dependency set.
    pub fn new(config: RenuverConfig, rfds: RfdSet) -> Self {
        RenuverImputer { engine: Renuver::new(config.clone()), config, rfds }
    }
}

impl Imputer for RenuverImputer {
    fn name(&self) -> &str {
        "RENUVER"
    }

    fn impute(&self, rel: &Relation) -> Relation {
        self.engine.impute(rel, &self.rfds).relation
    }

    fn impute_budgeted(&self, rel: &Relation, budget: &Budget) -> Relation {
        // Fresh engine with the caller's budget installed; the bound
        // configuration is otherwise unchanged.
        let cfg = RenuverConfig { budget: budget.clone(), ..self.config.clone() };
        Renuver::new(cfg).impute(rel, &self.rfds).relation
    }

    fn impute_measured(&self, rel: &Relation, budget: &Budget) -> (Relation, Option<WorkMetrics>) {
        let cfg = RenuverConfig { budget: budget.clone(), ..self.config.clone() };
        let result = Renuver::new(cfg).impute(rel, &self.rfds);
        let work = WorkMetrics::from_stats(&result.stats, result.budget.phases.clone());
        (result.relation, Some(work))
    }
}

/// Derand behind the [`Imputer`] interface.
pub struct DerandImputer {
    derand: Derand,
    rfds: RfdSet,
}

impl DerandImputer {
    /// Binds the Derand engine to its DD (RFD) set.
    pub fn new(config: DerandConfig, rfds: RfdSet) -> Self {
        DerandImputer { derand: Derand::new(config), rfds }
    }
}

impl Imputer for DerandImputer {
    fn name(&self) -> &str {
        "Derand"
    }

    fn impute(&self, rel: &Relation) -> Relation {
        self.derand.impute(rel, &self.rfds)
    }
}

/// Holoclean behind the [`Imputer`] interface.
pub struct HolocleanImputer {
    holoclean: Holoclean,
    dcs: Vec<DenialConstraint>,
}

impl HolocleanImputer {
    /// Binds the Holoclean engine to its denial constraints.
    pub fn new(config: HolocleanConfig, dcs: Vec<DenialConstraint>) -> Self {
        HolocleanImputer { holoclean: Holoclean::new(config), dcs }
    }
}

impl Imputer for HolocleanImputer {
    fn name(&self) -> &str {
        "Holoclean"
    }

    fn impute(&self, rel: &Relation) -> Relation {
        self.holoclean.impute(rel, &self.dcs)
    }
}

/// Grey kNN behind the [`Imputer`] interface.
pub struct GreyKnnImputer {
    knn: GreyKnn,
}

impl GreyKnnImputer {
    /// Creates the adapter.
    pub fn new(config: GreyKnnConfig) -> Self {
        GreyKnnImputer { knn: GreyKnn::new(config) }
    }
}

impl Default for GreyKnnImputer {
    fn default() -> Self {
        GreyKnnImputer::new(GreyKnnConfig::default())
    }
}

impl Imputer for GreyKnnImputer {
    fn name(&self) -> &str {
        "kNN"
    }

    fn impute(&self, rel: &Relation) -> Relation {
        self.knn.impute(rel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use renuver_data::{AttrType, Schema, Value};
    use renuver_rfd::{Constraint, Rfd};

    fn sample() -> Relation {
        let schema = Schema::new([("A", AttrType::Int), ("B", AttrType::Int)]).unwrap();
        Relation::new(
            schema,
            vec![
                vec![Value::Int(1), Value::Int(10)],
                vec![Value::Int(1), Value::Null],
            ],
        )
        .unwrap()
    }

    fn rfds() -> RfdSet {
        RfdSet::from_vec(vec![Rfd::new(
            vec![Constraint::new(0, 0.0)],
            Constraint::new(1, 0.0),
        )])
    }

    #[test]
    fn all_adapters_run_through_the_trait() {
        let rel = sample();
        let imputers: Vec<Box<dyn Imputer>> = vec![
            Box::new(RenuverImputer::new(RenuverConfig::default(), rfds())),
            Box::new(DerandImputer::new(DerandConfig::default(), rfds())),
            Box::new(HolocleanImputer::new(HolocleanConfig::default(), vec![])),
            Box::new(GreyKnnImputer::default()),
        ];
        for imp in &imputers {
            let out = imp.impute(&rel);
            assert_eq!(out.len(), rel.len(), "{}", imp.name());
            assert!(out.missing_count() <= rel.missing_count(), "{}", imp.name());
        }
    }

    #[test]
    fn names_are_distinct() {
        let names = ["RENUVER", "Derand", "Holoclean", "kNN"];
        let mut sorted = names;
        sorted.sort_unstable();
        assert!(sorted.windows(2).all(|w| w[0] != w[1]));
    }
}
