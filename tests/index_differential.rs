//! Differential harness: the index-accelerated paths must be bit-for-bit
//! identical to the naive reference scans.
//!
//! The [`renuver::distance::SimilarityIndex`] only *prunes which rows
//! receive the exact distance check* — candidate generation, key
//! detection, and verification all re-apply the same predicates the scan
//! does (the superset contract; see `renuver_distance::index`). These
//! tests pin that contract at three levels:
//!
//! 1. **Unit-differential** — candidate sets and `VerifyPlan` admit
//!    decisions compared pairwise between scan and index on randomly
//!    generated relations and RFD sets.
//! 2. **End-to-end** — full [`ImputationResult`]s (repaired relation,
//!    imputed cells, per-cell outcomes, stats, trace) compared across
//!    `IndexMode::{Scan, Indexed, Auto}` on random inputs, on the paper's
//!    restaurant and bridges stand-ins, and on a 5 000-row synthetic.
//! 3. **Regression corpus** — adversarial inputs that stress the index's
//!    edge handling (NaN/infinite thresholds, NaN data, unicode, empty
//!    strings, imputation-introduced out-of-dictionary values), kept as
//!    deterministic cases.
//!
//! Budget-limited runs are exempt from cross-mode equality — the two
//! paths hit different checkpoint counts, so a tripped budget truncates
//! them at different cells by design. For those, only the accounting
//! invariants are asserted (see the degradation section).

use proptest::prelude::*;

use renuver::budget::{Budget, ManualClock};
use renuver::core::{
    find_candidate_tuples, find_candidate_tuples_with, ImputationResult, IndexMode, Renuver,
    RenuverConfig, VerifyPlan, VerifyScope,
};
use renuver::data::{AttrType, Relation, Schema, Value};
use renuver::datasets::Dataset;
use renuver::distance::{DistanceOracle, SimilarityIndex};
use renuver::eval::inject;
use renuver::rfd::discovery::{discover, DiscoveryConfig};
use renuver::rfd::{Constraint, Rfd, RfdSet};

/// Matches the engine's dictionary-matrix cap (algorithm.rs).
const ORACLE_CAP: usize = 3000;

fn run_mode(rel: &Relation, sigma: &RfdSet, mode: IndexMode) -> ImputationResult {
    let cfg = RenuverConfig {
        parallelism: 1,
        trace: true,
        index_mode: mode,
        ..RenuverConfig::default()
    };
    Renuver::new(cfg).impute(rel, sigma)
}

/// Canonical rendering of everything decision-relevant in a result: the
/// repaired relation, imputed cells, outcomes, stats, and trace — but not
/// the budget report (elapsed time and checkpoint counts legitimately
/// differ between modes). Comparing the `Debug` text instead of deriving
/// `PartialEq` makes NaN thresholds compare equal to themselves: a run
/// imputing via an RFD with a NaN threshold is still *identical* across
/// modes even though `NaN != NaN` under IEEE comparison.
fn canon(r: &ImputationResult) -> String {
    format!(
        "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
        r.relation, r.imputed, r.unimputed, r.outcomes, r.stats, r.trace
    )
}

/// Asserts all three index modes produce the same result and returns it.
fn assert_modes_agree(rel: &Relation, sigma: &RfdSet) -> ImputationResult {
    let scan = run_mode(rel, sigma, IndexMode::Scan);
    let indexed = run_mode(rel, sigma, IndexMode::Indexed);
    assert_eq!(canon(&scan), canon(&indexed), "indexed run diverged from scan");
    let auto = run_mode(rel, sigma, IndexMode::Auto);
    assert_eq!(canon(&scan), canon(&auto), "auto run diverged from scan");
    scan
}

// ----------------------------------------------------- random generators

/// Small random relations biased toward value collisions, so RFDs with
/// tight thresholds actually have satisfying pairs and candidate sets are
/// non-trivial. Nulls appear everywhere; floats include NaN and infinity.
fn arb_relation() -> impl Strategy<Value = Relation> {
    let col_types = prop::collection::vec(
        prop_oneof![
            Just(AttrType::Int),
            Just(AttrType::Float),
            Just(AttrType::Text),
        ],
        2..5,
    );
    (col_types, 2usize..14).prop_flat_map(|(types, rows)| {
        let schema = Schema::new(
            types
                .iter()
                .enumerate()
                .map(|(i, t)| (format!("c{i}"), *t)),
        )
        .expect("generated names are distinct");
        let cell = |ty: AttrType| -> BoxedStrategy<Value> {
            match ty {
                AttrType::Int => prop_oneof![
                    1 => Just(Value::Null),
                    6 => (-3i64..4).prop_map(Value::Int),
                ]
                .boxed(),
                AttrType::Float => prop_oneof![
                    1 => Just(Value::Null),
                    5 => (-2.0f64..2.0).prop_map(|f| Value::Float((f * 2.0).round() / 2.0)),
                    1 => Just(Value::Float(f64::NAN)),
                    1 => Just(Value::Float(f64::INFINITY)),
                ]
                .boxed(),
                _ => prop_oneof![
                    1 => Just(Value::Null),
                    6 => "[ab]{0,3}".prop_map(Value::from),
                    1 => Just(Value::Text("αβ".into())),
                ]
                .boxed(),
            }
        };
        let cells: Vec<BoxedStrategy<Value>> = types.iter().map(|t| cell(*t)).collect();
        let row = BoxedStrategy::new(move |rng| {
            cells.iter().map(|s| s.generate(rng)).collect::<Vec<Value>>()
        });
        prop::collection::vec(row, rows..rows + 1).prop_map(move |tuples| {
            Relation::new(schema.clone(), tuples).expect("tuples match the schema")
        })
    })
}

/// Random RFD sets over `arity` attributes, thresholds drawn to include
/// the index's hard cases: exact match, small bands, NaN, infinity.
fn arb_rfds(arity: usize) -> BoxedStrategy<RfdSet> {
    let thr = prop_oneof![
        Just(0.0f64),
        Just(1.0),
        Just(2.0),
        Just(5.0),
        Just(f64::NAN),
        Just(f64::INFINITY),
    ];
    let rfd = (0..arity, 0..arity, thr.clone(), thr).prop_map(
        move |(lhs, rhs, lhs_thr, rhs_thr)| {
            let lhs = if lhs == rhs { (lhs + 1) % arity } else { lhs };
            Rfd::new(vec![Constraint::new(lhs, lhs_thr)], Constraint::new(rhs, rhs_thr))
        },
    );
    prop::collection::vec(rfd, 1..5).prop_map(RfdSet::from_vec).boxed()
}

/// Per-suite case count, overridable by `PROPTEST_CASES` so CI can pin a
/// small, reproducible count without editing this file.
fn cases(default_cases: u32) -> ProptestConfig {
    let n = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default_cases);
    ProptestConfig::with_cases(n)
}

// ------------------------------------------------ unit-level differential

proptest! {
    #![proptest_config(cases(96))]

    /// Candidate generation: for every missing cell and the full RFD set
    /// as one cluster, the indexed donor retrieval must yield exactly the
    /// scan's ranked candidate list.
    #[test]
    fn candidate_sets_match_scan(
        input in arb_relation().prop_flat_map(|rel| {
            let arity = rel.arity();
            (Just(rel), arb_rfds(arity))
        }),
    ) {
        let (rel, sigma) = input;
        let oracle = DistanceOracle::build(&rel, ORACLE_CAP);
        let index = SimilarityIndex::build(&rel, &oracle);
        for row in 0..rel.len() {
            for attr in 0..rel.arity() {
                if !rel.is_missing(row, attr) {
                    continue;
                }
                let cluster: Vec<&Rfd> =
                    sigma.iter().filter(|r| r.rhs_attr() == attr).collect();
                if cluster.is_empty() {
                    continue;
                }
                let scan = find_candidate_tuples(&oracle, &rel, row, attr, &cluster);
                let fast =
                    find_candidate_tuples_with(&oracle, Some(&index), &rel, row, attr, &cluster);
                prop_assert_eq!(scan, fast, "cell ({}, {})", row, attr);
            }
        }
    }

    /// Verification: the indexed-built plan must admit exactly the donors
    /// the scan-built plan admits, for both verify scopes.
    #[test]
    fn verify_admits_match_scan(
        input in arb_relation().prop_flat_map(|rel| {
            let arity = rel.arity();
            (Just(rel), arb_rfds(arity))
        }),
    ) {
        let (rel, sigma) = input;
        let oracle = DistanceOracle::build(&rel, ORACLE_CAP);
        let index = SimilarityIndex::build(&rel, &oracle);
        for row in 0..rel.len() {
            for attr in 0..rel.arity() {
                if !rel.is_missing(row, attr) {
                    continue;
                }
                for scope in [VerifyScope::LhsOnly, VerifyScope::Full] {
                    let scan =
                        VerifyPlan::build(&oracle, &rel, row, attr, sigma.iter(), scope);
                    let fast = VerifyPlan::build_with(
                        &oracle, Some(&index), &rel, row, attr, sigma.iter(), scope,
                    );
                    for donor in 0..rel.len() {
                        if rel.is_missing(donor, attr) {
                            continue;
                        }
                        prop_assert_eq!(
                            scan.admits(&oracle, &rel, attr, donor),
                            fast.admits(&oracle, &rel, attr, donor),
                            "cell ({}, {}), donor {}, scope {:?}",
                            row, attr, donor, scope
                        );
                    }
                }
            }
        }
    }
}

// ------------------------------------------------- end-to-end differential

proptest! {
    #![proptest_config(cases(64))]

    /// The headline guarantee: full imputation runs make identical
    /// decisions in every index mode.
    #[test]
    fn imputation_results_match_scan(
        input in arb_relation().prop_flat_map(|rel| {
            let arity = rel.arity();
            (Just(rel), arb_rfds(arity))
        }),
    ) {
        let (rel, sigma) = input;
        let scan = run_mode(&rel, &sigma, IndexMode::Scan);
        let indexed = run_mode(&rel, &sigma, IndexMode::Indexed);
        prop_assert_eq!(canon(&scan), canon(&indexed));
        prop_assert_eq!(
            scan.stats.imputed + scan.stats.unimputed,
            scan.stats.missing_total
        );
    }
}

#[test]
fn restaurant_sample_identical_across_modes() {
    let rel = Dataset::Restaurant.relation(11);
    let (incomplete, _truth) = inject(&rel, 0.03, 11);
    let sigma = discover(
        &incomplete,
        &DiscoveryConfig { max_lhs: 2, ..DiscoveryConfig::with_limit(6.0) },
    );
    let result = assert_modes_agree(&incomplete, &sigma);
    assert!(result.stats.imputed > 0, "degenerate fixture: nothing imputed");
}

#[test]
fn bridges_sample_identical_across_modes() {
    // 108 rows: below AUTO_MIN_ROWS, so Auto takes the scan path and the
    // Indexed mode is the one actually exercising the index here.
    let rel = Dataset::Bridges.relation(7);
    let (incomplete, _truth) = inject(&rel, 0.05, 7);
    let sigma = discover(
        &incomplete,
        &DiscoveryConfig { max_lhs: 2, ..DiscoveryConfig::with_limit(6.0) },
    );
    let result = assert_modes_agree(&incomplete, &sigma);
    assert!(result.stats.imputed > 0, "degenerate fixture: nothing imputed");
}

/// Mirrors `tests/parallel_determinism.rs`: 5 000 rows, high-cardinality
/// text columns, planted RFDs — large enough that the index build and all
/// three query paths (candidates, keys, verification) run in earnest.
fn synthetic_5k() -> (Relation, RfdSet) {
    let schema = Schema::new([
        ("Name", AttrType::Text),
        ("City", AttrType::Text),
        ("Zip", AttrType::Text),
        ("Class", AttrType::Int),
    ])
    .unwrap();
    let rows: Vec<Vec<Value>> = (0..5_000usize)
        .map(|i| {
            let city_id = i % 40;
            vec![
                Value::from(format!("Shop-{:04}", i % 800).as_str()),
                Value::from(format!("City{city_id:02}").as_str()),
                Value::from(format!("9{:04}", city_id * 7).as_str()),
                Value::Int((i % 9) as i64),
            ]
        })
        .collect();
    let rel = Relation::new(schema, rows).unwrap();
    let sigma = RfdSet::from_text(
        "City(<=0) -> Zip(<=0)\n\
         Zip(<=1) -> City(<=3)\n\
         Name(<=3) -> City(<=6)\n\
         Zip(<=0) -> Class(<=8)",
        rel.schema(),
    )
    .unwrap();
    (rel, sigma)
}

#[test]
fn synthetic_5k_identical_across_modes() {
    let (rel, sigma) = synthetic_5k();
    let (incomplete, truth) = inject(&rel, 0.002, 23);
    assert!(truth.len() > 10, "fixture should knock out a few dozen cells");
    let result = assert_modes_agree(&incomplete, &sigma);
    assert!(result.stats.imputed > 0, "degenerate fixture: nothing imputed");
}

// -------------------------------------------------------- regression corpus
//
// Deterministic adversarial cases. None of these ever diverged during
// development, but each targets an edge the random generators only rarely
// hit; keeping them explicit makes a future divergence reproducible
// without a proptest seed.

fn text_relation(cols: &[(&str, &[&str])]) -> Relation {
    let schema =
        Schema::new(cols.iter().map(|(n, _)| ((*n).to_owned(), AttrType::Text))).unwrap();
    let rows = cols[0].1.len();
    let tuples: Vec<Vec<Value>> = (0..rows)
        .map(|i| {
            cols.iter()
                .map(|(_, vals)| match vals[i] {
                    "_" => Value::Null,
                    v => Value::from(v),
                })
                .collect()
        })
        .collect();
    Relation::new(schema, tuples).unwrap()
}

#[test]
fn regression_nan_and_infinite_thresholds() {
    let rel = text_relation(&[
        ("A", &["x", "x", "y", "y"]),
        ("B", &["p", "_", "q", "_"]),
    ]);
    for (lhs_thr, rhs_thr) in [
        (f64::NAN, 0.0),
        (0.0, f64::NAN),
        (f64::INFINITY, 0.0),
        (0.0, f64::INFINITY),
        (f64::INFINITY, f64::INFINITY),
        (-1.0, 0.0),
    ] {
        let sigma = RfdSet::from_vec(vec![Rfd::new(
            vec![Constraint::new(0, lhs_thr)],
            Constraint::new(1, rhs_thr),
        )]);
        assert_modes_agree(&rel, &sigma);
    }
}

#[test]
fn regression_nan_and_infinite_numeric_values() {
    let schema =
        Schema::new([("N", AttrType::Float), ("B", AttrType::Text)]).unwrap();
    let rel = Relation::new(
        schema,
        vec![
            vec![Value::Float(1.0), Value::Text("p".into())],
            vec![Value::Float(f64::NAN), Value::Text("p".into())],
            vec![Value::Float(f64::INFINITY), Value::Text("q".into())],
            vec![Value::Float(-0.0), Value::Null],
            vec![Value::Float(0.0), Value::Null],
        ],
    )
    .unwrap();
    let sigma = RfdSet::from_vec(vec![Rfd::new(
        vec![Constraint::new(0, 1.0)],
        Constraint::new(1, 0.0),
    )]);
    assert_modes_agree(&rel, &sigma);
}

#[test]
fn regression_unicode_and_empty_strings() {
    let rel = text_relation(&[
        ("A", &["", "αβγ", "αβ", "a", "", "αβγ"]),
        ("B", &["p", "q", "_", "p", "_", "q"]),
    ]);
    let sigma = RfdSet::from_vec(vec![
        Rfd::new(vec![Constraint::new(0, 1.0)], Constraint::new(1, 0.0)),
        Rfd::new(vec![Constraint::new(0, 0.0)], Constraint::new(1, 1.0)),
    ]);
    assert_modes_agree(&rel, &sigma);
}

#[test]
fn regression_imputation_introduces_foreign_values() {
    // Column B's dictionary is frozen at oracle build; imputing B cells
    // then using B as an LHS forces the index through its foreign-row
    // (out-of-dictionary) path on later cells of the same run.
    let rel = text_relation(&[
        ("A", &["k1", "k1", "k2", "k2", "k3", "k3"]),
        ("B", &["v1", "_", "v2", "_", "v3", "_"]),
        ("C", &["w1", "w1", "w2", "_", "w3", "_"]),
    ]);
    let sigma = RfdSet::from_vec(vec![
        Rfd::new(vec![Constraint::new(0, 0.0)], Constraint::new(1, 1.0)),
        Rfd::new(vec![Constraint::new(1, 0.0)], Constraint::new(2, 1.0)),
    ]);
    let result = assert_modes_agree(&rel, &sigma);
    assert!(result.stats.imputed >= 2, "fixture should chain imputations");
}

// --------------------------------------------- degradation and accounting
//
// Budget-limited runs may NOT be compared across modes: the indexed path
// executes fewer checkpoints, so the same ops limit truncates the two
// runs at different cells. What must survive degradation is the
// accounting contract: every missing cell gets exactly one outcome.

fn holey_relation() -> (Relation, RfdSet) {
    let schema = Schema::new([
        ("A", AttrType::Text),
        ("B", AttrType::Text),
        ("C", AttrType::Text),
    ])
    .unwrap();
    let rows: Vec<Vec<Value>> = (0..300usize)
        .map(|i| {
            vec![
                Value::from(format!("a{:02}", i % 37).as_str()),
                Value::from(format!("b{:03}", i % 61).as_str()),
                if i % 7 == 3 {
                    Value::Null
                } else {
                    Value::from(format!("c{:02}", i % 37).as_str())
                },
            ]
        })
        .collect();
    let rel = Relation::new(schema, rows).unwrap();
    let sigma = RfdSet::from_text(
        "A(<=0), B(<=0) -> C(<=0)\nA(<=1) -> C(<=2)",
        rel.schema(),
    )
    .unwrap();
    (rel, sigma)
}

#[test]
fn outcome_accounting_survives_ops_limit_sweep_under_indexing() {
    let (rel, sigma) = holey_relation();
    let missing = rel.missing_count();
    assert!(missing > 20, "fixture needs plenty of holes");
    // Sweep ops limits across the whole degradation range: tripping during
    // index construction, during key partitioning, mid-run, and not at all.
    for ops in [0u64, 1, 2, 4, 8, 16, 64, 256, 1024, 16384, 1 << 20] {
        for mode in [IndexMode::Indexed, IndexMode::Scan] {
            let cfg = RenuverConfig {
                parallelism: 1,
                index_mode: mode,
                budget: Budget::unlimited().with_ops_limit(ops),
                ..RenuverConfig::default()
            };
            let result = Renuver::new(cfg).impute(&rel, &sigma);
            assert_eq!(
                result.stats.imputed + result.stats.unimputed,
                result.stats.missing_total,
                "ops={ops} mode={mode:?}"
            );
            assert_eq!(result.stats.missing_total, missing, "ops={ops} mode={mode:?}");
            assert_eq!(
                result.outcomes.len(),
                missing,
                "every missing cell gets exactly one outcome (ops={ops} mode={mode:?})"
            );
        }
    }
}

#[test]
fn outcome_accounting_survives_pre_expired_deadline_under_indexing() {
    let (rel, sigma) = holey_relation();
    let missing = rel.missing_count();
    let clock = ManualClock::new();
    clock.advance(std::time::Duration::from_secs(3600));
    let cfg = RenuverConfig {
        parallelism: 1,
        index_mode: IndexMode::Indexed,
        budget: Budget::unlimited()
            .with_manual_clock(clock)
            .with_deadline(std::time::Duration::from_secs(1)),
        ..RenuverConfig::default()
    };
    let result = Renuver::new(cfg).impute(&rel, &sigma);
    // The deadline was already gone when the run started: nothing may be
    // imputed, the index build must degrade silently, and every hole is
    // still accounted for.
    assert_eq!(result.stats.imputed, 0);
    assert_eq!(result.stats.unimputed, missing);
    assert_eq!(result.outcomes.len(), missing);
    assert!(result.budget.tripped.is_some(), "deadline should have tripped");
}

#[test]
fn ops_limited_indexed_runs_are_deterministic() {
    // Cross-mode equality is off the table under budgets, but each mode
    // must still be reproducible against itself: ops checkpoints are
    // deterministic whether or not the index is on.
    let (rel, sigma) = holey_relation();
    for mode in [IndexMode::Indexed, IndexMode::Scan] {
        let run = || {
            let cfg = RenuverConfig {
                parallelism: 1,
                index_mode: mode,
                budget: Budget::unlimited().with_ops_limit(200),
                ..RenuverConfig::default()
            };
            Renuver::new(cfg).impute(&rel, &sigma)
        };
        assert_eq!(run(), run(), "mode={mode:?}");
    }
}
