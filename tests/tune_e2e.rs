//! End-to-end exercise of the threshold-tuning subsystem: the library
//! loop on a real dataset, CLI byte-identity across parallelism, and
//! the `/v1/tune` async job over live loopback sockets.
//!
//! What must hold:
//!
//! - Tuning on the Restaurant sample *improves* held-out F1 — the loop
//!   is not just terminating, it is finding better thresholds.
//! - A fixed `--seed` produces byte-identical tuned thresholds across
//!   repeat runs and every `--parallelism` setting.
//! - The job protocol works over raw sockets: submit → poll → result,
//!   concurrent submit → 409, DELETE mid-run → cancelled partial
//!   report, and a drain (stop flag, as SIGTERM wires it) leaves the
//!   flight event log schema-valid with paired start/terminal events.
//! - A model installed by the job's `install` step serves bit-identical
//!   `/v1/impute` answers to an engine prepared directly from the same
//!   tuned thresholds (differential test).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use renuver::core::{Engine, RenuverConfig};
use renuver::data::csv;
use renuver::obs::{json, EventLog};
use renuver::rfd::discovery::{discover, DiscoveryConfig};
use renuver::rfd::{Constraint, Rfd, RfdSet};
use renuver::serve::{Ctx, FlightOptions, JobStatus, ModelInfo, ServeConfig, Server};
use renuver::tune::{tune, TuneConfig};

// ------------------------------------------------------------ fixtures

/// Twin fixture: every row has a twin whose name differs by exactly two
/// edits (" 2" suffix) and shares its Zip. At the discovered threshold
/// (0) a masked Zip has no donor; widening Name to 2 recovers it from
/// the twin — so tuning has a real, deterministic gradient to climb.
fn twin_csv(pairs: usize) -> String {
    let mut text = String::from("Name:text,Zip:text\n");
    for i in 0..pairs {
        let c = char::from(b'a' + (i % 26) as u8);
        let base = String::from(c).repeat(8);
        text.push_str(&format!("{base},z-{i:02}\n{base} 2,z-{i:02}\n"));
    }
    text
}

fn twin_engine(pairs: usize) -> Engine {
    let rel = csv::read_str(&twin_csv(pairs)).unwrap();
    let rfds =
        RfdSet::from_vec(vec![Rfd::new(vec![Constraint::new(0, 0.0)], Constraint::new(1, 0.0))]);
    Engine::prepare(rel, rfds, RenuverConfig::default())
}

/// Slow fixture: names are pairwise far apart (distance >= 4), so a
/// tune run at a tiny `step` widens for hundreds of iterations without
/// ever reaching its target — a long-running job we can cancel or
/// drain mid-flight with no timing luck involved.
fn slow_engine() -> Engine {
    let mut text = String::from("Name:text,Zip:text\n");
    for i in 0..300 {
        let c1 = char::from(b'a' + (i % 26) as u8);
        let c2 = char::from(b'a' + ((i / 26) % 26) as u8);
        let name = format!("{}{}", String::from(c1).repeat(4), String::from(c2).repeat(4));
        text.push_str(&format!("{name},z{i:03}\n"));
    }
    let rel = csv::read_str(&text).unwrap();
    let rfds =
        RfdSet::from_vec(vec![Rfd::new(vec![Constraint::new(0, 0.0)], Constraint::new(1, 0.0))]);
    Engine::prepare(rel, rfds, RenuverConfig::default())
}

const SLOW_BODY: &str = r#"{"seed": 1, "rate": 0.5, "max_iters": 500, "step": 0.01}"#;

// ------------------------------------------------------------- harness

fn start(
    engine: Engine,
    opts: FlightOptions,
) -> (SocketAddr, Arc<Ctx>, Arc<std::sync::atomic::AtomicBool>, std::thread::JoinHandle<u64>) {
    let fingerprint = renuver::serve::artifact::schema_fingerprint(engine.schema());
    let mut ctx = Ctx::new(
        engine,
        ModelInfo { source: "tune-e2e".into(), schema_fingerprint: fingerprint, artifact_bytes: 0 },
        None,
        60_000,
    );
    ctx.set_flight(opts);
    let ctx = Arc::new(ctx);
    let config = ServeConfig { addr: "127.0.0.1:0".into(), workers: 2, ..ServeConfig::default() };
    let server = Server::bind(config, Arc::clone(&ctx)).unwrap();
    let addr = server.local_addr().unwrap();
    let stop = server.shutdown_handle();
    let handle = std::thread::spawn(move || server.run().unwrap());
    (addr, ctx, stop, handle)
}

/// One raw request on a fresh connection → (status, headers + body).
fn request(addr: SocketAddr, raw: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    stream.write_all(raw).unwrap();
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).unwrap();
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .unwrap_or_else(|| panic!("bad status line {status_line:?}"))
        .parse()
        .unwrap();
    let mut rest = String::new();
    reader.read_to_string(&mut rest).unwrap();
    (status, rest)
}

fn body_of(rest: &str) -> &str {
    rest.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or(rest)
}

fn post(path: &str, body: &str) -> Vec<u8> {
    format!(
        "POST {path} HTTP/1.1\r\nHost: e2e\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    )
    .into_bytes()
}

fn get(path: &str) -> Vec<u8> {
    format!("GET {path} HTTP/1.1\r\nHost: e2e\r\nConnection: close\r\n\r\n").into_bytes()
}

fn delete(path: &str) -> Vec<u8> {
    format!("DELETE {path} HTTP/1.1\r\nHost: e2e\r\nConnection: close\r\n\r\n").into_bytes()
}

/// Polls `GET /v1/tune/<id>` until the job reports a terminal status;
/// returns the final body.
fn poll_terminal(addr: SocketAddr, id: u64) -> String {
    for _ in 0..2000 {
        let (status, rest) = request(addr, &get(&format!("/v1/tune/{id}")));
        assert_eq!(status, 200, "{rest}");
        let body = body_of(&rest);
        if !body.contains("\"status\":\"running\"") {
            return body.to_string();
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("tune job {id} never reached a terminal status");
}

fn submitted_id(rest: &str) -> u64 {
    let doc = json::parse(body_of(rest)).unwrap();
    doc.get("id").unwrap().as_u64().unwrap()
}

// --------------------------------------------------------------- tests

/// The tune loop finds better thresholds than discovery froze in: on
/// the Restaurant sample (fuzzy duplicates with typo'd names and
/// addresses), held-out F1 strictly improves over the baseline.
#[test]
fn tuning_improves_heldout_f1_on_the_restaurant_sample() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/data/restaurant_sample.csv");
    let rel = csv::read_path(path).unwrap();
    let rfds = discover(&rel, &DiscoveryConfig { max_lhs: 2, ..DiscoveryConfig::with_limit(3.0) });
    assert!(!rfds.is_empty(), "discovery found nothing to tune");

    let report = tune(&rel, &rfds, &TuneConfig { seed: 42, max_iters: 4, ..TuneConfig::default() });

    assert!(report.masked > 0);
    assert!(!report.partial);
    assert!(
        report.best_f1 > report.baseline.f1,
        "tuning did not improve held-out F1: baseline {:.3}, best {:.3}",
        report.baseline.f1,
        report.best_f1
    );
    // The winning thresholds differ from the input set — the gain came
    // from actual threshold moves, not scoring noise.
    assert_ne!(report.tuned.to_text(rel.schema()), rfds.to_text(rel.schema()));
}

/// Satellite 1: a fixed `--seed` makes the whole CLI run — masking,
/// iteration, final thresholds — byte-identical across repeat runs and
/// every `--parallelism` setting.
#[test]
fn fixed_seed_tune_is_byte_identical_across_runs_and_parallelism() {
    let dir = std::env::temp_dir().join(format!("renuver-tune-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let data = dir.join("twins.csv");
    std::fs::write(&data, twin_csv(8)).unwrap();
    let rfds = dir.join("rfds.txt");
    std::fs::write(&rfds, "Name(\u{2264}0) \u{2192} Zip(\u{2264}0)\n").unwrap();

    let run = |tag: &str, extra: &[&str]| {
        let out = dir.join(format!("tuned-{tag}.txt"));
        let status = std::process::Command::new(env!("CARGO_BIN_EXE_renuver"))
            .arg("tune")
            .arg(&data)
            .args(["--rfds", rfds.to_str().unwrap(), "--seed", "7", "--iterations", "6"])
            .args(extra)
            .args(["--out", out.to_str().unwrap()])
            .status()
            .unwrap();
        assert!(status.success(), "tune run {tag} failed");
        std::fs::read(&out).unwrap()
    };

    let serial = run("p1", &["--parallelism", "1"]);
    let two = run("p2", &["--parallelism", "2"]);
    let all_cores = run("p0", &[]);
    let repeat = run("p1-again", &["--parallelism", "1"]);
    assert!(!serial.is_empty());
    assert_eq!(serial, two, "parallelism 2 changed the tuned thresholds");
    assert_eq!(serial, all_cores, "default parallelism changed the tuned thresholds");
    assert_eq!(serial, repeat, "repeat run with the same seed diverged");
    // Sanity: the tuned set really moved off the input thresholds.
    assert_ne!(serial, std::fs::read(&rfds).unwrap());
    let _ = std::fs::remove_dir_all(&dir);
}

/// The happy-path job protocol over raw sockets: POST → 202 with an
/// id, GET polls through `running` to the final report, the job shows
/// up in `/healthz` and the metrics registry, and unknown ids are 404.
#[test]
fn tune_job_submit_poll_result_over_sockets() {
    let (addr, _ctx, stop, handle) = start(twin_engine(8), FlightOptions::default());

    let (status, rest) = request(addr, &post("/v1/tune", r#"{"seed": 3, "max_iters": 6}"#));
    assert_eq!(status, 202, "{rest}");
    let id = submitted_id(&rest);
    assert_eq!(id, 1);

    let body = poll_terminal(addr, id);
    assert!(body.contains("\"status\":\"done\""), "{body}");
    let doc = json::parse(&body).unwrap();
    let report = doc.get("report").unwrap();
    assert_eq!(report.get("partial").unwrap().as_bool(), Some(false));
    let thresholds = report.get("thresholds").unwrap().as_str().unwrap();
    assert!(thresholds.contains("\u{2192} Zip(\u{2264}0)"), "{thresholds}");
    // The twin fixture needs Name widened to 2 to see the donors.
    assert!(thresholds.contains("Name(\u{2264}2)"), "{thresholds}");

    // The finished job stays visible: /healthz and the counters.
    let (status, rest) = request(addr, &get("/healthz"));
    assert_eq!(status, 200);
    assert!(body_of(&rest).contains("\"tune\":{\"id\":1,\"status\":\"done\""), "{rest}");
    let (status, rest) = request(addr, &get("/metrics"));
    assert_eq!(status, 200);
    let metrics = body_of(&rest).to_string();
    let metric = |name: &str| {
        metrics
            .lines()
            .find_map(|l| {
                let mut it = l.split_whitespace();
                (it.next() == Some(name)).then(|| it.next().unwrap().parse::<u64>().unwrap())
            })
            .unwrap_or_else(|| panic!("metric {name} not in:\n{metrics}"))
    };
    assert_eq!(metric("serve.events.tune_started"), 1);
    assert_eq!(metric("serve.events.tune_finished"), 1);

    let (status, _) = request(addr, &get("/v1/tune/99"));
    assert_eq!(status, 404);
    let (status, _) = request(addr, &get("/v1/tune/banana"));
    assert_eq!(status, 404);

    stop.store(true, Ordering::Relaxed);
    handle.join().unwrap();
}

/// Single-flight and cancellation: while a long tune runs, a second
/// submit is refused with 409 naming the running job; DELETE answers
/// `cancelling` and the job lands on a `cancelled` *partial* report;
/// after that the slot is free for the next submit.
#[test]
fn concurrent_submit_conflicts_and_delete_cancels_mid_run() {
    let (addr, ctx, stop, handle) = start(slow_engine(), FlightOptions::default());

    let (status, rest) = request(addr, &post("/v1/tune", SLOW_BODY));
    assert_eq!(status, 202, "{rest}");
    let id = submitted_id(&rest);

    // Second submit while the first is running: refused, with the id.
    let (status, rest) = request(addr, &post("/v1/tune", "{}"));
    assert_eq!(status, 409, "{rest}");
    assert!(body_of(&rest).contains(&format!("tune job {id} is already running")), "{rest}");

    // Cancel mid-run.
    let (status, rest) = request(addr, &delete(&format!("/v1/tune/{id}")));
    assert_eq!(status, 202, "{rest}");
    assert!(body_of(&rest).contains("\"status\":\"cancelling\""), "{rest}");

    let body = poll_terminal(addr, id);
    assert!(body.contains("\"status\":\"cancelled\""), "{body}");
    let doc = json::parse(&body).unwrap();
    let report = doc.get("report").unwrap();
    assert_eq!(report.get("partial").unwrap().as_bool(), Some(true));
    assert_eq!(report.get("stop").unwrap().as_str(), Some("cancelled"));

    // DELETE on a terminal job reports its resting status, 200.
    let (status, rest) = request(addr, &delete(&format!("/v1/tune/{id}")));
    assert_eq!(status, 200, "{rest}");
    assert!(body_of(&rest).contains("\"status\":\"cancelled\""), "{rest}");

    // The slot is free again: the next submit gets a fresh id.
    let (status, rest) = request(addr, &post("/v1/tune", SLOW_BODY));
    assert_eq!(status, 202, "{rest}");
    let next = submitted_id(&rest);
    assert_eq!(next, id + 1);
    assert_eq!(ctx.jobs().cancel(next).unwrap(), JobStatus::Running);
    poll_terminal(addr, next);

    stop.store(true, Ordering::Relaxed);
    handle.join().unwrap();
}

/// Drain (the stop flag, as the SIGTERM handler wires it) while a tune
/// job is mid-run: the server joins cleanly, the job reaches a
/// terminal status, and the flight event log is schema-valid with the
/// start event paired to exactly one terminal event.
#[test]
fn drain_mid_tune_leaves_the_job_log_consistent() {
    let dir = std::env::temp_dir().join(format!("renuver-tune-drain-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let log_path = dir.join("events.jsonl");
    let (addr, ctx, stop, handle) = start(
        slow_engine(),
        FlightOptions { log: Some(EventLog::create(&log_path).unwrap()), ..FlightOptions::default() },
    );

    let (status, rest) = request(addr, &post("/v1/tune", SLOW_BODY));
    assert_eq!(status, 202, "{rest}");
    // Let the worker actually enter the loop before pulling the plug.
    std::thread::sleep(Duration::from_millis(30));

    stop.store(true, Ordering::Relaxed);
    handle.join().expect("server thread panicked");

    // The drain joined the tune worker: the job is terminal, not lost.
    let (_, job_status, _) = ctx.jobs().snapshot().unwrap();
    assert_ne!(job_status, JobStatus::Running, "drain left the tune job running");

    // Every line of the log validates against the closed schema, and
    // the tune lifecycle is fully recorded: one started event, one
    // terminal event.
    let text = std::fs::read_to_string(&log_path).unwrap();
    renuver::obs::schema::validate_trace(&text)
        .unwrap_or_else(|(line, why)| panic!("log line {line} invalid: {why}"));
    let events = |name: &str| {
        text.lines()
            .filter(|l| {
                l.contains("\"kind\":\"server_event\"")
                    && l.contains(&format!("\"event\":\"{name}\""))
            })
            .count()
    };
    assert_eq!(events("tune_started"), 1, "{text}");
    assert_eq!(events("tune_finished") + events("tune_cancelled"), 1, "{text}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Differential acceptance test: a model installed by the tune job's
/// `install` step serves bit-identical `/v1/impute` answers to an
/// engine prepared directly from the same tuned thresholds.
#[test]
fn job_installed_model_serves_bit_identical_answers() {
    let (addr, ctx, stop, handle) = start(twin_engine(8), FlightOptions::default());

    let (status, rest) =
        request(addr, &post("/v1/tune", r#"{"seed": 3, "max_iters": 6, "install": true}"#));
    assert_eq!(status, 202, "{rest}");
    let body = poll_terminal(addr, submitted_id(&rest));
    assert!(body.contains("\"installed\":true"), "{body}");
    assert_eq!(ctx.info().source, "tune job 1");

    // Rebuild the tuned model by hand from the report's thresholds.
    let doc = json::parse(&body).unwrap();
    let thresholds =
        doc.get("report").unwrap().get("thresholds").unwrap().as_str().unwrap().to_string();
    let rel = csv::read_str(&twin_csv(8)).unwrap();
    let tuned = RfdSet::from_text(&thresholds, rel.schema()).unwrap();
    let direct = Engine::prepare(rel, tuned, RenuverConfig::default());
    let (addr2, _ctx2, stop2, handle2) = start(direct, FlightOptions::default());

    // "aaaaaaaa 3" is distance 1 from the twin "aaaaaaaa 2": invisible
    // at the original threshold 0, a donor match at the tuned width.
    let impute = r#"{"tuples": [["aaaaaaaa 3", null], ["bbbbbbbb", null], ["unrelated", null]]}"#;
    let (s1, r1) = request(addr, &post("/v1/impute", impute));
    let (s2, r2) = request(addr2, &post("/v1/impute", impute));
    assert_eq!((s1, s2), (200, 200), "{r1}\n{r2}");
    let (b1, b2) = (body_of(&r1), body_of(&r2));
    assert_eq!(b1, b2, "installed and directly-prepared models diverge");
    // And the answer is the *tuned* behaviour: the twin's zip fills in.
    assert!(b1.contains("\"z-00\""), "{b1}");

    stop.store(true, Ordering::Relaxed);
    stop2.store(true, Ordering::Relaxed);
    handle.join().unwrap();
    handle2.join().unwrap();
}
