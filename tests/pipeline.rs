//! Cross-crate pipeline tests: dataset generation → RFD/DC discovery →
//! injection → imputation (all four approaches) → rule-based evaluation.

use renuver::baselines::{DerandConfig, GreyKnnConfig, HolocleanConfig};
use renuver::core::{Renuver, RenuverConfig};
use renuver::datasets::{physician, Dataset};
use renuver::dc::{discover_dcs, DcDiscoveryConfig};
use renuver::eval::{
    average_scores, evaluate, inject, run_variants, DerandImputer, GreyKnnImputer,
    HolocleanImputer, Imputer, RenuverImputer,
};
use renuver::rfd::check;
use renuver::rfd::discovery::{discover, DiscoveryConfig};

fn small_discovery(limit: f64) -> DiscoveryConfig {
    DiscoveryConfig { max_lhs: 2, ..DiscoveryConfig::with_limit(limit) }
}

#[test]
fn discovered_rfds_hold_on_every_dataset() {
    for ds in Dataset::all() {
        let rel = ds.relation(1);
        let rfds = discover(&rel, &small_discovery(6.0));
        assert!(!rfds.is_empty(), "{}", ds.name());
        // Spot-check a sample (full verification of hundreds of RFDs at
        // n² pairs each is bench territory).
        for rfd in rfds.iter().step_by(rfds.len().div_ceil(10)) {
            assert!(
                check::holds(&rel, rfd),
                "{}: violated {}",
                ds.name(),
                rfd.display(rel.schema())
            );
        }
    }
}

#[test]
fn renuver_imputed_values_come_from_donors() {
    let ds = Dataset::Bridges;
    let rel = ds.relation(2);
    let (incomplete, _) = inject(&rel, 0.05, 3);
    let rfds = discover(&incomplete, &small_discovery(9.0));
    let result = Renuver::new(RenuverConfig::default()).impute(&incomplete, &rfds);
    for ic in &result.imputed {
        // The value was copied from the donor row.
        assert_eq!(
            &ic.value,
            result.relation.value(ic.donor_row, ic.cell.col),
            "donor mismatch at {:?}",
            ic.cell
        );
        assert!(ic.distance >= 0.0);
    }
    // Unimputed cells are still missing; imputed cells are not.
    for cell in &result.unimputed {
        assert!(result.relation.is_missing(cell.row, cell.col));
    }
    for ic in &result.imputed {
        assert!(!result.relation.is_missing(ic.cell.row, ic.cell.col));
    }
}

#[test]
fn end_to_end_deterministic() {
    let ds = Dataset::Cars;
    let rel = ds.relation(3);
    let rfds = discover(&rel, &small_discovery(6.0));
    let (incomplete, truth) = inject(&rel, 0.03, 5);
    let a = Renuver::new(RenuverConfig::default()).impute(&incomplete, &rfds);
    let b = Renuver::new(RenuverConfig::default()).impute(&incomplete, &rfds);
    assert_eq!(a.relation, b.relation);
    assert_eq!(a.imputed, b.imputed);
    let sa = evaluate(&a.relation, &truth, &ds.rules());
    let sb = evaluate(&b.relation, &truth, &ds.rules());
    assert_eq!(sa, sb);
}

#[test]
fn all_approaches_run_on_a_real_dataset() {
    let ds = Dataset::Glass;
    let rel = ds.relation(4);
    let rules = ds.rules();
    let rfds = discover(&rel, &small_discovery(9.0));
    let dcs = discover_dcs(&rel, &DcDiscoveryConfig::default());
    let imputers: Vec<Box<dyn Imputer>> = vec![
        Box::new(RenuverImputer::new(RenuverConfig::default(), rfds.clone())),
        Box::new(DerandImputer::new(DerandConfig::default(), rfds)),
        Box::new(HolocleanImputer::new(HolocleanConfig::default(), dcs)),
        Box::new(GreyKnnImputer::new(GreyKnnConfig::default())),
    ];
    for imp in &imputers {
        let outcomes = run_variants(&rel, &rules, imp.as_ref(), 0.03, &[1, 2]);
        let avg = average_scores(&outcomes);
        // Every approach fills something and gets a sane score.
        assert!(avg.scores.imputed > 0, "{} filled nothing", imp.name());
        assert!(
            (0.0..=1.0).contains(&avg.scores.precision),
            "{}",
            imp.name()
        );
        assert!(avg.scores.correct <= avg.scores.imputed, "{}", imp.name());
        assert!(avg.scores.imputed <= avg.scores.missing, "{}", imp.name());
    }
}

#[test]
fn renuver_precision_beats_derand_on_restaurant() {
    // The paper's headline comparison, scaled down to one seed.
    let ds = Dataset::Restaurant;
    let rel = ds.relation(5);
    let rules = ds.rules();
    let rfds = discover(&rel, &small_discovery(15.0));
    let renuver = RenuverImputer::new(RenuverConfig::default(), rfds.clone());
    let derand = DerandImputer::new(DerandConfig::default(), rfds);
    let r = average_scores(&run_variants(&rel, &rules, &renuver, 0.03, &[9]));
    let d = average_scores(&run_variants(&rel, &rules, &derand, 0.03, &[9]));
    assert!(
        r.scores.precision > d.scores.precision,
        "RENUVER {:.3} vs Derand {:.3}",
        r.scores.precision,
        d.scores.precision
    );
}

#[test]
fn injected_missing_counts_match_paper_table_3() {
    // Same tuple counts and protocol as the paper, so the injected counts
    // land within rounding of Table 3's numbers.
    let expectations = [
        (Dataset::Restaurant, [52, 104, 155, 206, 259]),
        (Dataset::Cars, [37, 73, 110, 146, 183]),
        (Dataset::Glass, [24, 47, 71, 94, 118]),
        (Dataset::Bridges, [14, 28, 42, 56, 70]),
    ];
    for (ds, paper) in expectations {
        let rel = ds.relation(1);
        for (i, rate) in [0.01, 0.02, 0.03, 0.04, 0.05].into_iter().enumerate() {
            let (_, truth) = inject(&rel, rate, 1);
            let diff = truth.len().abs_diff(paper[i]);
            assert!(
                diff <= 1,
                "{} at {rate}: got {}, paper {}",
                ds.name(),
                truth.len(),
                paper[i]
            );
        }
    }
}

#[test]
fn hospital_redundancy_repairs_exactly() {
    use renuver::datasets::hospital;
    use renuver::rfd::RfdSet;
    // The Hospital dataset repeats provider attributes across measure
    // rows; ProviderNumber(≤0) → City(≤0) restores a knocked-out city
    // exactly from a sibling row.
    let rel = hospital::generate(300, 3);
    let city = rel.schema().require("City").unwrap();
    let expected = rel.value(0, city).clone();
    let mut holed = rel.clone();
    holed.set_value(0, city, renuver::data::Value::Null);
    let rfds = RfdSet::from_text(
        "ProviderNumber(<=0) -> City(<=0)",
        rel.schema(),
    )
    .unwrap();
    let result = Renuver::new(RenuverConfig::default()).impute(&holed, &rfds);
    assert_eq!(result.relation.value(0, city), &expected);
    assert_eq!(result.imputed[0].via.display(rel.schema()).to_string(),
        "ProviderNumber(≤0) → City(≤0)");
}

#[test]
fn hospital_full_pipeline_high_precision() {
    use renuver::datasets::hospital;
    // Discovery + imputation on the redundancy-rich Hospital data should
    // reach very high precision (the Holoclean benchmark regime).
    let rel = hospital::generate(500, 7);
    let (incomplete, truth) = inject(&rel, 0.02, 5);
    let rfds = discover(&incomplete, &small_discovery(3.0));
    let result = Renuver::new(RenuverConfig::default()).impute(&incomplete, &rfds);
    let scores = evaluate(&result.relation, &truth, &hospital::rules());
    assert!(scores.precision >= 0.9, "{scores:?}");
    assert!(scores.recall >= 0.6, "{scores:?}");
}

#[test]
fn physician_scaling_smoke() {
    // Table 5's smallest rung, end to end.
    let rel = physician::generate(104, 42);
    let rfds = discover(&rel, &small_discovery(3.0));
    let dcs = discover_dcs(&rel, &DcDiscoveryConfig::default());
    assert!(!rfds.is_empty());
    assert!(!dcs.is_empty());
    let (incomplete, truth) = inject(&rel, 0.01, 1);
    let result = Renuver::new(RenuverConfig::default()).impute(&incomplete, &rfds);
    let scores = evaluate(&result.relation, &truth, &physician::rules());
    // The planted org/zip redundancy makes the small instance imputable
    // with high precision.
    assert!(scores.precision >= 0.5, "{scores:?}");
}

#[test]
fn higher_threshold_limits_do_not_reduce_fill() {
    // Figure 2's recall mechanism: a larger threshold limit yields a
    // superset-ish RFD set, so RENUVER fills at least roughly as much.
    let ds = Dataset::Restaurant;
    let rel = ds.relation(6);
    let (incomplete, _) = inject(&rel, 0.03, 2);
    let low = discover(&incomplete, &small_discovery(3.0));
    let high = discover(&incomplete, &small_discovery(12.0));
    let fill = |rfds| {
        Renuver::new(RenuverConfig::default())
            .impute(&incomplete, rfds)
            .stats
            .imputed
    };
    let (f_low, f_high) = (fill(&low), fill(&high));
    assert!(
        f_high + 5 >= f_low,
        "fill dropped sharply with the limit: {f_low} -> {f_high}"
    );
}
