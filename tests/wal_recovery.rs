//! Kill-and-recover matrix for the durable write path, driven through
//! the real `renuver` binary. Each case arms a crash point via the
//! `RENUVER_FAULT` environment variable, lets `renuver ingest` abort
//! mid-flight, then recovers and asserts the surviving model is
//! **bit-identical** (compacted snapshot bytes) to a control model that
//! never crashed and ingested exactly the batches the durability
//! contract says must survive:
//!
//! - crash before the WAL frame is complete on disk → batch absent,
//! - crash after the frame is complete (fsynced or not — a process
//!   abort leaves the page cache intact, so `pre_fsync` behaves like
//!   `post_fsync` here; only the torn-write case models a power cut's
//!   partial frame) → batch replayed,
//! - crash anywhere inside compaction → no logical change at all.
//!
//! Also covered: injected (non-fatal) I/O errors commit nothing, and
//! SIGTERM during an in-flight `/v1/ingest` drains gracefully — the
//! batch is fully durable, never half-applied.

use std::io::{BufRead, BufReader, Read, Write};
use std::path::{Path, PathBuf};
use std::process::{Command, Output, Stdio};

const DATA: &str = "\
City:text,Zip:text
Salerno,84084
Salerno,84084
Milano,20121
Milano,20121
Roma,00184
Roma,00184
";
const BATCH1: &str = "City:text,Zip:text\nSalerno,_\nTorino,10121\n";
const BATCH2: &str = "City:text,Zip:text\nNapoli,80100\n";

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_renuver"))
}

/// A fresh directory holding `data.csv`, both batches, and a prepared
/// `model.rnv`. Every command below runs with this directory as cwd and
/// uses relative paths, so the provenance strings baked into snapshots
/// are identical across the crashed and control copies.
fn setup(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("renuver-wal-recovery-{}", std::process::id()))
        .join(tag);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("data.csv"), DATA).unwrap();
    std::fs::write(dir.join("batch1.csv"), BATCH1).unwrap();
    std::fs::write(dir.join("batch2.csv"), BATCH2).unwrap();
    let out = bin()
        .current_dir(&dir)
        .args(["prepare", "data.csv", "-o", "model.rnv", "--limit", "3"])
        .output()
        .unwrap();
    assert!(out.status.success(), "prepare failed: {}", String::from_utf8_lossy(&out.stderr));
    dir
}

fn ingest(dir: &Path, batch: &str, fault: Option<&str>, compact: bool) -> Output {
    let mut cmd = bin();
    cmd.current_dir(dir).args(["ingest", "model.rnv", batch]);
    if compact {
        cmd.arg("--compact");
    }
    match fault {
        Some(spec) => cmd.env("RENUVER_FAULT", spec),
        None => cmd.env_remove("RENUVER_FAULT"),
    };
    cmd.output().unwrap()
}

fn assert_ok(out: &Output, what: &str) {
    assert!(
        out.status.success(),
        "{what} failed: {}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

/// Canonical end state: ingest `batch2.csv` with `--compact` (which
/// first replays whatever the WAL holds), then read the snapshot. Two
/// histories that agree on the durable batches yield identical bytes.
fn final_snapshot(dir: &Path) -> Vec<u8> {
    let out = ingest(dir, "batch2.csv", None, true);
    assert_ok(&out, "recovery ingest of batch2");
    std::fs::read(dir.join("model.rnv")).unwrap()
}

/// Control model that ingested exactly `batches` without ever crashing.
fn control_snapshot(tag: &str, batches: &[&str]) -> Vec<u8> {
    let dir = setup(tag);
    for b in batches {
        assert_ok(&ingest(&dir, b, None, false), b);
    }
    final_snapshot(&dir)
}

#[test]
fn append_crash_matrix_recovers_bit_identically() {
    // (crash point, does batch1 survive the crash?)
    let matrix = [
        ("wal.append.pre_write=crash", false),
        // 10 bytes is inside the frame header: a torn tail, truncated
        // at recovery.
        ("wal.append.mid_write=short:10", false),
        // The frame hit the file before the abort; replay finds it.
        ("wal.append.pre_fsync=crash", true),
        ("wal.append.post_fsync=crash", true),
    ];
    for (fault, survives) in matrix {
        let point = fault.split('=').next().unwrap();
        let dir = setup(&format!("append-{}", point.replace('.', "-")));
        let out = ingest(&dir, "batch1.csv", Some(fault), false);
        assert!(!out.status.success(), "{fault}: ingest should have died");

        let recovered = final_snapshot(&dir);
        let expected: &[&str] = if survives { &["batch1.csv"] } else { &[] };
        let control = control_snapshot(
            &format!("append-ctl-{}", point.replace('.', "-")),
            expected,
        );
        assert_eq!(
            recovered, control,
            "{fault}: recovered model != control (batch1 survives = {survives})"
        );
    }
}

#[test]
fn compaction_crash_matrix_changes_nothing_logically() {
    // The commit is acknowledged before compaction starts, so batch1
    // must survive a crash at every compaction point.
    for point in
        ["compact.pre_write", "compact.pre_rename", "compact.post_rename", "compact.pre_truncate"]
    {
        let dir = setup(&format!("cpt-{}", point.replace('.', "-")));
        let out = ingest(&dir, "batch1.csv", Some(&format!("{point}=crash")), true);
        assert!(!out.status.success(), "{point}: ingest --compact should have died");

        let recovered = final_snapshot(&dir);
        let control =
            control_snapshot(&format!("cpt-ctl-{}", point.replace('.', "-")), &["batch1.csv"]);
        assert_eq!(recovered, control, "{point}: compaction crash changed the logical state");
    }
}

#[test]
fn injected_wal_error_commits_nothing() {
    let dir = setup("io-err");
    let out = ingest(&dir, "batch1.csv", Some("wal.append.pre_write=err"), false);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("wal append failed"), "{stderr}");
    assert!(stderr.contains("injected fault"), "{stderr}");

    // The failed run left no trace: the model equals a control that
    // only ever saw batch2.
    let recovered = final_snapshot(&dir);
    let control = control_snapshot("io-err-ctl", &[]);
    assert_eq!(recovered, control);
}

/// Satellite: SIGTERM while an ingest request is in flight. The server
/// drains the connection — the client gets its `200`, the batch is
/// durable, and a restarted `ingest` replays it; nothing is ever
/// half-applied.
#[test]
#[cfg(unix)]
fn sigterm_during_inflight_ingest_commits_fully_or_not_at_all() {
    let dir = setup("sigterm");
    let mut child = bin()
        .current_dir(&dir)
        .args(["serve", "model.rnv", "--wal", "--addr", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .env_remove("RENUVER_FAULT")
        .spawn()
        .unwrap();
    let mut lines = BufReader::new(child.stdout.take().unwrap());
    let mut banner = String::new();
    lines.read_line(&mut banner).unwrap();
    let addr = banner
        .strip_prefix("listening on ")
        .and_then(|r| r.split_whitespace().next())
        .unwrap_or_else(|| panic!("bad banner {banner:?}"))
        .to_string();

    // Wait out WAL replay: ingest is refused until the state flips to ok.
    for _ in 0..100 {
        let mut s = std::net::TcpStream::connect(&addr).unwrap();
        s.write_all(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        let mut resp = String::new();
        s.read_to_string(&mut resp).unwrap();
        if resp.contains("\"state\":\"ok\"") {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }

    // Send the request in two halves with SIGTERM in between: the
    // server must finish reading and commit, not cut the socket.
    let body = r#"{"tuples": [["Salerno", null], ["Genova", "16121"]]}"#;
    let head = format!(
        "POST /v1/ingest HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let mut s = std::net::TcpStream::connect(&addr).unwrap();
    s.write_all(head.as_bytes()).unwrap();
    s.write_all(&body.as_bytes()[..10]).unwrap();
    s.flush().unwrap();
    // Give a worker time to accept the connection and start reading;
    // a SIGTERM before the accept would reset the backlogged socket
    // instead of exercising the in-flight drain.
    std::thread::sleep(std::time::Duration::from_millis(200));

    let kill = Command::new("kill").arg("-TERM").arg(child.id().to_string()).status().unwrap();
    assert!(kill.success());
    std::thread::sleep(std::time::Duration::from_millis(50));
    s.write_all(&body.as_bytes()[10..]).unwrap();

    let mut resp = String::new();
    BufReader::new(s).read_to_string(&mut resp).unwrap();
    assert!(resp.starts_with("HTTP/1.1 200 "), "in-flight ingest was dropped: {resp:?}");
    assert!(resp.contains("\"seq\":1"), "{resp}");
    assert!(child.wait().unwrap().success(), "serve did not exit cleanly after drain");

    // The acknowledged batch is durable: a cold recovery replays it and
    // lands on the same bytes as a never-interrupted control.
    let recovered = final_snapshot(&dir);
    // Control: the same two tuples ingested through the CLI, no signal.
    let dir_ctl = setup("sigterm-ctl");
    std::fs::write(
        dir_ctl.join("sig_batch.csv"),
        "City:text,Zip:text\nSalerno,_\nGenova,16121\n",
    )
    .unwrap();
    assert_ok(&ingest(&dir_ctl, "sig_batch.csv", None, false), "control batch");
    assert_eq!(recovered, final_snapshot(&dir_ctl));
}
