//! Kill-and-recover matrix for the durable write path, driven through
//! the real `renuver` binary. Each case arms a crash point via the
//! `RENUVER_FAULT` environment variable, lets `renuver ingest` abort
//! mid-flight, then recovers and asserts the surviving model is
//! **bit-identical** (compacted snapshot bytes) to a control model that
//! never crashed and ingested exactly the batches the durability
//! contract says must survive:
//!
//! - crash before the WAL frame is complete on disk → batch absent,
//! - crash after the frame is complete (fsynced or not — a process
//!   abort leaves the page cache intact, so `pre_fsync` behaves like
//!   `post_fsync` here; only the torn-write case models a power cut's
//!   partial frame) → batch replayed,
//! - crash anywhere inside compaction → no logical change at all.
//!
//! Also covered: injected (non-fatal) I/O errors commit nothing, and
//! SIGTERM during an in-flight `/v1/ingest` drains gracefully — the
//! batch is fully durable, never half-applied.

use std::io::{BufRead, BufReader, Read, Write};
use std::path::{Path, PathBuf};
use std::process::{Command, Output, Stdio};

const DATA: &str = "\
City:text,Zip:text
Salerno,84084
Salerno,84084
Milano,20121
Milano,20121
Roma,00184
Roma,00184
";
const BATCH1: &str = "City:text,Zip:text\nSalerno,_\nTorino,10121\n";
const BATCH2: &str = "City:text,Zip:text\nNapoli,80100\n";

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_renuver"))
}

/// A fresh directory holding `data.csv`, both batches, and a prepared
/// `model.rnv`. Every command below runs with this directory as cwd and
/// uses relative paths, so the provenance strings baked into snapshots
/// are identical across the crashed and control copies.
fn setup(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("renuver-wal-recovery-{}", std::process::id()))
        .join(tag);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("data.csv"), DATA).unwrap();
    std::fs::write(dir.join("batch1.csv"), BATCH1).unwrap();
    std::fs::write(dir.join("batch2.csv"), BATCH2).unwrap();
    let out = bin()
        .current_dir(&dir)
        .args(["prepare", "data.csv", "-o", "model.rnv", "--limit", "3"])
        .output()
        .unwrap();
    assert!(out.status.success(), "prepare failed: {}", String::from_utf8_lossy(&out.stderr));
    dir
}

fn ingest(dir: &Path, batch: &str, fault: Option<&str>, compact: bool) -> Output {
    let mut cmd = bin();
    cmd.current_dir(dir).args(["ingest", "model.rnv", batch]);
    if compact {
        cmd.arg("--compact");
    }
    match fault {
        Some(spec) => cmd.env("RENUVER_FAULT", spec),
        None => cmd.env_remove("RENUVER_FAULT"),
    };
    cmd.output().unwrap()
}

fn assert_ok(out: &Output, what: &str) {
    assert!(
        out.status.success(),
        "{what} failed: {}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

/// Canonical end state: ingest `batch2.csv` with `--compact` (which
/// first replays whatever the WAL holds), then read the snapshot. Two
/// histories that agree on the durable batches yield identical bytes.
fn final_snapshot(dir: &Path) -> Vec<u8> {
    let out = ingest(dir, "batch2.csv", None, true);
    assert_ok(&out, "recovery ingest of batch2");
    std::fs::read(dir.join("model.rnv")).unwrap()
}

/// Control model that ingested exactly `batches` without ever crashing.
fn control_snapshot(tag: &str, batches: &[&str]) -> Vec<u8> {
    let dir = setup(tag);
    for b in batches {
        assert_ok(&ingest(&dir, b, None, false), b);
    }
    final_snapshot(&dir)
}

#[test]
fn append_crash_matrix_recovers_bit_identically() {
    // (crash point, does batch1 survive the crash?)
    let matrix = [
        ("wal.append.pre_write=crash", false),
        // 10 bytes is inside the frame header: a torn tail, truncated
        // at recovery.
        ("wal.append.mid_write=short:10", false),
        // The frame hit the file before the abort; replay finds it.
        ("wal.append.pre_fsync=crash", true),
        ("wal.append.post_fsync=crash", true),
    ];
    for (fault, survives) in matrix {
        let point = fault.split('=').next().unwrap();
        let dir = setup(&format!("append-{}", point.replace('.', "-")));
        let out = ingest(&dir, "batch1.csv", Some(fault), false);
        assert!(!out.status.success(), "{fault}: ingest should have died");

        let recovered = final_snapshot(&dir);
        let expected: &[&str] = if survives { &["batch1.csv"] } else { &[] };
        let control = control_snapshot(
            &format!("append-ctl-{}", point.replace('.', "-")),
            expected,
        );
        assert_eq!(
            recovered, control,
            "{fault}: recovered model != control (batch1 survives = {survives})"
        );
    }
}

#[test]
fn compaction_crash_matrix_changes_nothing_logically() {
    // The commit is acknowledged before compaction starts, so batch1
    // must survive a crash at every compaction point.
    for point in
        ["compact.pre_write", "compact.pre_rename", "compact.post_rename", "compact.pre_truncate"]
    {
        let dir = setup(&format!("cpt-{}", point.replace('.', "-")));
        let out = ingest(&dir, "batch1.csv", Some(&format!("{point}=crash")), true);
        assert!(!out.status.success(), "{point}: ingest --compact should have died");

        let recovered = final_snapshot(&dir);
        let control =
            control_snapshot(&format!("cpt-ctl-{}", point.replace('.', "-")), &["batch1.csv"]);
        assert_eq!(recovered, control, "{point}: compaction crash changed the logical state");
    }
}

#[test]
fn injected_wal_error_commits_nothing() {
    let dir = setup("io-err");
    let out = ingest(&dir, "batch1.csv", Some("wal.append.pre_write=err"), false);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("wal append failed"), "{stderr}");
    assert!(stderr.contains("injected fault"), "{stderr}");

    // The failed run left no trace: the model equals a control that
    // only ever saw batch2.
    let recovered = final_snapshot(&dir);
    let control = control_snapshot("io-err-ctl", &[]);
    assert_eq!(recovered, control);
}

/// Satellite: SIGTERM while an ingest request is in flight. The server
/// drains the connection — the client gets its `200`, the batch is
/// durable, and a restarted `ingest` replays it; nothing is ever
/// half-applied.
#[test]
#[cfg(unix)]
fn sigterm_during_inflight_ingest_commits_fully_or_not_at_all() {
    let dir = setup("sigterm");
    let mut child = bin()
        .current_dir(&dir)
        .args(["serve", "model.rnv", "--wal", "--addr", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .env_remove("RENUVER_FAULT")
        .spawn()
        .unwrap();
    let mut lines = BufReader::new(child.stdout.take().unwrap());
    let mut banner = String::new();
    lines.read_line(&mut banner).unwrap();
    let addr = banner
        .strip_prefix("listening on ")
        .and_then(|r| r.split_whitespace().next())
        .unwrap_or_else(|| panic!("bad banner {banner:?}"))
        .to_string();

    // Retry-free handshake: the second stdout line arrives once WAL
    // replay is done and ingest is accepted (no healthz polling).
    let mut ready = String::new();
    lines.read_line(&mut ready).unwrap();
    assert!(ready.starts_with("ready state=ok "), "{ready:?}");

    // Send the request in two halves with SIGTERM in between: the
    // server must finish reading and commit, not cut the socket.
    let body = r#"{"tuples": [["Salerno", null], ["Genova", "16121"]]}"#;
    let head = format!(
        "POST /v1/ingest HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let mut s = std::net::TcpStream::connect(&addr).unwrap();
    s.write_all(head.as_bytes()).unwrap();
    s.write_all(&body.as_bytes()[..10]).unwrap();
    s.flush().unwrap();
    // Give a worker time to accept the connection and start reading;
    // a SIGTERM before the accept would reset the backlogged socket
    // instead of exercising the in-flight drain.
    std::thread::sleep(std::time::Duration::from_millis(200));

    let kill = Command::new("kill").arg("-TERM").arg(child.id().to_string()).status().unwrap();
    assert!(kill.success());
    std::thread::sleep(std::time::Duration::from_millis(50));
    s.write_all(&body.as_bytes()[10..]).unwrap();

    let mut resp = String::new();
    BufReader::new(s).read_to_string(&mut resp).unwrap();
    assert!(resp.starts_with("HTTP/1.1 200 "), "in-flight ingest was dropped: {resp:?}");
    assert!(resp.contains("\"seq\":1"), "{resp}");
    assert!(child.wait().unwrap().success(), "serve did not exit cleanly after drain");

    // The acknowledged batch is durable: a cold recovery replays it and
    // lands on the same bytes as a never-interrupted control.
    let recovered = final_snapshot(&dir);
    // Control: the same two tuples ingested through the CLI, no signal.
    let dir_ctl = setup("sigterm-ctl");
    std::fs::write(
        dir_ctl.join("sig_batch.csv"),
        "City:text,Zip:text\nSalerno,_\nGenova,16121\n",
    )
    .unwrap();
    assert_ok(&ingest(&dir_ctl, "sig_batch.csv", None, false), "control batch");
    assert_eq!(recovered, final_snapshot(&dir_ctl));
}

// ------------------------------------------------------ sharded layouts
//
// `prepare --shards 2` writes per-shard snapshots, per-shard WALs, and a
// routing manifest beside the artifact; `ingest` auto-detects the
// manifest and commits through the registry. The sharded contract
// differs from the single-engine one in exactly one place: a batch is
// committed only once it is appended to *every* shard WAL, so a crash
// anywhere inside the append fan-out leaves the batch absent (an orphan
// frame on an earlier log sits beyond the committed horizon and is
// truncated when recovery normalizes). Compaction crashes — including
// the sharded-only window where one shard's snapshot is renamed while
// its siblings and the manifest are still old — must change nothing
// logically, per shard, byte for byte.

const SHARDS: usize = 2;

fn setup_sharded(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("renuver-shard-recovery-{}", std::process::id()))
        .join(tag);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("data.csv"), DATA).unwrap();
    std::fs::write(dir.join("batch1.csv"), BATCH1).unwrap();
    std::fs::write(dir.join("batch2.csv"), BATCH2).unwrap();
    let out = bin()
        .current_dir(&dir)
        .args(["prepare", "data.csv", "-o", "model.rnv", "--limit", "3", "--shards", "2"])
        .output()
        .unwrap();
    assert!(out.status.success(), "prepare failed: {}", String::from_utf8_lossy(&out.stderr));
    dir
}

/// Canonical sharded end state: recover + ingest `batch2.csv` with
/// `--compact`, then read every shard snapshot plus the manifest. Two
/// histories that agree on the durable batches agree on every byte of
/// every shard.
fn final_sharded_state(dir: &Path) -> Vec<Vec<u8>> {
    let out = ingest(dir, "batch2.csv", None, true);
    assert_ok(&out, "sharded recovery ingest of batch2");
    let mut files = Vec::new();
    for k in 0..SHARDS {
        files.push(std::fs::read(dir.join(format!("model.rnv.shard{k}"))).unwrap());
    }
    files.push(std::fs::read(dir.join("model.rnv.manifest")).unwrap());
    files
}

fn sharded_control(tag: &str, batches: &[&str]) -> Vec<Vec<u8>> {
    let dir = setup_sharded(tag);
    for b in batches {
        assert_ok(&ingest(&dir, b, None, false), b);
    }
    final_sharded_state(&dir)
}

#[test]
fn sharded_append_crash_matrix_commits_nothing() {
    // Every append crash point leaves the batch uncommitted: the fault
    // fires on the first shard WAL the fan-out touches, so no state
    // where all logs carry the frame is ever reached.
    for fault in [
        "wal.append.pre_write=crash",
        "wal.append.mid_write=short:10",
        "wal.append.pre_fsync=crash",
        "wal.append.post_fsync=crash",
    ] {
        let point = fault.split('=').next().unwrap();
        let dir = setup_sharded(&format!("append-{}", point.replace('.', "-")));
        let out = ingest(&dir, "batch1.csv", Some(fault), false);
        assert!(!out.status.success(), "{fault}: sharded ingest should have died");

        let recovered = final_sharded_state(&dir);
        let control =
            sharded_control(&format!("append-ctl-{}", point.replace('.', "-")), &[]);
        assert_eq!(
            recovered, control,
            "{fault}: per-shard recovery differs from a control that never saw batch1"
        );
    }
}

#[test]
fn sharded_compaction_crash_matrix_changes_nothing_logically() {
    // The commit is acknowledged before compaction, so batch1 survives a
    // crash at every point — including `compact.shard_done`, the
    // sharded-only window where shard 0's snapshot is already at the new
    // seq while shard 1 and the manifest still hold the old one.
    // Recovery must notice the mixed seqs and normalize.
    for point in [
        "compact.pre_write",
        "compact.pre_rename",
        "compact.shard_done",
        "compact.post_rename",
        "compact.pre_truncate",
    ] {
        let dir = setup_sharded(&format!("cpt-{}", point.replace('.', "-")));
        let out = ingest(&dir, "batch1.csv", Some(&format!("{point}=crash")), true);
        assert!(!out.status.success(), "{point}: sharded ingest --compact should have died");

        let recovered = final_sharded_state(&dir);
        let control = sharded_control(
            &format!("cpt-ctl-{}", point.replace('.', "-")),
            &["batch1.csv"],
        );
        assert_eq!(
            recovered, control,
            "{point}: sharded compaction crash changed the logical state"
        );
    }
}

/// Swap crash window: the server dies after writing the whole
/// next-generation layout (snapshots + fresh WALs under `.g1.*` names)
/// but before the atomic manifest flip that commits it. The old
/// generation must win: recovery serves the old model plus every
/// acknowledged batch, byte for byte, and sweeps the orphaned files.
#[test]
#[cfg(unix)]
fn swap_crash_before_manifest_flip_preserves_the_old_model() {
    let dir = setup_sharded("swap-crash");
    assert_ok(&ingest(&dir, "batch1.csv", None, false), "batch1");

    // A replacement model: same schema (same fingerprint), one more row.
    std::fs::write(dir.join("data2.csv"), format!("{DATA}Bari,70121\n")).unwrap();
    let out = bin()
        .current_dir(&dir)
        .args(["prepare", "data2.csv", "-o", "model2.rnv", "--limit", "3"])
        .output()
        .unwrap();
    assert_ok(&out, "prepare model2");

    let mut child = bin()
        .current_dir(&dir)
        .args(["serve", "model.rnv", "--shards", "2", "--wal", "--addr", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .env("RENUVER_FAULT", "swap.pre_commit=crash")
        .spawn()
        .unwrap();
    let mut lines = BufReader::new(child.stdout.take().unwrap());
    let mut banner = String::new();
    lines.read_line(&mut banner).unwrap();
    let addr = banner
        .strip_prefix("listening on ")
        .and_then(|r| r.split_whitespace().next())
        .unwrap_or_else(|| panic!("bad banner {banner:?}"))
        .to_string();
    let mut ready = String::new();
    lines.read_line(&mut ready).unwrap();
    assert!(ready.starts_with("ready state=ok "), "{ready:?}");

    // PUT the new model; the armed fault aborts the process mid-swap.
    let body = std::fs::read(dir.join("model2.rnv")).unwrap();
    let mut raw = format!(
        "PUT /v1/model HTTP/1.1\r\nHost: t\r\nContent-Type: application/octet-stream\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )
    .into_bytes();
    raw.extend_from_slice(&body);
    let mut s = std::net::TcpStream::connect(&addr).unwrap();
    s.write_all(&raw).unwrap();
    let mut resp = String::new();
    let _ = BufReader::new(s).read_to_string(&mut resp);
    assert!(!resp.starts_with("HTTP/1.1 200"), "swap should have crashed, got: {resp:?}");
    assert!(!child.wait().unwrap().success(), "serve should have aborted mid-swap");

    // The aborted generation's files are on disk but uncommitted.
    assert!(dir.join("model.rnv.g1.shard0").exists(), "crash landed before the g1 write");

    // Recovery lands on exactly the state of a control that ingested
    // batch1 and was never asked to swap, and sweeps the orphans.
    let recovered = final_sharded_state(&dir);
    let control = sharded_control("swap-crash-ctl", &["batch1.csv"]);
    assert_eq!(recovered, control, "interrupted swap changed the logical state");
    for k in 0..SHARDS {
        assert!(!dir.join(format!("model.rnv.g1.shard{k}")).exists());
        assert!(!dir.join(format!("model.rnv.g1.shard{k}.wal")).exists());
    }
}

/// One shard's WAL is corrupted while a sibling keeps the full history:
/// the registry comes up `degraded` for the crashed shard only, keeps
/// serving imputes (the sibling's log rebuilds the dead shard's tail in
/// memory), and refuses ingest until the shard heals.
#[test]
#[cfg(unix)]
fn corrupt_shard_wal_serves_degraded_for_that_shard_only() {
    let dir = setup_sharded("degraded");
    assert_ok(&ingest(&dir, "batch1.csv", None, false), "batch1");

    // Flip a byte inside shard 0's WAL header: the log refuses to open.
    let wal_path = dir.join("model.rnv.shard0.wal");
    let mut bytes = std::fs::read(&wal_path).unwrap();
    bytes[9] ^= 0xff;
    std::fs::write(&wal_path, &bytes).unwrap();

    let mut child = bin()
        .current_dir(&dir)
        .args(["serve", "model.rnv", "--shards", "2", "--wal", "--addr", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let mut lines = BufReader::new(child.stdout.take().unwrap());
    let mut banner = String::new();
    lines.read_line(&mut banner).unwrap();
    let addr = banner
        .strip_prefix("listening on ")
        .and_then(|r| r.split_whitespace().next())
        .unwrap_or_else(|| panic!("bad banner {banner:?}"))
        .to_string();
    let mut ready = String::new();
    lines.read_line(&mut ready).unwrap();
    assert!(ready.starts_with("ready state=degraded "), "{ready:?}");

    let send = |raw: &str| {
        let mut s = std::net::TcpStream::connect(&addr).unwrap();
        s.write_all(raw.as_bytes()).unwrap();
        let mut resp = String::new();
        BufReader::new(s).read_to_string(&mut resp).unwrap();
        resp
    };

    // Only shard 0 is degraded, and batch1's two rows were rebuilt from
    // the sibling's log: 6 base rows + 2 replayed across the shards.
    let health = send("GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
    assert!(health.contains("\"state\":\"degraded\""), "{health}");
    assert!(
        health.contains("{\"shard\":0,\"state\":\"degraded\""),
        "shard 0 should be degraded: {health}"
    );
    assert!(
        health.contains("{\"shard\":1,\"state\":\"ok\""),
        "shard 1 should be healthy: {health}"
    );
    let rows: u64 = health
        .split("\"rows\":")
        .skip(1)
        .map(|r| r.split(|c: char| !c.is_ascii_digit()).next().unwrap().parse::<u64>().unwrap())
        .sum();
    assert_eq!(rows, 8, "replayed batch rows missing from the registry: {health}");

    // Reads still answer from the recovered state.
    let body = r#"{"tuples": [["Salerno", null]]}"#;
    let resp = send(&format!(
        "POST /v1/impute HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    ));
    assert!(resp.starts_with("HTTP/1.1 200 "), "{resp}");
    assert!(resp.contains("84084"), "{resp}");

    // Writes are refused: acknowledging a batch a degraded log never saw
    // would fork the shards.
    let resp = send(&format!(
        "POST /v1/ingest HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    ));
    assert!(resp.starts_with("HTTP/1.1 503 "), "{resp}");

    let kill = Command::new("kill").arg("-TERM").arg(child.id().to_string()).status().unwrap();
    assert!(kill.success());
    assert!(child.wait().unwrap().success(), "serve did not exit cleanly");
}
