//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;

use renuver::core::config::VerifyScope;
use renuver::core::{is_faultless, Renuver, RenuverConfig};
use renuver::core::verify::VerifyPlan;
use renuver::data::{csv, AttrType, Relation, Schema, Value};
use renuver::distance::{levenshtein, levenshtein_bounded, value_distance, DistanceOracle};
use renuver::eval::inject;
use renuver::rfd::check;
use renuver::rfd::discovery::{discover, DiscoveryConfig};
use renuver::rfd::{Constraint, Rfd, RfdSet};

// ---------------------------------------------------------------- distance

proptest! {
    #[test]
    fn levenshtein_is_a_metric(a in ".{0,12}", b in ".{0,12}", c in ".{0,12}") {
        let dab = levenshtein(&a, &b);
        let dba = levenshtein(&b, &a);
        prop_assert_eq!(dab, dba); // symmetry
        prop_assert_eq!(levenshtein(&a, &a), 0); // identity
        prop_assert!((dab == 0) == (a == b)); // separation
        // triangle inequality
        prop_assert!(dab <= levenshtein(&a, &c) + levenshtein(&c, &b));
    }

    #[test]
    fn levenshtein_bounds(a in ".{0,16}", b in ".{0,16}") {
        let d = levenshtein(&a, &b);
        let la = a.chars().count();
        let lb = b.chars().count();
        prop_assert!(d >= la.abs_diff(lb));
        prop_assert!(d <= la.max(lb));
    }

    #[test]
    fn bounded_levenshtein_agrees(a in ".{0,12}", b in ".{0,12}", max in 0usize..12) {
        let d = levenshtein(&a, &b);
        match levenshtein_bounded(&a, &b, max) {
            Some(got) => {
                prop_assert_eq!(got, d);
                prop_assert!(d <= max);
            }
            None => prop_assert!(d > max),
        }
    }

    #[test]
    fn value_distance_symmetric_and_nonnegative(x in -1000i64..1000, y in -1000i64..1000) {
        let a = Value::Int(x);
        let b = Value::Int(y);
        prop_assert_eq!(value_distance(&a, &b), value_distance(&b, &a));
        prop_assert!(value_distance(&a, &b).unwrap() >= 0.0);
    }
}

// --------------------------------------------------------------- relations

/// Strategy: a small relation with one text and two int columns, with
/// nulls sprinkled in.
fn arb_relation() -> impl Strategy<Value = Relation> {
    let cell_text = prop_oneof![
        3 => "[a-d]{1,4}".prop_map(Value::from),
        1 => Just(Value::Null),
    ];
    let cell_int = prop_oneof![
        3 => (0i64..8).prop_map(Value::Int),
        1 => Just(Value::Null),
    ];
    let row = (cell_text, cell_int.clone(), cell_int)
        .prop_map(|(a, b, c)| vec![a, b, c]);
    proptest::collection::vec(row, 2..14).prop_map(|rows| {
        let schema = Schema::new([
            ("T", AttrType::Text),
            ("X", AttrType::Int),
            ("Y", AttrType::Int),
        ])
        .unwrap();
        Relation::new(schema, rows).unwrap()
    })
}

/// Strategy: a random RFD over the 3-column schema above.
fn arb_rfd() -> impl Strategy<Value = Rfd> {
    (0usize..3, proptest::collection::vec((0usize..3, 0.0f64..5.0), 1..3)).prop_filter_map(
        "lhs must exclude rhs and be distinct",
        |(rhs, lhs)| {
            let mut constraints: Vec<Constraint> = Vec::new();
            for (attr, thr) in lhs {
                if attr != rhs && !constraints.iter().any(|c| c.attr == attr) {
                    constraints.push(Constraint::new(attr, thr.floor()));
                }
            }
            if constraints.is_empty() {
                return None;
            }
            Some(Rfd::new(constraints, Constraint::new(rhs, 1.0)))
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csv_round_trips(rel in arb_relation()) {
        let text = csv::write_string(&rel);
        let back = csv::read_str(&text).unwrap();
        prop_assert_eq!(back, rel);
    }

    #[test]
    fn oracle_matches_direct(rel in arb_relation()) {
        let cached = DistanceOracle::build(&rel, 64);
        for attr in 0..rel.arity() {
            for i in 0..rel.len() {
                for j in 0..rel.len() {
                    prop_assert_eq!(
                        cached.distance(&rel, attr, i, j),
                        value_distance(rel.value(i, attr), rel.value(j, attr))
                    );
                }
            }
        }
    }

    #[test]
    fn injection_preserves_everything_else(rel in arb_relation(), seed in 0u64..99) {
        let (incomplete, truth) = inject(&rel, 0.3, seed);
        prop_assert_eq!(incomplete.len(), rel.len());
        let mut restored = incomplete.clone();
        for (cell, v) in &truth {
            prop_assert!(incomplete.is_missing(cell.row, cell.col));
            restored.set_value(cell.row, cell.col, v.clone());
        }
        prop_assert_eq!(restored, rel);
    }

    #[test]
    fn discovered_rfds_hold(rel in arb_relation()) {
        let cfg = DiscoveryConfig { parallel: false, ..DiscoveryConfig::with_limit(3.0) };
        let rfds = discover(&rel, &cfg);
        for rfd in rfds.iter() {
            prop_assert!(
                check::holds(&rel, rfd),
                "violated {} on\n{}",
                rfd.display(rel.schema()),
                rel
            );
        }
    }

    #[test]
    fn rfd_parse_never_panics(input in ".{0,60}") {
        let schema = Schema::new([
            ("T", AttrType::Text),
            ("X", AttrType::Int),
        ])
        .unwrap();
        let _ = Rfd::parse(&input, &schema); // must not panic
    }

    #[test]
    fn rule_parser_never_panics(input in "(attr [A-C]\n(  (set|regex|delta) .{0,20}\n){0,3}){0,3}") {
        let _ = renuver::rulekit::parse_rules(&input); // must not panic
    }

    #[test]
    fn regex_compiler_never_panics(pattern in ".{0,30}") {
        if let Ok(re) = renuver::rulekit::Regex::new(&pattern) {
            let _ = re.is_match("some probe text");
        }
    }

    #[test]
    fn csv_reader_never_panics(input in ".{0,200}") {
        let _ = csv::read_str(&input); // must not panic
    }

    #[test]
    fn rfd_display_parse_round_trip(rfd in arb_rfd()) {
        let schema = Schema::new([
            ("T", AttrType::Text),
            ("X", AttrType::Int),
            ("Y", AttrType::Int),
        ])
        .unwrap();
        let text = rfd.display(&schema).to_string();
        prop_assert_eq!(Rfd::parse(&text, &schema).unwrap(), rfd);
    }

    #[test]
    fn verify_plan_matches_is_faultless(
        rel in arb_relation(),
        rfds in proptest::collection::vec(arb_rfd(), 1..5),
        scope in prop_oneof![Just(VerifyScope::LhsOnly), Just(VerifyScope::Full)],
    ) {
        let sigma = RfdSet::from_vec(rfds);
        let cells = rel.missing_cells();
        let oracle = DistanceOracle::build(&rel, 64);
        for cell in cells.into_iter().take(3) {
            let plan = VerifyPlan::build(&oracle, &rel, cell.row, cell.col, sigma.iter(), scope);
            // Try every possible donor row with a present value.
            for donor in 0..rel.len() {
                if donor == cell.row || rel.is_missing(donor, cell.col) {
                    continue;
                }
                let fast = plan.admits(&oracle, &rel, cell.col, donor);
                let mut mutated = rel.clone();
                mutated.set_value(cell.row, cell.col, rel.value(donor, cell.col).clone());
                let slow = is_faultless(&mutated, cell.row, cell.col, sigma.iter(), scope);
                prop_assert_eq!(
                    fast, slow,
                    "plan/reference disagree at {:?} donor {} scope {:?}\n{}",
                    cell, donor, scope, rel
                );
            }
        }
    }

    #[test]
    fn skyline_discovery_equals_naive_reference(rel in arb_relation()) {
        use renuver::rfd::naive::{discover_naive, NaiveConfig};
        let fast = discover(
            &rel,
            &DiscoveryConfig {
                max_lhs: 2,
                parallel: false,
                ..DiscoveryConfig::with_limit(2.0)
            },
        );
        let naive = discover_naive(&rel, &NaiveConfig::new(2, 2));
        let covered = |x: &RfdSet, y: &RfdSet| {
            x.iter().all(|rx| y.iter().any(|ry| ry.implies(rx)))
        };
        prop_assert!(
            covered(&naive, &fast) && covered(&fast, &naive),
            "mismatch on\n{}\nnaive:\n{}fast:\n{}",
            rel,
            naive.to_text(rel.schema()),
            fast.to_text(rel.schema())
        );
    }

    #[test]
    fn subsumption_implication_is_sound_with_nulls(
        rel in arb_relation(),
        rfds in proptest::collection::vec(arb_rfd(), 2..5),
        target in arb_rfd(),
    ) {
        // Depth 0 (subsumption only) is sound on arbitrary instances,
        // missing values included.
        let sigma = RfdSet::from_vec(rfds);
        if renuver::rfd::implied_by(&sigma, &target, 0)
            && sigma.iter().all(|r| check::holds(&rel, r))
        {
            prop_assert!(
                check::holds(&rel, &target),
                "claimed implied but violated: {} from\n{}on\n{}",
                target.display(rel.schema()),
                sigma.to_text(rel.schema()),
                rel
            );
        }
    }

    #[test]
    fn chained_implication_is_sound_without_nulls(
        rel in arb_relation(),
        rfds in proptest::collection::vec(arb_rfd(), 2..5),
        target in arb_rfd(),
    ) {
        // Chaining is sound under its documented precondition: no missing
        // values (transitivity's middle attribute must always be present).
        let complete = rel.filter_rows(|_, t| t.iter().all(|v| !v.is_null()));
        let sigma = RfdSet::from_vec(rfds);
        if renuver::rfd::implied_by(&sigma, &target, 3)
            && sigma.iter().all(|r| check::holds(&complete, r))
        {
            prop_assert!(
                check::holds(&complete, &target),
                "claimed implied but violated: {} from\n{}on\n{}",
                target.display(complete.schema()),
                sigma.to_text(complete.schema()),
                complete
            );
        }
    }

    #[test]
    fn imputation_never_invents_values(rel in arb_relation()) {
        let cfg = DiscoveryConfig { parallel: false, ..DiscoveryConfig::with_limit(3.0) };
        let rfds = discover(&rel, &cfg);
        let result = Renuver::new(RenuverConfig::default()).impute(&rel, &rfds);
        for ic in &result.imputed {
            let domain = rel.active_domain(ic.cell.col);
            prop_assert!(
                domain.contains(&ic.value),
                "invented value {:?} at {:?}",
                ic.value,
                ic.cell
            );
        }
        // Non-missing cells are untouched.
        for row in 0..rel.len() {
            for col in 0..rel.arity() {
                if !rel.is_missing(row, col) {
                    prop_assert_eq!(rel.value(row, col), result.relation.value(row, col));
                }
            }
        }
    }
}
