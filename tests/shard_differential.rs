//! Differential harness for the sharded engine path: a registry of N
//! shard parts answering through [`renuver::core::impute_sharded`] must
//! be **bit-identical** to the single-engine batch path, for every shard
//! count, index mode, and batch-verification setting.
//!
//! The sharded path scans the *global* row order reconstructed through
//! the `locate` table and scores with plain value-level distances, so
//! three equivalences proven elsewhere compose into this suite's claim:
//! value distances == oracle distances (`kernel_parity`), indexed scans
//! == plain scans (`index_differential`), and the batch-verification
//! cache == no cache (`batch_differential`). One sharded implementation
//! therefore has to match the single engine under all four
//! {scan, indexed} × {batch-verify on, off} combinations — and does,
//! byte for byte, on the paper's Restaurant stand-in, the 5 000-row
//! synthetic shop fixture, and randomly generated relations.
//!
//! Ingest is covered too: committing the repaired batch to the owning
//! shards (hash routing, batch-order global ids) must leave the shard
//! set answering the *next* batch exactly like the grown single engine.
//!
//! Comparisons canonicalize through `Debug` text (as the other
//! differential suites do) so NaN distances compare equal to themselves.
//! Equality is asserted for unlimited budgets with `parallelism: 1` —
//! the scope every differential suite in this repo pins.

use proptest::prelude::*;

use renuver::core::shard::{commit_sharded, impute_sharded, partition, ShardPlan};
use renuver::core::{BatchResult, Engine, IndexMode, RenuverConfig};
use renuver::data::{AttrType, Relation, Schema, Tuple, Value};
use renuver::datasets::Dataset;
use renuver::eval::inject;
use renuver::rfd::discovery::{discover, DiscoveryConfig};
use renuver::rfd::{Constraint, Rfd, RfdSet};
use renuver_bench::synthetic_shops;

/// The shard counts the suite sweeps: the degenerate single shard, even
/// splits, and a prime count that leaves shards unevenly loaded.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];

fn config(mode: IndexMode, batch_verify: bool) -> RenuverConfig {
    RenuverConfig {
        parallelism: 1,
        index_mode: mode,
        explain: true,
        batch_verify,
        ..RenuverConfig::default()
    }
}

/// Everything decision-relevant in a batch result (the budget report is
/// excluded: elapsed time differs between identical runs).
fn canon_batch(r: &BatchResult) -> String {
    format!("{:?}|{:?}|{:?}|{:?}|{:?}", r.tuples, r.outcomes, r.imputed, r.explains, r.stats)
}

/// Splits the last `k` rows of `rel` off as the request batch.
fn split(rel: &Relation, k: usize) -> (Relation, Vec<Tuple>) {
    let base_len = rel.len() - k;
    let mut base = rel.clone();
    base.truncate(base_len);
    let batch = (base_len..rel.len()).map(|i| rel.tuple(i).clone()).collect();
    (base, batch)
}

fn sharded(plan: &ShardPlan, sigma: &RfdSet, cfg: &RenuverConfig, batch: &[Tuple]) -> BatchResult {
    let parts: Vec<&Relation> = plan.parts.iter().collect();
    impute_sharded(&parts, &plan.locate, sigma, cfg, batch.to_vec()).expect("valid batch")
}

/// Runs the single engine and every sharded topology on the same batch
/// and asserts byte-identity; returns the single-engine result.
fn assert_all_shard_counts_match(
    base: &Relation,
    batch: &[Tuple],
    sigma: &RfdSet,
    mode: IndexMode,
    batch_verify: bool,
) -> BatchResult {
    let cfg = config(mode, batch_verify);
    let mut engine = Engine::prepare(base.clone(), sigma.clone(), cfg.clone());
    let single = engine.impute_batch(batch.to_vec()).expect("single-engine batch");
    let want = canon_batch(&single);
    for shards in SHARD_COUNTS {
        let plan = partition(base, sigma, shards);
        assert_eq!(plan.locate.len(), base.len());
        assert_eq!(plan.parts.iter().map(Relation::len).sum::<usize>(), base.len());
        let got = sharded(&plan, sigma, &cfg, batch);
        assert_eq!(
            canon_batch(&got),
            want,
            "sharded run diverged from single engine \
             (shards={shards}, mode={mode:?}, batch_verify={batch_verify})"
        );
    }
    single
}

// ------------------------------------------------------------- restaurant

fn restaurant_fixture() -> (Relation, Vec<Tuple>, RfdSet) {
    let rel = Dataset::Restaurant.relation(7);
    let sigma = discover(&rel, &DiscoveryConfig::with_limit(3.0));
    let (incomplete, _truth) = inject(&rel, 0.05, 11);
    let (base, batch) = split(&incomplete, 24);
    (base, batch, sigma)
}

#[test]
fn restaurant_sharded_matches_single_engine() {
    let (base, batch, sigma) = restaurant_fixture();
    assert!(batch.iter().any(|t| t.iter().any(|v| v.is_null())), "batch must contain holes");
    for mode in [IndexMode::Scan, IndexMode::Indexed] {
        for batch_verify in [true, false] {
            let single = assert_all_shard_counts_match(&base, &batch, &sigma, mode, batch_verify);
            assert!(single.stats.missing_total > 0, "fixture imputed nothing");
            assert!(single.stats.imputed > 0, "fixture imputed nothing");
        }
    }
}

#[test]
fn restaurant_ingest_sharded_matches_single_engine() {
    let (base, batch, sigma) = restaurant_fixture();
    // Two consecutive batches: the first is committed, the second must
    // see the grown donor set — including the first batch's repairs —
    // identically on both topologies.
    let (batch1, batch2) = batch.split_at(batch.len() / 2);
    for shards in SHARD_COUNTS {
        let cfg = config(IndexMode::Indexed, true);
        let mut engine = Engine::prepare(base.clone(), sigma.clone(), cfg.clone());
        let (r1, commit) = engine.ingest_batch_with(batch1.to_vec(), &cfg).expect("ingest");
        assert_eq!(commit.rows, batch1.len());
        let r2 = engine.impute_batch(batch2.to_vec()).expect("post-ingest batch");

        let mut plan = partition(&base, &sigma, shards);
        let s1 = sharded(&plan, &sigma, &cfg, batch1);
        assert_eq!(canon_batch(&s1), canon_batch(&r1), "ingest impute diverged (shards={shards})");
        commit_sharded(&mut plan, &s1.tuples);
        assert_eq!(plan.locate.len(), base.len() + batch1.len());
        let s2 = sharded(&plan, &sigma, &cfg, batch2);
        assert_eq!(
            canon_batch(&s2),
            canon_batch(&r2),
            "post-commit batch diverged (shards={shards})"
        );
    }
}

// ---------------------------------------------------------- 5 k synthetic

fn synthetic_fixture() -> (Relation, Vec<Tuple>, RfdSet) {
    let rel = synthetic_shops(5_000);
    let sigma = RfdSet::from_text(
        "City(<=0) -> Zip(<=0)\n\
         Zip(<=0) -> City(<=3)\n\
         Name(<=1) -> City(<=3)\n\
         Zip(<=0) -> Class(<=8)",
        rel.schema(),
    )
    .unwrap();
    let (incomplete, _truth) = inject(&rel, 0.002, 23);
    let (base, batch) = split(&incomplete, 16);
    (base, batch, sigma)
}

#[test]
fn synthetic_5k_sharded_matches_single_engine() {
    let (base, batch, sigma) = synthetic_fixture();
    for mode in [IndexMode::Scan, IndexMode::Indexed] {
        assert_all_shard_counts_match(&base, &batch, &sigma, mode, true);
    }
}

#[test]
fn synthetic_5k_ingest_sharded_matches_single_engine() {
    let (base, batch, sigma) = synthetic_fixture();
    let cfg = config(IndexMode::Indexed, true);
    let mut engine = Engine::prepare(base.clone(), sigma.clone(), cfg.clone());
    let (r1, _) = engine.ingest_batch_with(batch.clone(), &cfg).expect("ingest");
    let probe = vec![vec![
        Value::from("Shop-0007"),
        Value::from("City07"),
        Value::Null,
        Value::Int(3),
    ]];
    let r2 = engine.impute_batch(probe.clone()).expect("probe");

    for shards in [2, 7] {
        let mut plan = partition(&base, &sigma, shards);
        let s1 = sharded(&plan, &sigma, &cfg, &batch);
        assert_eq!(canon_batch(&s1), canon_batch(&r1), "shards={shards}");
        commit_sharded(&mut plan, &s1.tuples);
        let s2 = sharded(&plan, &sigma, &cfg, &probe);
        assert_eq!(canon_batch(&s2), canon_batch(&r2), "post-commit probe (shards={shards})");
    }
}

// ----------------------------------------------------- random (proptest)

/// Small random relations biased toward value collisions (the
/// `index_differential` generator, minus NaN *thresholds*: the sharded
/// path computes value distances directly, and a NaN threshold reaching
/// the Text bounded-distance kernel is clamped to 0 there while the
/// oracle's matrix lookup filters it out — hand-written-rule pathology
/// out of scope for this suite; NaN *data* stays in).
fn arb_relation() -> impl Strategy<Value = Relation> {
    let col_types = prop::collection::vec(
        prop_oneof![Just(AttrType::Int), Just(AttrType::Float), Just(AttrType::Text)],
        2..5,
    );
    (col_types, 4usize..14).prop_flat_map(|(types, rows)| {
        let schema =
            Schema::new(types.iter().enumerate().map(|(i, t)| (format!("c{i}"), *t)))
                .expect("generated names are distinct");
        let cell = |ty: AttrType| -> BoxedStrategy<Value> {
            match ty {
                AttrType::Int => prop_oneof![
                    1 => Just(Value::Null),
                    6 => (-3i64..4).prop_map(Value::Int),
                ]
                .boxed(),
                AttrType::Float => prop_oneof![
                    1 => Just(Value::Null),
                    5 => (-2.0f64..2.0).prop_map(|f| Value::Float((f * 2.0).round() / 2.0)),
                    1 => Just(Value::Float(f64::NAN)),
                    1 => Just(Value::Float(f64::INFINITY)),
                ]
                .boxed(),
                _ => prop_oneof![
                    1 => Just(Value::Null),
                    6 => "[ab]{0,3}".prop_map(Value::from),
                    1 => Just(Value::Text("αβ".into())),
                ]
                .boxed(),
            }
        };
        let cells: Vec<BoxedStrategy<Value>> = types.iter().map(|t| cell(*t)).collect();
        let row = BoxedStrategy::new(move |rng| {
            cells.iter().map(|s| s.generate(rng)).collect::<Vec<Value>>()
        });
        prop::collection::vec(row, rows..rows + 1).prop_map(move |tuples| {
            Relation::new(schema.clone(), tuples).expect("tuples match the schema")
        })
    })
}

/// Random RFD sets over `arity` attributes with finite thresholds.
fn arb_rfds(arity: usize) -> BoxedStrategy<RfdSet> {
    let thr = prop_oneof![Just(0.0f64), Just(1.0), Just(2.0), Just(5.0), Just(f64::INFINITY)];
    let rfd = (0..arity, 0..arity, thr.clone(), thr).prop_map(move |(lhs, rhs, lhs_thr, rhs_thr)| {
        let lhs = if lhs == rhs { (lhs + 1) % arity } else { lhs };
        Rfd::new(vec![Constraint::new(lhs, lhs_thr)], Constraint::new(rhs, rhs_thr))
    });
    prop::collection::vec(rfd, 1..5).prop_map(RfdSet::from_vec).boxed()
}

fn cases(default_cases: u32) -> ProptestConfig {
    let n = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default_cases);
    ProptestConfig::with_cases(n)
}

proptest! {
    #![proptest_config(cases(64))]

    /// Random relation, random RFDs, random shard count and index mode:
    /// sharded impute == single-engine impute, and after committing the
    /// repaired batch, a re-run of the same batch still matches the
    /// grown single engine.
    #[test]
    fn random_sharded_matches_single(
        input in arb_relation().prop_flat_map(|rel| {
            let arity = rel.arity();
            (Just(rel), arb_rfds(arity), 1usize..8, any::<bool>(), any::<bool>())
        }),
    ) {
        let (rel, sigma, shards, indexed, batch_verify) = input;
        let k = (rel.len() / 3).max(1);
        let (base, batch) = split(&rel, k);
        let mode = if indexed { IndexMode::Indexed } else { IndexMode::Scan };
        let cfg = config(mode, batch_verify);

        let mut engine = Engine::prepare(base.clone(), sigma.clone(), cfg.clone());
        let single = engine.impute_batch(batch.clone()).expect("single-engine batch");
        let mut plan = partition(&base, &sigma, shards);
        let got = sharded(&plan, &sigma, &cfg, &batch);
        prop_assert_eq!(canon_batch(&got), canon_batch(&single));

        // Ingest equivalence on the same random input.
        engine.commit_tuples(single.tuples.clone()).expect("commit");
        let single_again = engine.impute_batch(batch.clone()).expect("post-commit batch");
        commit_sharded(&mut plan, &got.tuples);
        let got_again = sharded(&plan, &sigma, &cfg, &batch);
        prop_assert_eq!(canon_batch(&got_again), canon_batch(&single_again));
    }
}
