//! Differential harness: the batch-verification cache must be bit-for-bit
//! identical to the uncached per-cell scans.
//!
//! The signature-sharing cache (`renuver_core::batch`) lets missing cells
//! with the same imputed attribute and LHS value signature share one
//! witness scan and one candidate scan per cluster. Soundness rests on
//! three invariants (documented in the module): signatures cover every
//! target-row read, every relation write lands in the affected entries'
//! pending sets and is re-evaluated with the exact scan predicates on
//! reuse, and key reactivation bumps a version that invalidates
//! cluster-composition-dependent lists. These tests pin the resulting
//! contract — `batch_verify: true` and `batch_verify: false` produce the
//! same [`ImputationResult`] — at three levels:
//!
//! 1. **End-to-end proptest** — full results (repaired relation, imputed
//!    cells, outcomes, stats, trace) compared on random relations and RFD
//!    sets, in both `IndexMode::Scan` and `IndexMode::Indexed`.
//! 2. **Deterministic fixtures** — signature-heavy relations where the
//!    cache demonstrably engages (`core.batch_plans_reused > 0`),
//!    interleaved writes turn imputed rows into donors for later
//!    same-signature cells, and key reactivation forces a version bump.
//! 3. **Engine batch path** — `Engine::impute_batch` compared across the
//!    flag, since the serve `/v1/impute` path reuses prepared state.
//!
//! Budget-limited runs are compared too: the cache adds no budget
//! checkpoints (the only in-loop poll is per-cell), so unlike the index
//! differential, a tripped budget truncates both paths at the same cell.

use proptest::prelude::*;

use renuver::budget::Budget;
use renuver::core::{Engine, ImputationResult, IndexMode, Renuver, RenuverConfig};
use renuver::data::{AttrType, Relation, Schema, Value};
use renuver::datasets::Dataset;
use renuver::eval::inject;
use renuver::obs::Tracer;
use renuver::rfd::discovery::{discover, DiscoveryConfig};
use renuver::rfd::{Constraint, Rfd, RfdSet};

fn run_batch(rel: &Relation, sigma: &RfdSet, batch: bool, mode: IndexMode) -> ImputationResult {
    let cfg = RenuverConfig {
        parallelism: 1,
        trace: true,
        batch_verify: batch,
        index_mode: mode,
        ..RenuverConfig::default()
    };
    Renuver::new(cfg).impute(rel, sigma)
}

/// Canonical rendering of everything decision-relevant in a result — the
/// same convention as `tests/index_differential.rs`: the budget report is
/// excluded (elapsed time differs), and comparing `Debug` text makes NaN
/// values compare equal to themselves.
fn canon(r: &ImputationResult) -> String {
    format!(
        "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
        r.relation, r.imputed, r.unimputed, r.outcomes, r.stats, r.trace
    )
}

/// Asserts the cached and uncached runs agree under both the scan and the
/// indexed donor-retrieval paths, and returns the uncached scan result.
fn assert_batch_agrees(rel: &Relation, sigma: &RfdSet) -> ImputationResult {
    let reference = run_batch(rel, sigma, false, IndexMode::Scan);
    for mode in [IndexMode::Scan, IndexMode::Indexed] {
        let cached = run_batch(rel, sigma, true, mode);
        assert_eq!(
            canon(&reference),
            canon(&cached),
            "batch-verify run diverged from uncached scan (mode={mode:?})"
        );
    }
    reference
}

// ----------------------------------------------------- random generators

/// Small random relations biased toward value collisions — shared-value
/// columns are exactly what produces shared signatures, so the cache's
/// reuse path (not just the miss path) gets random coverage. Mirrors
/// `tests/index_differential.rs`.
fn arb_relation() -> impl Strategy<Value = Relation> {
    let col_types = prop::collection::vec(
        prop_oneof![
            Just(AttrType::Int),
            Just(AttrType::Float),
            Just(AttrType::Text),
        ],
        2..5,
    );
    (col_types, 2usize..14).prop_flat_map(|(types, rows)| {
        let schema = Schema::new(
            types
                .iter()
                .enumerate()
                .map(|(i, t)| (format!("c{i}"), *t)),
        )
        .expect("generated names are distinct");
        let cell = |ty: AttrType| -> BoxedStrategy<Value> {
            match ty {
                AttrType::Int => prop_oneof![
                    1 => Just(Value::Null),
                    6 => (-3i64..4).prop_map(Value::Int),
                ]
                .boxed(),
                AttrType::Float => prop_oneof![
                    1 => Just(Value::Null),
                    5 => (-2.0f64..2.0).prop_map(|f| Value::Float((f * 2.0).round() / 2.0)),
                    1 => Just(Value::Float(f64::NAN)),
                    1 => Just(Value::Float(f64::INFINITY)),
                ]
                .boxed(),
                _ => prop_oneof![
                    1 => Just(Value::Null),
                    6 => "[ab]{0,3}".prop_map(Value::from),
                    1 => Just(Value::Text("αβ".into())),
                ]
                .boxed(),
            }
        };
        let cells: Vec<BoxedStrategy<Value>> = types.iter().map(|t| cell(*t)).collect();
        let row = BoxedStrategy::new(move |rng| {
            cells.iter().map(|s| s.generate(rng)).collect::<Vec<Value>>()
        });
        prop::collection::vec(row, rows..rows + 1).prop_map(move |tuples| {
            Relation::new(schema.clone(), tuples).expect("tuples match the schema")
        })
    })
}

/// Random RFD sets with the cache's hard thresholds: exact match, small
/// bands, NaN, infinity.
fn arb_rfds(arity: usize) -> BoxedStrategy<RfdSet> {
    let thr = prop_oneof![
        Just(0.0f64),
        Just(1.0),
        Just(2.0),
        Just(5.0),
        Just(f64::NAN),
        Just(f64::INFINITY),
    ];
    let rfd = (0..arity, 0..arity, thr.clone(), thr).prop_map(
        move |(lhs, rhs, lhs_thr, rhs_thr)| {
            let lhs = if lhs == rhs { (lhs + 1) % arity } else { lhs };
            Rfd::new(vec![Constraint::new(lhs, lhs_thr)], Constraint::new(rhs, rhs_thr))
        },
    );
    prop::collection::vec(rfd, 1..5).prop_map(RfdSet::from_vec).boxed()
}

/// Per-suite case count, overridable by `PROPTEST_CASES` for CI.
fn cases(default_cases: u32) -> ProptestConfig {
    let n = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default_cases);
    ProptestConfig::with_cases(n)
}

// ------------------------------------------------- end-to-end differential

proptest! {
    #![proptest_config(cases(96))]

    /// The headline guarantee: full imputation runs make identical
    /// decisions with the cache on and off, under scan and index alike.
    #[test]
    fn imputation_results_match_uncached(
        input in arb_relation().prop_flat_map(|rel| {
            let arity = rel.arity();
            (Just(rel), arb_rfds(arity))
        }),
    ) {
        let (rel, sigma) = input;
        let reference = run_batch(&rel, &sigma, false, IndexMode::Scan);
        for mode in [IndexMode::Scan, IndexMode::Indexed] {
            let cached = run_batch(&rel, &sigma, true, mode);
            prop_assert_eq!(canon(&reference), canon(&cached), "mode={:?}", mode);
        }
        prop_assert_eq!(
            reference.stats.imputed + reference.stats.unimputed,
            reference.stats.missing_total
        );
    }
}

#[test]
fn restaurant_sample_identical_across_flag() {
    let rel = Dataset::Restaurant.relation(11);
    let (incomplete, _truth) = inject(&rel, 0.03, 11);
    let sigma = discover(
        &incomplete,
        &DiscoveryConfig { max_lhs: 2, ..DiscoveryConfig::with_limit(6.0) },
    );
    let result = assert_batch_agrees(&incomplete, &sigma);
    assert!(result.stats.imputed > 0, "degenerate fixture: nothing imputed");
}

/// 5 000 rows with planted RFDs — the scale at which the index engages,
/// so both retrieval paths run in earnest under the cache. A higher
/// injection rate than the index differential uses (1% vs 0.2%) makes
/// same-signature collisions near-certain across 40 cities.
fn synthetic_5k() -> (Relation, RfdSet) {
    let schema = Schema::new([
        ("Name", AttrType::Text),
        ("City", AttrType::Text),
        ("Zip", AttrType::Text),
        ("Class", AttrType::Int),
    ])
    .unwrap();
    let rows: Vec<Vec<Value>> = (0..5_000usize)
        .map(|i| {
            let city_id = i % 40;
            vec![
                Value::from(format!("Shop-{:04}", i % 800).as_str()),
                Value::from(format!("City{city_id:02}").as_str()),
                Value::from(format!("9{:04}", city_id * 7).as_str()),
                Value::Int((i % 9) as i64),
            ]
        })
        .collect();
    let rel = Relation::new(schema, rows).unwrap();
    let sigma = RfdSet::from_text(
        "City(<=0) -> Zip(<=0)\n\
         Zip(<=1) -> City(<=3)\n\
         Name(<=3) -> City(<=6)\n\
         Zip(<=0) -> Class(<=8)",
        rel.schema(),
    )
    .unwrap();
    (rel, sigma)
}

#[test]
fn synthetic_5k_identical_across_flag() {
    let (rel, sigma) = synthetic_5k();
    let (incomplete, truth) = inject(&rel, 0.01, 23);
    assert!(truth.len() > 100, "fixture should knock out a couple hundred cells");
    let result = assert_batch_agrees(&incomplete, &sigma);
    assert!(result.stats.imputed > 0, "degenerate fixture: nothing imputed");
}

// ------------------------------------------------- deterministic fixtures

fn text_relation(cols: &[(&str, &[&str])]) -> Relation {
    let schema =
        Schema::new(cols.iter().map(|(n, _)| ((*n).to_owned(), AttrType::Text))).unwrap();
    let rows = cols[0].1.len();
    let tuples: Vec<Vec<Value>> = (0..rows)
        .map(|i| {
            cols.iter()
                .map(|(_, vals)| match vals[i] {
                    "_" => Value::Null,
                    v => Value::from(v),
                })
                .collect()
        })
        .collect();
    Relation::new(schema, tuples).unwrap()
}

/// Many missing `Zip` cells sharing a handful of `City` signatures: the
/// fixture the cache exists for. 5 cities × 12 rows, every 4th Zip
/// missing — each city contributes ~3 same-signature cells.
fn signature_heavy() -> (Relation, RfdSet) {
    let schema = Schema::new([
        ("City", AttrType::Text),
        ("Zip", AttrType::Text),
        ("Class", AttrType::Int),
    ])
    .unwrap();
    let rows: Vec<Vec<Value>> = (0..60usize)
        .map(|i| {
            let city = i % 5;
            vec![
                Value::from(format!("City{city}").as_str()),
                if i % 4 == 3 {
                    Value::Null
                } else {
                    Value::from(format!("9{:03}", city * 11).as_str())
                },
                Value::Int((city * 2) as i64),
            ]
        })
        .collect();
    let rel = Relation::new(schema, rows).unwrap();
    let sigma = RfdSet::from_text(
        "City(<=0) -> Zip(<=0)\nCity(<=1) -> Zip(<=1)",
        rel.schema(),
    )
    .unwrap();
    (rel, sigma)
}

/// The cache must actually engage on the signature-heavy fixture — a
/// differential suite that only ever exercises the miss path would pin
/// nothing. The `core.batch_plans_*` counters come from the traced
/// metrics roll-up.
#[test]
fn cache_engages_on_shared_signatures() {
    let (rel, sigma) = signature_heavy();
    assert_batch_agrees(&rel, &sigma);

    let run_counters = |batch: bool| {
        let tracer = Tracer::enabled();
        let cfg = RenuverConfig {
            parallelism: 1,
            batch_verify: batch,
            tracer: tracer.clone(),
            ..RenuverConfig::default()
        };
        let result = Renuver::new(cfg).impute(&rel, &sigma);
        let m = tracer.metrics();
        (
            result,
            m.counter("core.batch_plans_built").get(),
            m.counter("core.batch_plans_reused").get(),
        )
    };

    let (on, built, reused) = run_counters(true);
    assert!(on.stats.imputed > 0, "degenerate fixture: nothing imputed");
    assert!(built > 0, "cache never built a plan");
    assert!(reused > 0, "fixture shares signatures but no plan was reused");
    // 5 cities, 15 missing Zip cells: far fewer distinct signatures than
    // cells, so reuse must dominate.
    assert!(
        built + reused >= 15,
        "every missing cell goes through the cache: built={built} reused={reused}"
    );

    let (off, built_off, reused_off) = run_counters(false);
    assert_eq!(built_off, 0, "disabled cache must not build plans");
    assert_eq!(reused_off, 0, "disabled cache must not reuse plans");
    assert_eq!(on.stats.imputed, off.stats.imputed);
}

/// Imputed rows become donors for later same-signature cells: A(≤0) → B
/// fills B values that then serve as LHS evidence for B(≤0) → C on cells
/// whose signature was cached *before* the write. The pending-row
/// reconciliation path is what keeps the two runs identical here.
#[test]
fn chained_writes_reconcile_into_cached_entries() {
    let rel = text_relation(&[
        ("A", &["k1", "k1", "k1", "k2", "k2", "k2", "k3", "k3"]),
        ("B", &["v1", "_", "_", "v2", "_", "_", "v3", "_"]),
        ("C", &["w1", "w1", "_", "w2", "_", "w2", "w3", "_"]),
    ]);
    let sigma = RfdSet::from_vec(vec![
        Rfd::new(vec![Constraint::new(0, 0.0)], Constraint::new(1, 1.0)),
        Rfd::new(vec![Constraint::new(1, 0.0)], Constraint::new(2, 1.0)),
    ]);
    let result = assert_batch_agrees(&rel, &sigma);
    assert!(result.stats.imputed >= 4, "fixture should chain imputations");
}

/// Key reactivation mid-run (paper Example 5.1) changes which RFDs are
/// usable, which changes cluster composition for every cell after the
/// reactivation — the cache's version bump must discard stale cluster
/// lists. Mirrors `key_reactivation_enables_late_imputation` in
/// `algorithm.rs`, compared across the flag.
#[test]
fn key_reactivation_invalidates_cached_clusters() {
    let schema = Schema::new([
        ("A", AttrType::Int),
        ("C", AttrType::Int),
        ("B", AttrType::Int),
    ])
    .unwrap();
    let rel = Relation::new(
        schema,
        vec![
            vec![Value::Int(1), Value::Int(9), Value::Int(40)],
            vec![Value::Int(1), Value::Null, Value::Null],
            vec![Value::Int(5), Value::Int(8), Value::Int(77)],
        ],
    )
    .unwrap();
    let sigma = RfdSet::from_vec(vec![
        Rfd::new(vec![Constraint::new(0, 0.0)], Constraint::new(1, 0.0)),
        Rfd::new(vec![Constraint::new(1, 0.0)], Constraint::new(2, 0.0)),
    ]);
    let result = assert_batch_agrees(&rel, &sigma);
    assert_eq!(result.stats.imputed, 2);
    assert_eq!(result.stats.keys_reactivated, 1, "fixture must reactivate a key");
}

#[test]
fn regression_nan_thresholds_and_values() {
    // NaN thresholds and NaN/±0.0 floats stress the `KeyValue` bit-pattern
    // signature (NaN == NaN, 0.0 != -0.0 under `to_bits`) and the mask
    // memo keyed by `thr.to_bits()`.
    let schema =
        Schema::new([("N", AttrType::Float), ("B", AttrType::Text)]).unwrap();
    let rel = Relation::new(
        schema,
        vec![
            vec![Value::Float(1.0), Value::Text("p".into())],
            vec![Value::Float(f64::NAN), Value::Text("p".into())],
            vec![Value::Float(f64::NAN), Value::Null],
            vec![Value::Float(-0.0), Value::Null],
            vec![Value::Float(0.0), Value::Null],
            vec![Value::Float(f64::INFINITY), Value::Text("q".into())],
        ],
    )
    .unwrap();
    for (lhs_thr, rhs_thr) in [
        (1.0, 0.0),
        (f64::NAN, 0.0),
        (0.0, f64::NAN),
        (f64::INFINITY, f64::INFINITY),
    ] {
        let sigma = RfdSet::from_vec(vec![Rfd::new(
            vec![Constraint::new(0, lhs_thr)],
            Constraint::new(1, rhs_thr),
        )]);
        assert_batch_agrees(&rel, &sigma);
    }
}

#[test]
fn regression_multi_attr_signatures_with_unicode() {
    // Two-attribute LHS signatures, empty strings, and astral/unicode
    // collisions; the missing column also appears on an LHS, so the
    // read-set includes the written attribute itself.
    let rel = text_relation(&[
        ("A", &["", "αβγ", "αβ", "", "αβγ", "", "αβ", "αβγ"]),
        ("B", &["x", "y", "x", "x", "y", "x", "x", "y"]),
        ("C", &["p", "q", "_", "p", "_", "_", "r", "q"]),
        ("D", &["u", "v", "u", "_", "v", "u", "_", "v"]),
    ]);
    let sigma = RfdSet::from_vec(vec![
        Rfd::new(
            vec![Constraint::new(0, 1.0), Constraint::new(1, 0.0)],
            Constraint::new(2, 1.0),
        ),
        Rfd::new(vec![Constraint::new(2, 0.0)], Constraint::new(3, 1.0)),
    ]);
    assert_batch_agrees(&rel, &sigma);
}

// ----------------------------------------------------- budgets and engine

#[test]
fn budget_truncation_identical_across_flag() {
    // The cache adds no budget checkpoints — the only in-loop poll is the
    // per-cell `core::cell` check — so unlike cross-index comparisons,
    // budget-limited runs must still agree bit-for-bit across the flag.
    let (rel, sigma) = signature_heavy();
    for ops in [0u64, 1, 8, 64, 256, 4096, 1 << 20] {
        let run = |batch: bool| {
            let cfg = RenuverConfig {
                parallelism: 1,
                trace: true,
                batch_verify: batch,
                budget: Budget::unlimited().with_ops_limit(ops),
                ..RenuverConfig::default()
            };
            Renuver::new(cfg).impute(&rel, &sigma)
        };
        let on = run(true);
        let off = run(false);
        assert_eq!(canon(&on), canon(&off), "ops={ops}");
        assert_eq!(
            on.stats.imputed + on.stats.unimputed,
            on.stats.missing_total,
            "ops={ops}"
        );
    }
}

#[test]
fn engine_batches_identical_across_flag() {
    // The serve path: a prepared engine imputing appended request tuples.
    // `BatchResult`'s PartialEq already excludes the budget report.
    let (rel, sigma) = signature_heavy();
    let batch: Vec<Vec<Value>> = (0..6usize)
        .map(|i| {
            vec![
                Value::from(format!("City{}", i % 3).as_str()),
                Value::Null,
                Value::Int((i % 3 * 2) as i64),
            ]
        })
        .collect();
    let engine_with = |flag: bool| {
        let cfg = RenuverConfig {
            parallelism: 1,
            batch_verify: flag,
            ..RenuverConfig::default()
        };
        Engine::prepare(rel.clone(), sigma.clone(), cfg)
    };
    let mut on = engine_with(true);
    let mut off = engine_with(false);
    let a = on.impute_batch(batch.clone()).unwrap();
    let b = off.impute_batch(batch).unwrap();
    assert_eq!(a, b, "engine batch diverged across batch_verify");
    assert!(
        a.outcomes.iter().any(|(_, o)| matches!(o, renuver::core::CellOutcome::Imputed)),
        "degenerate fixture: no appended cell imputed"
    );
}
