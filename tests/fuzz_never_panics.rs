//! Never-panic fuzz suites: the public entry points must return `Err` (or a
//! partial result) on hostile input — never unwind.
//!
//! Covered: the CSV and ARFF codecs and the rule parser on arbitrary text
//! and arbitrary bytes, the `.rnv` model-artifact decoder on arbitrary
//! bytes and corrupted real snapshots, and the full imputation pipeline
//! on adversarial relations — NaN/infinite RFD thresholds, all-null
//! columns, megabyte cells, zero-op budgets. The CI fuzz-smoke step runs
//! these with a fixed `PROPTEST_CASES` so the suite stays fast and
//! reproducible there.

use proptest::prelude::*;

use renuver::budget::Budget;
use renuver::core::{Engine, Renuver, RenuverConfig};
use renuver::data::{arff, csv, AttrType, Relation, Schema, Value};
use renuver::rfd::{Constraint, Rfd, RfdSet};
use renuver::rulekit::parse_rules;
use renuver::serve::artifact;

// ----------------------------------------------------------------- codecs

proptest! {
    #[test]
    fn csv_reader_never_panics_on_text(input in ".{0,300}") {
        let _ = csv::read_str(&input);
    }

    #[test]
    fn csv_reader_never_panics_on_bytes(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = csv::read_str(&String::from_utf8_lossy(&bytes));
    }

    #[test]
    fn csv_reader_never_panics_on_structured_garbage(
        header in "[A-Za-z:,\"]{0,40}",
        rows in prop::collection::vec("[0-9a-z_,\"\\?]{0,40}", 0..8),
    ) {
        let input = format!("{header}\n{}", rows.join("\n"));
        let _ = csv::read_str(&input);
    }

    #[test]
    fn arff_reader_never_panics_on_text(input in ".{0,300}") {
        let _ = arff::read_str(&input);
    }

    #[test]
    fn arff_reader_never_panics_on_headers(
        decls in prop::collection::vec("@?[a-z]{0,12}[ \t][a-z{},'\"%]{0,20}", 0..6),
        data in prop::collection::vec("[0-9a-z,'\\?]{0,20}", 0..4),
    ) {
        let input = format!("{}\n@data\n{}", decls.join("\n"), data.join("\n"));
        let _ = arff::read_str(&input);
    }

    #[test]
    fn rule_parser_never_panics(input in ".{0,300}") {
        let _ = parse_rules(&input);
    }

    #[test]
    fn rule_parser_never_panics_on_directives(
        lines in prop::collection::vec("(attr|set|regex|delta|project)[ \t].{0,30}", 0..8),
    ) {
        let _ = parse_rules(&lines.join("\n"));
    }
}

// ---------------------------------------------------------- .rnv artifacts

/// A small but structurally complete artifact (text + int columns, an
/// RFD, a similarity index) used as the mutation base.
fn seed_artifact() -> Vec<u8> {
    let rel = csv::read_str(
        "City:text,Zip:text,Class:int\n\
         Malibu,90265,6\n\
         Malibu,90265,6\n\
         Hollywood,90028,2\n\
         Venice,_,3\n",
    )
    .unwrap();
    let rfds = RfdSet::from_vec(vec![Rfd::new(
        vec![Constraint::new(0, 1.0)],
        Constraint::new(1, 0.0),
    )]);
    let engine = Engine::prepare(
        rel,
        rfds,
        RenuverConfig {
            index_mode: renuver::core::IndexMode::Indexed,
            ..RenuverConfig::default()
        },
    );
    artifact::encode_engine(&engine, "fuzz-seed", 0)
}

proptest! {
    #[test]
    fn artifact_decode_never_panics_on_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..600),
    ) {
        let _ = artifact::decode(&bytes);
        let _ = artifact::inspect(&bytes);
    }

    #[test]
    fn artifact_decode_never_panics_on_magic_prefixed_bytes(
        tail in prop::collection::vec(any::<u8>(), 0..600),
    ) {
        // Get past the magic/version check so the section parsers see
        // the garbage (a random prefix almost never does).
        let mut bytes = b"RNUV\x01\x00\x00\x00".to_vec();
        bytes.extend(tail);
        let _ = artifact::decode(&bytes);
    }

    #[test]
    fn artifact_decode_never_panics_on_corrupted_snapshots(
        offset in 0usize..10_000,
        flip in any::<u8>(),
        do_truncate in any::<bool>(),
        truncate_at in 0usize..10_000,
    ) {
        let mut bytes = seed_artifact();
        let len = bytes.len();
        bytes[offset % len] ^= flip | 1; // always a real change
        if do_truncate {
            bytes.truncate(truncate_at % (len + 1));
        }
        // Every corruption is a typed error or (for a flip the checksum
        // cannot see, which does not exist) a valid artifact — never an
        // unwind.
        let _ = artifact::decode(&bytes);
    }

    #[test]
    fn artifact_decode_never_panics_on_checksum_repaired_corruption(
        offset in 8usize..10_000,
        flip in any::<u8>(),
    ) {
        // Corrupt the payload, then re-stamp a valid trailing CRC so the
        // section parsers (not the checksum) must reject the damage.
        let mut bytes = seed_artifact();
        let len = bytes.len();
        let at = 8 + (offset - 8) % (len - 12);
        bytes[at] ^= flip | 1;
        let crc = artifact::crc32(&bytes[..len - 4]);
        let tail = len - 4;
        bytes[tail..].copy_from_slice(&crc.to_le_bytes());
        let _ = artifact::decode(&bytes);
    }
}

#[test]
fn artifact_seed_still_decodes() {
    // Guards the mutation base itself: if encoding broke, the corruption
    // fuzzers above would be exercising nothing.
    let bytes = seed_artifact();
    let loaded = artifact::decode(&bytes).expect("seed artifact must decode");
    assert_eq!(loaded.relation.len(), 4);
    assert!(loaded.index.is_some());
}

// --------------------------------------------------------------- pipeline

/// An arbitrary small relation: 1–3 columns of mixed types, 0–8 rows,
/// every cell possibly null (so all-null columns and empty relations are
/// generated too).
fn arb_relation() -> impl Strategy<Value = Relation> {
    let col_types = prop::collection::vec(
        prop_oneof![
            Just(AttrType::Int),
            Just(AttrType::Float),
            Just(AttrType::Text),
        ],
        1..4,
    );
    (col_types, 0usize..9).prop_flat_map(|(types, rows)| {
        let schema = Schema::new(
            types
                .iter()
                .enumerate()
                .map(|(i, t)| (format!("c{i}"), *t)),
        )
        .expect("generated names are distinct");
        let cell = |ty: AttrType| -> BoxedStrategy<Value> {
            match ty {
                AttrType::Int => prop_oneof![
                    Just(Value::Null),
                    (-5i64..5).prop_map(Value::Int),
                ]
                .boxed(),
                AttrType::Float => prop_oneof![
                    Just(Value::Null),
                    (-2.0f64..2.0).prop_map(Value::Float),
                    Just(Value::Float(f64::NAN)),
                    Just(Value::Float(f64::INFINITY)),
                ]
                .boxed(),
                _ => prop_oneof![
                    Just(Value::Null),
                    "[a-c]{0,3}".prop_map(Value::from),
                ]
                .boxed(),
            }
        };
        let cells: Vec<BoxedStrategy<Value>> = types.iter().map(|t| cell(*t)).collect();
        let row = BoxedStrategy::new(move |rng| {
            cells.iter().map(|s| s.generate(rng)).collect::<Vec<Value>>()
        });
        prop::collection::vec(row, rows..rows + 1).prop_map(move |tuples| {
            Relation::new(schema.clone(), tuples).expect("tuples match the schema")
        })
    })
}

/// Arbitrary (possibly degenerate) RFDs over `arity` attributes, with
/// thresholds drawn from a pool that includes NaN and infinity.
fn arb_rfds(arity: usize) -> BoxedStrategy<RfdSet> {
    if arity < 2 {
        // `Rfd::new` forbids the RHS appearing in the LHS, so no RFD exists
        // over a single attribute: the only set is the empty one.
        return Just(RfdSet::from_vec(Vec::new())).boxed();
    }
    let thr = prop_oneof![
        Just(0.0f64),
        Just(1.0),
        Just(5.0),
        Just(f64::NAN),
        Just(f64::INFINITY),
    ];
    let rfd = (0..arity, 0..arity, thr.clone(), thr).prop_map(
        move |(lhs, rhs, lhs_thr, rhs_thr)| {
            // Steer away from a self-referential dependency (an asserted
            // constructor invariant) rather than generating one.
            let lhs = if lhs == rhs { (lhs + 1) % arity } else { lhs };
            Rfd::new(vec![Constraint::new(lhs, lhs_thr)], Constraint::new(rhs, rhs_thr))
        },
    );
    prop::collection::vec(rfd, 0..4)
        .prop_map(RfdSet::from_vec)
        .boxed()
}

proptest! {
    // The pipeline cases run the full engine; keep the count modest so the
    // suite stays in CI-smoke territory even without PROPTEST_CASES set.
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn impute_never_panics_on_adversarial_input(
        input in arb_relation().prop_flat_map(|rel| {
            let arity = rel.arity();
            (Just(rel), arb_rfds(arity))
        }),
        zero_budget in any::<bool>(),
    ) {
        let (rel, rfds) = input;
        let budget = if zero_budget {
            Budget::unlimited().with_ops_limit(0)
        } else {
            Budget::unlimited()
        };
        let cfg = RenuverConfig { parallelism: 1, budget, ..RenuverConfig::default() };
        let result = Renuver::new(cfg).impute(&rel, &rfds);
        // Partial or complete, the stats invariant always holds.
        prop_assert_eq!(
            result.stats.imputed + result.stats.unimputed,
            result.stats.missing_total
        );
        prop_assert_eq!(result.outcomes.len(), result.stats.missing_total);
    }
}

#[test]
fn impute_survives_megabyte_cells_and_all_null_columns() {
    let schema = Schema::new([("huge", AttrType::Text), ("hole", AttrType::Text)]).unwrap();
    let big = "x".repeat(1 << 20);
    let rel = Relation::new(
        schema,
        vec![
            vec![Value::Text(big.clone()), Value::Null],
            vec![Value::Text(big), Value::Null],
            vec![Value::Text("small".into()), Value::Null],
        ],
    )
    .unwrap();
    let rfds = RfdSet::from_vec(vec![Rfd::new(
        vec![Constraint::new(0, 1.0)],
        Constraint::new(1, 0.0),
    )]);
    let cfg = RenuverConfig { parallelism: 1, ..RenuverConfig::default() };
    let result = Renuver::new(cfg).impute(&rel, &rfds);
    // Nothing to impute from (the target column is entirely null), but the
    // run must terminate and account for every cell.
    assert_eq!(result.stats.missing_total, 3);
    assert_eq!(result.stats.imputed, 0);
}
