//! Integration tests for the `renuver` command-line binary: the full
//! stats → discover → inject → impute → evaluate loop over temp files.

use std::path::PathBuf;
use std::process::Command;

const DATA: &str = "\
City:text,Zip:text,Pop:int
Salerno,84084,130000
Salerno,84084,130000
Milano,20121,1350000
Milano,20121,1350000
Roma,00184,2870000
Roma,00184,2870000
";

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_renuver"))
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("renuver-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn full_pipeline_through_the_cli() {
    let dir = tempdir("pipeline");
    let data = dir.join("data.csv");
    std::fs::write(&data, DATA).unwrap();

    // stats
    let out = bin().arg("stats").arg(&data).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("tuples:  6"), "{stdout}");

    // discover
    let rfds = dir.join("rfds.txt");
    let out = bin()
        .args(["discover"])
        .arg(&data)
        .args(["--limit", "3", "--out"])
        .arg(&rfds)
        .output()
        .unwrap();
    assert!(out.status.success());
    let rfd_text = std::fs::read_to_string(&rfds).unwrap();
    assert!(rfd_text.contains("→"), "{rfd_text}");

    // inject
    let holes = dir.join("holes.csv");
    let out = bin()
        .arg("inject")
        .arg(&data)
        .args(["--rate", "0.2", "--seed", "1", "--out"])
        .arg(&holes)
        .output()
        .unwrap();
    assert!(out.status.success());

    // impute
    let fixed = dir.join("fixed.csv");
    let out = bin()
        .arg("impute")
        .arg(&holes)
        .arg("--rfds")
        .arg(&rfds)
        .arg("--out")
        .arg(&fixed)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // evaluate: the duplicated tuples make every cell perfectly imputable.
    let out = bin()
        .arg("evaluate")
        .arg("--original")
        .arg(&data)
        .arg("--incomplete")
        .arg(&holes)
        .arg("--imputed")
        .arg(&fixed)
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("precision: 1.000"), "{stdout}");
    assert!(stdout.contains("recall:    1.000"), "{stdout}");
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = bin().arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown command \"frobnicate\""), "{stderr}");
    // The error names every valid subcommand so a typo is self-correcting.
    for cmd in [
        "stats", "audit", "discover", "inject", "impute", "evaluate", "compare", "tune",
        "prepare", "inspect", "serve",
    ] {
        assert!(stderr.contains(cmd), "missing {cmd} in: {stderr}");
    }
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn prepare_inspect_serve_round_trip() {
    use std::io::{BufRead, BufReader, Read, Write};

    let dir = tempdir("serve");
    let data = dir.join("data.csv");
    std::fs::write(&data, DATA).unwrap();

    // prepare: dataset → .rnv artifact (discovery runs, no --rfds).
    let model = dir.join("model.rnv");
    let out = bin()
        .arg("prepare")
        .arg(&data)
        .args(["--limit", "3"])
        .arg("-o")
        .arg(&model)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("6 tuples"), "{stdout}");

    // inspect: summarizes without loading an engine.
    let out = bin().arg("inspect").arg(&model).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();
    for needle in ["format:      v2", "tuples:      6", "City: text", "Pop: int"] {
        assert!(stdout.contains(needle), "missing {needle:?} in: {stdout}");
    }

    // inspect rejects a non-artifact cleanly.
    let out = bin().arg("inspect").arg(&data).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("magic"), "stderr should name the bad magic");

    // serve: artifact → listening server; exercise it over loopback and
    // shut it down with SIGTERM, which must exit 0 (graceful drain).
    let mut child = bin()
        .arg("serve")
        .arg(&model)
        .args(["--addr", "127.0.0.1:0", "--workers", "2"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    let mut reader = BufReader::new(child.stdout.take().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("listening on"), "{line}");
    let addr: std::net::SocketAddr = line
        .split_whitespace()
        .find_map(|tok| tok.parse().ok())
        .unwrap_or_else(|| panic!("no address in {line:?}"));

    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    let body = r#"{"tuples": [["Salerno", null, 130000]]}"#;
    write!(
        stream,
        "POST /v1/impute HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    )
    .unwrap();
    let mut resp = String::new();
    BufReader::new(stream).read_to_string(&mut resp).unwrap();
    assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
    assert!(resp.contains("84084"), "{resp}");

    assert!(Command::new("kill")
        .arg("-TERM")
        .arg(child.id().to_string())
        .status()
        .unwrap()
        .success());
    let status = child.wait().unwrap();
    assert!(status.success(), "SIGTERM must drain and exit 0, got {status:?}");
}

#[test]
fn trace_out_writes_a_schema_listed_jsonl_file() {
    let dir = tempdir("trace");
    let data = dir.join("data.csv");
    std::fs::write(&data, DATA).unwrap();
    let holes = dir.join("holes.csv");
    assert!(bin()
        .arg("inject")
        .arg(&data)
        .args(["--rate", "0.2", "--seed", "1", "--out"])
        .arg(&holes)
        .status()
        .unwrap()
        .success());
    let trace = dir.join("run.jsonl");
    let out = bin()
        .arg("impute")
        .arg(&holes)
        .args(["--limit", "3", "--out", "/dev/null", "--metrics", "--trace-out"])
        .arg(&trace)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("trace: wrote"), "{stderr}");
    // --metrics prints the counter table.
    assert!(stderr.contains("core.cells_imputed"), "{stderr}");
    let text = std::fs::read_to_string(&trace).unwrap();
    for kind in ["run_start", "cell", "span", "run_end", "metrics"] {
        assert!(text.contains(&format!("\"kind\":\"{kind}\"")), "missing {kind}:\n{text}");
    }

    // The trace flags are renuver-pipeline-only: baselines reject them.
    let out = bin()
        .arg("impute")
        .arg(&holes)
        .args(["--approach", "knn", "--metrics"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("renuver pipeline only"));
}

#[test]
fn missing_file_is_a_clean_error() {
    let out = bin().args(["stats", "/nonexistent/nope.csv"]).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("error:"), "{stderr}");
}

#[test]
fn inject_validates_rate() {
    let dir = tempdir("rate");
    let data = dir.join("data.csv");
    std::fs::write(&data, DATA).unwrap();
    let out = bin()
        .arg("inject")
        .arg(&data)
        .args(["--rate", "7", "--out", "/tmp/x.csv"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--rate"));
}

#[test]
fn impute_with_donor_file() {
    let dir = tempdir("donors");
    let target = dir.join("target.csv");
    std::fs::write(&target, "City:text,Zip:text\nSalerno,\n").unwrap();
    let donor = dir.join("donor.csv");
    std::fs::write(&donor, "City:text,Zip:text\nSalerno,84084\n").unwrap();
    let rfds = dir.join("rfds.txt");
    std::fs::write(&rfds, "City(<=0) -> Zip(<=0)\n").unwrap();
    let out = bin()
        .arg("impute")
        .arg(&target)
        .arg("--rfds")
        .arg(&rfds)
        .arg("--donors")
        .arg(&donor)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("84084"), "{stdout}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("imputed 1/1"));
}

#[test]
fn approach_flag_selects_baselines() {
    let dir = tempdir("approach");
    let data = dir.join("data.csv");
    std::fs::write(&data, DATA).unwrap();
    let holes = dir.join("holes.csv");
    assert!(bin()
        .arg("inject")
        .arg(&data)
        .args(["--rate", "0.15", "--seed", "4", "--out"])
        .arg(&holes)
        .status()
        .unwrap()
        .success());
    for approach in ["knn", "holoclean", "derand", "renuver"] {
        let out = bin()
            .arg("impute")
            .arg(&holes)
            .args(["--approach", approach, "--limit", "3", "--out", "/dev/null"])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{approach}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stderr = String::from_utf8(out.stderr).unwrap();
        assert!(stderr.contains("imputed"), "{approach}: {stderr}");
    }
    let out = bin()
        .arg("impute")
        .arg(&holes)
        .args(["--approach", "bogus"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn audit_detects_violations() {
    let dir = tempdir("audit");
    let data = dir.join("bad.csv");
    std::fs::write(
        &data,
        "City:text,Zip:text\nSalerno,84084\nSalerno,99999\n",
    )
    .unwrap();
    let rfds = dir.join("rfds.txt");
    std::fs::write(&rfds, "City(<=0) -> Zip(<=0)\n").unwrap();
    let out = bin().arg("audit").arg(&data).arg("--rfds").arg(&rfds).output().unwrap();
    assert!(!out.status.success()); // violations → non-zero exit
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("VIOLATED"), "{stdout}");

    let clean = dir.join("good.csv");
    std::fs::write(&clean, "City:text,Zip:text\nSalerno,84084\nMilano,20121\n").unwrap();
    let out = bin().arg("audit").arg(&clean).arg("--rfds").arg(&rfds).output().unwrap();
    assert!(out.status.success());
}

#[test]
fn compare_runs_all_approaches() {
    let dir = tempdir("compare");
    let data = dir.join("data.csv");
    std::fs::write(&data, DATA).unwrap();
    let out = bin()
        .arg("compare")
        .arg(&data)
        .args(["--rate", "0.2", "--limit", "3", "--seeds", "2"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();
    for name in ["RENUVER", "Derand", "Holoclean", "kNN"] {
        assert!(stdout.contains(name), "{stdout}");
    }
    // An incomplete input is rejected with a clear message.
    let holes = dir.join("holes.csv");
    std::fs::write(&holes, "A:int\n1\n_\n").unwrap();
    let out = bin().arg("compare").arg(&holes).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("complete instance"));
}

#[test]
fn compare_metrics_diff_renders_the_delta_table() {
    let dir = tempdir("metrics-diff");
    let data = dir.join("data.csv");
    std::fs::write(&data, DATA).unwrap();
    let out = bin()
        .arg("compare")
        .arg(&data)
        .args(["--rate", "0.2", "--limit", "3", "--seeds", "2", "--metrics-diff"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();
    // The rendered table is pinned: the shared MetricsDiff engine's
    // header, the reference line, and one row per approach.
    assert!(stdout.contains("work deltas vs RENUVER:"), "{stdout}");
    let header = "variant       Δcandidates  Δverifications  Δoracle-hits  Δclusters  Δimputed  Δphases (us)";
    assert!(stdout.contains(header), "{stdout}");
    let table: Vec<&str> = stdout.lines().skip_while(|l| !l.starts_with("variant")).collect();
    assert_eq!(table.len(), 5, "header + 4 approach rows: {stdout}");
    // The reference row diffs against itself: all-zero deltas.
    let renuver_row = table[1];
    assert!(renuver_row.starts_with("RENUVER"), "{renuver_row}");
    for field in renuver_row.split_whitespace().skip(1).take(5) {
        assert_eq!(field, "0", "{renuver_row}");
    }
    for name in ["Derand", "Holoclean", "kNN"] {
        assert!(table.iter().any(|row| row.starts_with(name)), "{stdout}");
    }
}

#[test]
fn tune_improves_thresholds_and_writes_them() {
    // Twin rows: names two edits apart sharing a Zip. At the discovery
    // threshold a masked Zip has no donor; tuning widens until it does.
    let mut data = String::from("Name:text,Zip:text\n");
    for i in 0..8u8 {
        let c = (b'a' + i) as char;
        let name = String::from(c).repeat(4);
        data.push_str(&format!("{name},zip-{c}\n{name} 2,zip-{c}\n"));
    }
    let dir = tempdir("tune");
    let path = dir.join("twins.csv");
    std::fs::write(&path, &data).unwrap();
    let rfds = dir.join("rfds.txt");
    std::fs::write(&rfds, "Name(≤0) → Zip(≤0)\n").unwrap();

    let tuned = dir.join("tuned.txt");
    let out = bin()
        .arg("tune")
        .arg(&path)
        .args(["--seed", "7", "--rfds"])
        .arg(&rfds)
        .arg("--out")
        .arg(&tuned)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("stop:"), "{stderr}");
    let tuned_text = std::fs::read_to_string(&tuned).unwrap();
    assert_ne!(tuned_text, "Name(≤0) → Zip(≤0)\n", "tuning must widen the LHS");
    assert!(tuned_text.contains("→ Zip(≤0)"), "RHS must stay put: {tuned_text}");
}

#[test]
fn impute_discovers_when_no_rfds_given() {
    let dir = tempdir("disc");
    let data = dir.join("data.csv");
    std::fs::write(&data, DATA).unwrap();
    let holes = dir.join("holes.csv");
    assert!(bin()
        .arg("inject")
        .arg(&data)
        .args(["--rate", "0.1", "--seed", "2", "--out"])
        .arg(&holes)
        .status()
        .unwrap()
        .success());
    let out = bin()
        .arg("impute")
        .arg(&holes)
        .args(["--limit", "3"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("discovering"), "{stderr}");
    // Output CSV lands on stdout when --out is absent.
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.starts_with("City:text"), "{stdout}");
}
