//! Facade-level tests of the implemented future-work extensions
//! (paper Section 7): distribution-scaled discovery limits, multi-dataset
//! candidate selection, incremental imputation, and coverage measures.

use renuver::core::{Renuver, RenuverConfig};
use renuver::data::{csv, Value};
use renuver::datasets::Dataset;
use renuver::eval::inject;
use renuver::rfd::coverage::{coverage, filter_by_coverage, g1_error};
use renuver::rfd::discovery::{auto_limits, discover, DiscoveryConfig};
use renuver::rfd::RfdSet;

#[test]
fn auto_limits_respect_attribute_spreads_on_real_dataset() {
    let rel = Dataset::Cars.relation(1);
    let limits = auto_limits(&rel, 0.1);
    assert_eq!(limits.len(), rel.arity());
    // Weight spans thousands; ModelYear spans 12 — the auto limits must
    // reflect that ordering (both clamped into [1, 255]).
    let s = rel.schema();
    let weight = s.require("Weight").unwrap();
    let year = s.require("ModelYear").unwrap();
    assert!(limits[weight] > limits[year] * 10.0);
    // Discovery under the per-attribute limits emits RFDs whose thresholds
    // respect each attribute's cap.
    let cfg = DiscoveryConfig {
        max_lhs: 2,
        per_attr_limits: Some(limits.clone()),
        ..DiscoveryConfig::with_limit(3.0)
    };
    let rfds = discover(&rel, &cfg);
    assert!(!rfds.is_empty());
    for rfd in rfds.iter() {
        for c in rfd.lhs() {
            assert!(c.threshold <= limits[c.attr], "{rfd:?}");
        }
        assert!(rfd.rhs_threshold() <= limits[rfd.rhs_attr()]);
    }
}

#[test]
fn donors_lift_recall_on_a_real_dataset() {
    // Split Restaurant in half: impute the first half alone vs with the
    // second half as a donor dataset. The duplicate pairs straddle the
    // split, so donors must help.
    let full = Dataset::Restaurant.relation(3);
    let schema = full.schema().clone();
    let half = full.len() / 2;
    let first: Vec<_> = full.tuples().take(half).cloned().collect();
    let second: Vec<_> = full.tuples().skip(half).cloned().collect();
    let target_full = renuver::data::Relation::new(schema.clone(), first).unwrap();
    let donor = renuver::data::Relation::new(schema, second).unwrap();

    let (target, _truth) = inject(&target_full, 0.05, 9);
    let rfds = discover(
        &full,
        &DiscoveryConfig { max_lhs: 2, ..DiscoveryConfig::with_limit(12.0) },
    );
    let engine = Renuver::new(RenuverConfig::default());
    let alone = engine.impute(&target, &rfds);
    let with = engine.impute_with_donors(&target, &[&donor], &rfds).unwrap();
    assert!(
        with.stats.imputed >= alone.stats.imputed,
        "donors reduced fill: {} -> {}",
        alone.stats.imputed,
        with.stats.imputed
    );
    assert_eq!(with.relation.len(), target.len());
}

#[test]
fn incremental_equivalent_to_masked_full_run() {
    // impute_appended on a batch == impute() where the old rows' missing
    // cells are not counted: verify the appended rows get identical values.
    let rel = csv::read_str(
        "City:text,Zip:text\n\
         Salerno,84084\n\
         Milano,20121\n\
         Salerno,84084\n\
         Salerno,\n\
         Milano,\n",
    )
    .unwrap();
    let rfds = RfdSet::from_text("City(<=0) -> Zip(<=0)", rel.schema()).unwrap();
    let engine = Renuver::new(RenuverConfig::default());
    let incr = engine.impute_appended(&rel, 3, &rfds);
    assert_eq!(incr.stats.missing_total, 2);
    assert_eq!(incr.relation.value(3, 1), &Value::Text("84084".into()));
    assert_eq!(incr.relation.value(4, 1), &Value::Text("20121".into()));
    // A full run yields the same values for those rows.
    let all = engine.impute(&rel, &rfds);
    assert_eq!(all.relation.value(3, 1), incr.relation.value(3, 1));
    assert_eq!(all.relation.value(4, 1), incr.relation.value(4, 1));
}

#[test]
fn coverage_of_discovered_rfds_is_one() {
    // Discovery only emits dependencies that hold → coverage 1 for all.
    let rel = Dataset::Bridges.relation(2);
    let rfds = discover(
        &rel,
        &DiscoveryConfig { max_lhs: 2, ..DiscoveryConfig::with_limit(6.0) },
    );
    for rfd in rfds.iter().take(25) {
        assert_eq!(g1_error(&rel, rfd), 0.0, "{}", rfd.display(rel.schema()));
        assert_eq!(coverage(&rel, rfd), 1.0);
    }
    let (kept, dropped) = filter_by_coverage(&rfds, &rel, 1.0);
    assert_eq!(dropped, 0);
    assert_eq!(kept.len(), rfds.len());
}

#[test]
fn coverage_detects_degradation_after_noise() {
    // Corrupt one cell of a dataset and watch a previously exact
    // dependency's coverage drop below 1.
    let mut rel = csv::read_str(
        "City:text,Zip:text\n\
         Salerno,84084\n\
         Salerno,84084\n\
         Salerno,84084\n\
         Milano,20121\n",
    )
    .unwrap();
    let rfd = renuver::rfd::Rfd::parse("City(<=0) -> Zip(<=0)", rel.schema()).unwrap();
    assert_eq!(coverage(&rel, &rfd), 1.0);
    rel.set_value(2, 1, "99999".into());
    let cov = coverage(&rel, &rfd);
    assert!(cov < 1.0 && cov > 0.0, "{cov}");
    // g1: 2 violating of 3 supporting pairs among the Salerno rows.
    assert!((g1_error(&rel, &rfd) - 2.0 / 3.0).abs() < 1e-12);
}
