//! Zero-downtime model swap under live traffic.
//!
//! A sharded server takes a continuous stream of `/v1/impute` requests
//! while `PUT /v1/model` atomically replaces the serving model
//! mid-stream. What must hold:
//!
//! - **Zero dropped or mixed responses**: every client request answers
//!   `200`, and every body is entirely the old model's answer or
//!   entirely the new one's — never an error, never a blend.
//! - A swap carrying a different schema fingerprint is refused with
//!   `409` and counted under `serve.swap_rejected`; the serving model
//!   is untouched.
//! - `/metrics` reconciles exactly with the client-side tally.
//! - `SIGHUP` drives the same swap path from the model file on disk
//!   (subprocess test, unix only).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;

use renuver::core::{Engine, RenuverConfig};
use renuver::data::csv;
use renuver::rfd::{Constraint, Rfd, RfdSet};
use renuver::serve::{artifact, Ctx, ModelInfo, Registry, ServeConfig, Server};

/// Zip for City07 in model A is 90049; model B shifts every zip by one,
/// so City07 answers 90050. One glance at a response body tells which
/// model produced it.
fn model_relation(shift: i64) -> renuver::data::Relation {
    let mut text = String::from("City:text,Zip:text\n");
    for i in 0..50 {
        text.push_str(&format!("City{:02},9{:04}\n", i % 25, (i % 25) * 7 + shift));
    }
    csv::read_str(&text).unwrap()
}

fn model_rfds() -> RfdSet {
    RfdSet::from_vec(vec![
        Rfd::new(vec![Constraint::new(0, 0.0)], Constraint::new(1, 0.0)),
        Rfd::new(vec![Constraint::new(1, 0.0)], Constraint::new(0, 0.0)),
    ])
}

fn start_sharded(shards: usize) -> (SocketAddr, Arc<Ctx>, Arc<std::sync::atomic::AtomicBool>, std::thread::JoinHandle<u64>) {
    let rel = model_relation(0);
    let fingerprint = artifact::schema_fingerprint(rel.schema());
    let registry = Registry::build(&rel, model_rfds(), RenuverConfig::default(), shards);
    let ctx = Arc::new(Ctx::new_sharded(
        registry,
        ModelInfo { source: "swap-e2e".into(), schema_fingerprint: fingerprint, artifact_bytes: 0 },
        None,
        60_000,
    ));
    let server = Server::bind(
        ServeConfig { addr: "127.0.0.1:0".into(), workers: 4, ..ServeConfig::default() },
        Arc::clone(&ctx),
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let stop = server.shutdown_handle();
    let handle = std::thread::spawn(move || server.run().unwrap());
    (addr, ctx, stop, handle)
}

fn request(addr: SocketAddr, raw: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(std::time::Duration::from_secs(30))).unwrap();
    stream.write_all(raw).unwrap();
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).unwrap();
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .unwrap_or_else(|| panic!("bad status line {status_line:?}"))
        .parse()
        .unwrap();
    let mut rest = String::new();
    reader.read_to_string(&mut rest).unwrap();
    (status, rest)
}

fn post_impute(body: &str) -> Vec<u8> {
    format!(
        "POST /v1/impute HTTP/1.1\r\nHost: swap\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    )
    .into_bytes()
}

fn put_model(bytes: &[u8]) -> Vec<u8> {
    let mut raw = format!(
        "PUT /v1/model HTTP/1.1\r\nHost: swap\r\nContent-Type: application/octet-stream\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        bytes.len()
    )
    .into_bytes();
    raw.extend_from_slice(bytes);
    raw
}

fn metric(table: &str, name: &str) -> u64 {
    table
        .lines()
        .find_map(|l| {
            let mut it = l.split_whitespace();
            (it.next() == Some(name)).then(|| it.next().unwrap().parse().unwrap())
        })
        .unwrap_or_else(|| panic!("metric {name} not in:\n{table}"))
}

fn encoded_model(shift: i64) -> Vec<u8> {
    let engine = Engine::prepare(model_relation(shift), model_rfds(), RenuverConfig::default());
    artifact::encode_engine(&engine, "swap-e2e-b", 0)
}

#[test]
fn swap_under_load_drops_and_mixes_nothing() {
    let (addr, _ctx, stop, handle) = start_sharded(4);
    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 30;

    let mut threads = Vec::new();
    for _ in 0..CLIENTS {
        threads.push(std::thread::spawn(move || {
            let (mut old, mut new) = (0u64, 0u64);
            for _ in 0..PER_CLIENT {
                let (status, body) = request(addr, &post_impute(r#"{"tuples": [["City07", null]]}"#));
                assert_eq!(status, 200, "request dropped mid-swap: {body}");
                assert!(body.contains("\"imputed\":1"), "{body}");
                // Exactly one model's answer, never both, never neither.
                match (body.contains("90049"), body.contains("90050")) {
                    (true, false) => old += 1,
                    (false, true) => new += 1,
                    other => panic!("mixed/empty response {other:?}: {body}"),
                }
            }
            (old, new)
        }));
    }

    // Swap to model B while the clients are mid-stream.
    std::thread::sleep(std::time::Duration::from_millis(30));
    let (status, body) = request(addr, &put_model(&encoded_model(1)));
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"swapped\":true"), "{body}");

    let mut totals = (0u64, 0u64);
    for t in threads {
        let (old, new) = t.join().expect("client panicked");
        totals = (totals.0 + old, totals.1 + new);
    }
    let (old, new) = totals;
    assert_eq!(old + new, (CLIENTS * PER_CLIENT) as u64);

    // The swap is total: everything after it answers from model B.
    let (status, body) = request(addr, &post_impute(r#"{"tuples": [["City07", null]]}"#));
    assert_eq!(status, 200);
    assert!(body.contains("90050"), "post-swap request answered by the old model: {body}");

    // Exact reconciliation: every impute + the PUT answered 2xx, no
    // 4xx/5xx, one swap counted, every successful impute counted.
    let imputes = (CLIENTS * PER_CLIENT) as u64 + 1;
    let (status, table) = request(addr, b"GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n");
    assert_eq!(status, 200);
    assert_eq!(metric(&table, "http.responses_2xx"), imputes + 1);
    assert_eq!(metric(&table, "http.responses_4xx"), 0);
    assert_eq!(metric(&table, "http.responses_5xx"), 0);
    assert_eq!(metric(&table, "serve.swaps"), 1);
    assert_eq!(metric(&table, "serve.swap_rejected"), 0);
    assert_eq!(metric(&table, "serve.cells_imputed"), imputes);

    stop.store(true, Ordering::Relaxed);
    handle.join().expect("server thread panicked");
}

#[test]
fn fingerprint_mismatch_is_rejected_409_and_model_unchanged() {
    let (addr, ctx, stop, handle) = start_sharded(2);

    // Same column count, different attribute names → different schema
    // fingerprint.
    let alien = csv::read_str("Name:text,Klass:text\nAda,A\nAda,A\n").unwrap();
    let rfds = RfdSet::from_vec(vec![Rfd::new(
        vec![Constraint::new(0, 0.0)],
        Constraint::new(1, 0.0),
    )]);
    let engine = Engine::prepare(alien, rfds, RenuverConfig::default());
    let bytes = artifact::encode_engine(&engine, "alien", 0);

    let (status, body) = request(addr, &put_model(&bytes));
    assert_eq!(status, 409, "{body}");
    assert!(body.contains("fingerprint mismatch"), "{body}");
    assert_eq!(ctx.metrics.counter("serve.swap_rejected").get(), 1);
    assert_eq!(ctx.metrics.counter("serve.swaps").get(), 0);

    // Garbage bytes are a 400, not a 409 (they never reach the guard).
    let (status, _) = request(addr, &put_model(b"not an artifact"));
    assert_eq!(status, 400);

    // The serving model is untouched.
    let (status, body) = request(addr, &post_impute(r#"{"tuples": [["City07", null]]}"#));
    assert_eq!(status, 200);
    assert!(body.contains("90049"), "rejected swap still changed the model: {body}");

    stop.store(true, Ordering::Relaxed);
    handle.join().unwrap();
}

/// `SIGHUP` re-reads the model file recorded at startup and swaps it in
/// through the same guarded path as `PUT /v1/model` — a live reload with
/// no restart, proven against the real binary.
#[test]
#[cfg(unix)]
fn sighup_reloads_the_model_file_without_downtime() {
    use std::process::{Command, Stdio};
    let dir = std::env::temp_dir()
        .join(format!("renuver-swap-e2e-{}", std::process::id()))
        .join("sighup");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let write_model = |shift: i64| {
        let engine =
            Engine::prepare(model_relation(shift), model_rfds(), RenuverConfig::default());
        std::fs::write(dir.join("model.rnv"), artifact::encode_engine(&engine, "sighup", 0))
            .unwrap();
    };
    write_model(0);

    let mut child = Command::new(env!("CARGO_BIN_EXE_renuver"))
        .current_dir(&dir)
        .args(["serve", "model.rnv", "--shards", "2", "--addr", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    // Retry-free startup handshake: banner line, then the ready line.
    let mut lines = BufReader::new(child.stdout.take().unwrap());
    let mut banner = String::new();
    lines.read_line(&mut banner).unwrap();
    let addr: SocketAddr = banner
        .strip_prefix("listening on ")
        .and_then(|r| r.split_whitespace().next())
        .unwrap_or_else(|| panic!("bad banner {banner:?}"))
        .parse()
        .unwrap();
    let mut ready = String::new();
    lines.read_line(&mut ready).unwrap();
    assert!(ready.starts_with("ready state=ok seq=0"), "{ready:?}");

    let (status, body) = request(addr, &post_impute(r#"{"tuples": [["City07", null]]}"#));
    assert_eq!(status, 200);
    assert!(body.contains("90049"), "{body}");

    // Replace the file on disk, poke the server, and wait for the
    // accept loop to pick the reload up (it polls between accepts).
    write_model(1);
    let kill = Command::new("kill").arg("-HUP").arg(child.id().to_string()).status().unwrap();
    assert!(kill.success());
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let (status, body) = request(addr, &post_impute(r#"{"tuples": [["City07", null]]}"#));
        assert_eq!(status, 200, "request dropped during SIGHUP reload: {body}");
        if body.contains("90050") {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "SIGHUP reload never landed: {body}");
        std::thread::sleep(std::time::Duration::from_millis(20));
    }

    let term = Command::new("kill").arg("-TERM").arg(child.id().to_string()).status().unwrap();
    assert!(term.success());
    assert!(child.wait().unwrap().success(), "serve did not exit cleanly");
}
