//! Pins the bounded and unbounded Levenshtein kernels to each other over
//! the fuzz corpus.
//!
//! The two kernels share `lev_core` and an equality short-circuit, but the
//! bounded one adds a band (Ukkonen) and early exits; a divergence between
//! them would silently corrupt the similarity index, whose q-gram filter
//! verifies candidates with `levenshtein_bounded` while the scan path's
//! distance matrix is filled by the unbounded kernel. Every token harvested
//! from `tests/corpus/` — malformed CSV/ARFF fragments full of quotes,
//! control characters, and truncated multibyte text — is paired against
//! every other and the kernels must agree exactly.

use std::collections::BTreeSet;
use std::path::PathBuf;

use renuver::distance::{levenshtein, levenshtein_bounded};

/// Harvest distinct tokens from the corpus: whole lines plus their
/// comma-split cells, so both long malformed records and short field
/// values are represented. `BTreeSet` keeps the pairing order stable.
fn corpus_tokens() -> Vec<String> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut tokens = BTreeSet::new();
    tokens.insert(String::new()); // the empty string is always in scope
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("tests/corpus exists")
        .map(|e| e.expect("readable dir entry").path())
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "fuzz corpus is missing");
    for path in entries {
        let text = std::fs::read_to_string(&path).expect("corpus files are UTF-8");
        for line in text.lines() {
            tokens.insert(line.to_owned());
            for cell in line.split(',') {
                tokens.insert(cell.trim().to_owned());
            }
        }
    }
    // Cap the pair count: prefer short tokens (denser edit-distance
    // neighborhoods exercise the band edges harder than long garbage).
    let mut tokens: Vec<String> = tokens.into_iter().collect();
    tokens.sort_by_key(|t| (t.chars().count(), t.clone()));
    tokens.truncate(120);
    tokens
}

#[test]
fn bounded_kernel_matches_unbounded_on_fuzz_corpus() {
    let tokens = corpus_tokens();
    assert!(tokens.len() >= 40, "corpus harvest too small to be meaningful");
    for a in &tokens {
        for b in &tokens {
            let d = levenshtein(a, b);
            // An unlimited bound must reproduce the unbounded kernel
            // exactly (this is the overflow regression surface: `max`
            // used to join the band arithmetic unclamped).
            assert_eq!(
                levenshtein_bounded(a, b, usize::MAX),
                Some(d),
                "usize::MAX bound diverged on {a:?} vs {b:?}"
            );
            // The tightest sufficient bound still admits the distance…
            assert_eq!(
                levenshtein_bounded(a, b, d),
                Some(d),
                "exact bound diverged on {a:?} vs {b:?}"
            );
            // …and one below it must reject, never under-report.
            if d > 0 {
                assert_eq!(
                    levenshtein_bounded(a, b, d - 1),
                    None,
                    "bound {} admitted distance-{d} pair {a:?} vs {b:?}",
                    d - 1
                );
            }
        }
    }
}

#[test]
fn bounded_kernel_is_symmetric_on_fuzz_corpus() {
    // Symmetry of the bounded kernel matters because the index probes
    // (query, candidate) while the oracle matrix fills (candidate, query).
    let tokens = corpus_tokens();
    for a in tokens.iter().take(60) {
        for b in tokens.iter().take(60) {
            assert_eq!(
                levenshtein_bounded(a, b, 3),
                levenshtein_bounded(b, a, 3),
                "asymmetry on {a:?} vs {b:?}"
            );
        }
    }
}
