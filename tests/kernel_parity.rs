//! Pins every Levenshtein kernel to the scalar reference over the fuzz
//! corpus.
//!
//! Four kernels must agree exactly: the scalar two-row DP
//! (`levenshtein_scalar`, the reference), the banded Ukkonen DP
//! (`levenshtein_bounded_scalar`), and Myers' bit-parallel kernel in both
//! its unbounded and bounded forms. The public `levenshtein` /
//! `levenshtein_bounded` entry points dispatch between them by input
//! size, so a divergence would silently corrupt the oracle's distance
//! matrix, the similarity index's candidate re-checks, and every
//! verification sweep built on top. Every token harvested from
//! `tests/corpus/` — malformed CSV/ARFF fragments full of quotes,
//! control characters, and truncated multibyte text — is paired against
//! every other and the kernels must agree exactly; long multi-word
//! patterns, astral-plane unicode, and `usize::MAX`-style unbounded
//! bounds get dedicated sections, plus proptest metric-property checks.

use std::collections::BTreeSet;
use std::path::PathBuf;

use proptest::prelude::*;
use renuver::distance::{
    levenshtein, levenshtein_bounded, levenshtein_bounded_scalar, levenshtein_scalar,
    myers_levenshtein, myers_levenshtein_bounded,
};

/// Harvest distinct tokens from the corpus: whole lines plus their
/// comma-split cells, so both long malformed records and short field
/// values are represented. `BTreeSet` keeps the pairing order stable.
fn corpus_tokens() -> Vec<String> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut tokens = BTreeSet::new();
    tokens.insert(String::new()); // the empty string is always in scope
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("tests/corpus exists")
        .map(|e| e.expect("readable dir entry").path())
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "fuzz corpus is missing");
    for path in entries {
        let text = std::fs::read_to_string(&path).expect("corpus files are UTF-8");
        for line in text.lines() {
            tokens.insert(line.to_owned());
            for cell in line.split(',') {
                tokens.insert(cell.trim().to_owned());
            }
        }
    }
    // Cap the pair count: prefer short tokens (denser edit-distance
    // neighborhoods exercise the band edges harder than long garbage).
    let mut tokens: Vec<String> = tokens.into_iter().collect();
    tokens.sort_by_key(|t| (t.chars().count(), t.clone()));
    tokens.truncate(120);
    tokens
}

#[test]
fn bounded_kernel_matches_unbounded_on_fuzz_corpus() {
    let tokens = corpus_tokens();
    assert!(tokens.len() >= 40, "corpus harvest too small to be meaningful");
    for a in &tokens {
        for b in &tokens {
            let d = levenshtein(a, b);
            // An unlimited bound must reproduce the unbounded kernel
            // exactly (this is the overflow regression surface: `max`
            // used to join the band arithmetic unclamped).
            assert_eq!(
                levenshtein_bounded(a, b, usize::MAX),
                Some(d),
                "usize::MAX bound diverged on {a:?} vs {b:?}"
            );
            // The tightest sufficient bound still admits the distance…
            assert_eq!(
                levenshtein_bounded(a, b, d),
                Some(d),
                "exact bound diverged on {a:?} vs {b:?}"
            );
            // …and one below it must reject, never under-report.
            if d > 0 {
                assert_eq!(
                    levenshtein_bounded(a, b, d - 1),
                    None,
                    "bound {} admitted distance-{d} pair {a:?} vs {b:?}",
                    d - 1
                );
            }
        }
    }
}

#[test]
fn myers_kernels_match_scalar_dp_on_fuzz_corpus() {
    // The bit-parallel kernels are exercised *directly* (bypassing the
    // size dispatch, which would route short corpus tokens to the scalar
    // path) against the scalar reference DP.
    let tokens = corpus_tokens();
    for a in &tokens {
        for b in &tokens {
            let d = levenshtein_scalar(a, b);
            if !a.is_empty() && !b.is_empty() {
                assert_eq!(myers_levenshtein(a, b), d, "Myers diverged on {a:?} vs {b:?}");
            }
            assert_eq!(
                myers_levenshtein_bounded(a, b, usize::MAX),
                Some(d),
                "bounded Myers at usize::MAX diverged on {a:?} vs {b:?}"
            );
            assert_eq!(
                myers_levenshtein_bounded(a, b, d),
                Some(d),
                "bounded Myers rejected its own distance on {a:?} vs {b:?}"
            );
            if d > 0 {
                assert_eq!(
                    myers_levenshtein_bounded(a, b, d - 1),
                    None,
                    "bounded Myers under-reported {a:?} vs {b:?}"
                );
            }
        }
    }
}

/// Stretches corpus tokens past 64 chars so the bit-vectors span several
/// words, with the repetition offset by a marker to keep edits landing on
/// block seams.
fn long_tokens() -> Vec<String> {
    let mut long = Vec::new();
    for (i, t) in corpus_tokens().into_iter().filter(|t| !t.is_empty()).enumerate() {
        let mut s = String::new();
        while s.chars().count() <= 64 + (i % 80) {
            s.push_str(&t);
            s.push(char::from(b'a' + (i % 26) as u8));
        }
        long.push(s);
        if long.len() == 24 {
            break;
        }
    }
    assert_eq!(long.len(), 24, "corpus harvest too small for long tokens");
    long
}

#[test]
fn myers_multi_word_patterns_match_scalar_dp() {
    let tokens = long_tokens();
    for a in &tokens {
        assert!(a.chars().count() > 64, "long tokens must span >1 bit-vector word");
        for b in &tokens {
            let d = levenshtein_scalar(a, b);
            assert_eq!(myers_levenshtein(a, b), d, "multi-word Myers diverged on {a:?} vs {b:?}");
            assert_eq!(myers_levenshtein_bounded(a, b, d), Some(d));
            if d > 0 {
                assert_eq!(myers_levenshtein_bounded(a, b, d - 1), None);
            }
            // The dispatched public kernels must answer identically too.
            assert_eq!(levenshtein(a, b), d);
            assert_eq!(levenshtein_bounded(a, b, d), Some(d));
            assert_eq!(levenshtein_bounded(a, b, usize::MAX), Some(d));
        }
    }
}

#[test]
fn astral_plane_unicode_is_exact() {
    // Astral-plane scalars (surrogate-pair territory in UTF-16, 4 bytes
    // in UTF-8) must count as single chars in every kernel, including the
    // sparse-Peq path of the bit-parallel kernel and the byte-length
    // pre-check of the bounded dispatch.
    let words = [
        "𝔘𝔫𝔦𝔠𝔬𝔡𝔢",
        "𝔘𝔫𝔦𝔠𝔬𝔡𝔢!",
        "💧🌊💧🌊💧",
        "💧🌊🌊💧",
        "a💧b🌊c",
        "abc",
        "",
    ];
    let stretch: Vec<String> = words
        .iter()
        .map(|w| w.chars().cycle().take(90).collect::<String>())
        .collect();
    for a in words.iter().map(|s| s.to_string()).chain(stretch.iter().cloned()) {
        for b in words.iter().map(|s| s.to_string()).chain(stretch.iter().cloned()) {
            let d = levenshtein_scalar(&a, &b);
            assert_eq!(levenshtein(&a, &b), d, "{a:?} vs {b:?}");
            if !a.is_empty() && !b.is_empty() {
                assert_eq!(myers_levenshtein(&a, &b), d, "{a:?} vs {b:?}");
            }
            for max in [0, 1, 3, d, usize::MAX] {
                let want = (d <= max).then_some(d);
                assert_eq!(levenshtein_bounded(&a, &b, max), want, "{a:?} vs {b:?} max={max}");
                assert_eq!(
                    myers_levenshtein_bounded(&a, &b, max),
                    want,
                    "{a:?} vs {b:?} max={max}"
                );
                assert_eq!(levenshtein_bounded_scalar(&a, &b, max), want);
            }
        }
    }
}

proptest! {
    /// Myers (both forms) against the scalar DP on arbitrary unicode,
    /// sized to cross the one-word boundary.
    #[test]
    fn myers_matches_scalar_dp(a in ".{1,80}", b in ".{1,80}", max in 0usize..12) {
        let d = levenshtein_scalar(&a, &b);
        prop_assert_eq!(myers_levenshtein(&a, &b), d);
        prop_assert_eq!(myers_levenshtein_bounded(&a, &b, max), (d <= max).then_some(d));
        prop_assert_eq!(levenshtein(&a, &b), d);
        prop_assert_eq!(levenshtein_bounded(&a, &b, max), (d <= max).then_some(d));
    }

    /// The bit-parallel kernel is still a metric: symmetric, and the
    /// triangle inequality holds through an arbitrary midpoint.
    #[test]
    fn myers_symmetry_and_triangle(a in ".{1,60}", b in ".{1,60}", c in ".{1,60}") {
        let dab = myers_levenshtein(&a, &b);
        prop_assert_eq!(dab, myers_levenshtein(&b, &a));
        prop_assert_eq!(myers_levenshtein(&a, &a), 0);
        prop_assert!(dab <= myers_levenshtein(&a, &c) + myers_levenshtein(&c, &b));
    }
}

#[test]
fn bounded_kernel_is_symmetric_on_fuzz_corpus() {
    // Symmetry of the bounded kernel matters because the index probes
    // (query, candidate) while the oracle matrix fills (candidate, query).
    let tokens = corpus_tokens();
    for a in tokens.iter().take(60) {
        for b in tokens.iter().take(60) {
            assert_eq!(
                levenshtein_bounded(a, b, 3),
                levenshtein_bounded(b, a, 3),
                "asymmetry on {a:?} vs {b:?}"
            );
        }
    }
}
