//! Table-driven decoder test over the checked-in corpus of malformed (and
//! deliberately odd but valid) CSV/ARFF files in `tests/corpus/`.
//!
//! Two guarantees per file: the decoder **returns** (never panics), and the
//! verdict matches the table. The table is exhaustive over the directory —
//! adding a corpus file without classifying it here fails the test, so the
//! corpus cannot silently rot.

use std::collections::BTreeSet;
use std::path::PathBuf;

use renuver::data::{arff, csv};

/// `(file name, decodes successfully)`.
const EXPECTATIONS: &[(&str, bool)] = &[
    // CSV
    ("bad_duplicate_attr.csv", false),
    ("bad_empty.csv", false),
    ("bad_field_count.csv", false),
    ("bad_unknown_type.csv", false),
    ("bad_unterminated_quote.csv", false),
    ("ok_all_null_rows.csv", true),
    ("ok_crlf.csv", true),
    ("ok_quoted_newline.csv", true),
    // ARFF
    ("bad_attr_without_type.arff", false),
    ("bad_data_before_attrs.arff", false),
    ("bad_empty_nominal.arff", false),
    ("bad_field_count.arff", false),
    ("bad_header_garbage.arff", false),
    ("bad_no_data.arff", false),
    ("bad_nominal_violation.arff", false),
    ("bad_unsupported_type.arff", false),
    ("bad_unterminated_attr_quote.arff", false),
    ("bad_unterminated_data_quote.arff", false),
    ("ok_small.arff", true),
];

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

#[test]
fn every_corpus_file_decodes_as_classified() {
    for (name, ok) in EXPECTATIONS {
        let path = corpus_dir().join(name);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("corpus file {name} unreadable: {e}"));
        let result = if name.ends_with(".arff") {
            arff::read_str(&text).map(|_| ())
        } else {
            csv::read_str(&text).map(|_| ())
        };
        match (result, ok) {
            (Ok(()), true) | (Err(_), false) => {}
            (Ok(()), false) => panic!("{name}: expected a decode error, got Ok"),
            (Err(e), true) => panic!("{name}: expected success, got error: {e}"),
        }
    }
}

#[test]
fn corpus_errors_name_the_format_and_line() {
    // Errors must point the user somewhere useful: ARFF errors identify the
    // format, both formats carry a line number in their Display output.
    let text = std::fs::read_to_string(corpus_dir().join("bad_nominal_violation.arff")).unwrap();
    let err = arff::read_str(&text).unwrap_err().to_string();
    assert!(err.starts_with("ARFF error at line "), "{err}");
    let text = std::fs::read_to_string(corpus_dir().join("bad_field_count.csv")).unwrap();
    let err = csv::read_str(&text).unwrap_err().to_string();
    assert!(err.contains("line 3"), "{err}");
}

#[test]
fn table_is_exhaustive_over_the_directory() {
    let on_disk: BTreeSet<String> = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus must exist")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    let in_table: BTreeSet<String> =
        EXPECTATIONS.iter().map(|(n, _)| (*n).to_owned()).collect();
    assert_eq!(
        on_disk, in_table,
        "tests/corpus and the EXPECTATIONS table are out of sync"
    );
}
