//! Exercises the counting allocator with it actually installed as the
//! global allocator (its own test binary, because a global allocator is
//! per-binary).

use renuver::eval::budget::{
    current_bytes, format_bytes, measure, peak_bytes, reset_peak, Budget, BudgetTrip,
    TrackingAlloc,
};

#[global_allocator]
static ALLOC: TrackingAlloc = TrackingAlloc;

#[test]
fn peak_tracks_large_allocations() {
    reset_peak();
    let before = peak_bytes();
    let (len, _elapsed, peak) = measure(|| {
        let v: Vec<u8> = vec![7; 8 * 1024 * 1024];
        v.len()
    });
    assert_eq!(len, 8 * 1024 * 1024);
    // The 8 MiB buffer must show up in the measured peak.
    assert!(peak >= 8 * 1024 * 1024, "peak {} (before {before})", format_bytes(peak));
    // And it was freed again: current live bytes are below the old peak.
    assert!(current_bytes() < before + 8 * 1024 * 1024);
}

#[test]
fn reset_clears_high_water_mark() {
    {
        let _big: Vec<u8> = vec![1; 4 * 1024 * 1024];
    } // dropped
    reset_peak();
    let base = peak_bytes();
    let _small: Vec<u8> = vec![2; 1024];
    assert!(peak_bytes() >= base + 1024);
    assert!(peak_bytes() < base + 4 * 1024 * 1024);
}

#[test]
fn realloc_growth_is_counted() {
    reset_peak();
    let (_, _, peak) = measure(|| {
        let mut v: Vec<u64> = Vec::new();
        for i in 0..500_000u64 {
            v.push(i); // repeated reallocs
        }
        v
    });
    assert!(peak >= 500_000 * 8, "peak {}", format_bytes(peak));
}

#[test]
fn mem_ceiling_trips_against_the_real_allocator() {
    // The ceiling is anchored at the current live-byte count, then a large
    // ballast is held alive across the check: with the tracking allocator
    // installed, `current_bytes()` must exceed the ceiling and trip.
    let budget = Budget::unlimited().with_mem_ceiling(current_bytes());
    let ballast: Vec<u8> = vec![0xAB; 32 * 1024 * 1024];
    assert_eq!(budget.check("test::ballast"), Err(BudgetTrip::Memory));
    // The first trip is sticky: site and kind survive later checks.
    assert_eq!(budget.trip(), Some(BudgetTrip::Memory));
    assert_eq!(budget.trip_phase(), Some("test::ballast"));
    drop(ballast);
    assert_eq!(budget.check("test::after-free"), Err(BudgetTrip::Memory));
    assert_eq!(budget.trip_phase(), Some("test::ballast"));
    // Peak is left out of the assertions: sibling tests call reset_peak()
    // concurrently, so only the trip kind and site are stable here.
    let report = budget.report();
    assert_eq!(report.tripped, Some(BudgetTrip::Memory));
    assert_eq!(report.tripped_at, Some("test::ballast"));
}
