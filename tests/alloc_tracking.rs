//! Exercises the counting allocator with it actually installed as the
//! global allocator (its own test binary, because a global allocator is
//! per-binary).

use renuver::eval::budget::{
    current_bytes, format_bytes, measure, peak_bytes, reset_peak, TrackingAlloc,
};

#[global_allocator]
static ALLOC: TrackingAlloc = TrackingAlloc;

#[test]
fn peak_tracks_large_allocations() {
    reset_peak();
    let before = peak_bytes();
    let (len, _elapsed, peak) = measure(|| {
        let v: Vec<u8> = vec![7; 8 * 1024 * 1024];
        v.len()
    });
    assert_eq!(len, 8 * 1024 * 1024);
    // The 8 MiB buffer must show up in the measured peak.
    assert!(peak >= 8 * 1024 * 1024, "peak {} (before {before})", format_bytes(peak));
    // And it was freed again: current live bytes are below the old peak.
    assert!(current_bytes() < before + 8 * 1024 * 1024);
}

#[test]
fn reset_clears_high_water_mark() {
    {
        let _big: Vec<u8> = vec![1; 4 * 1024 * 1024];
    } // dropped
    reset_peak();
    let base = peak_bytes();
    let _small: Vec<u8> = vec![2; 1024];
    assert!(peak_bytes() >= base + 1024);
    assert!(peak_bytes() < base + 4 * 1024 * 1024);
}

#[test]
fn realloc_growth_is_counted() {
    reset_peak();
    let (_, _, peak) = measure(|| {
        let mut v: Vec<u64> = Vec::new();
        for i in 0..500_000u64 {
            v.push(i); // repeated reallocs
        }
        v
    });
    assert!(peak >= 500_000 * 8, "peak {}", format_bytes(peak));
}
