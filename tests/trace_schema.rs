//! The observability contract, end to end: an imputation run under an
//! enabled tracer emits a JSONL trace that validates against the closed
//! schema of `renuver::obs::schema`, its explain records account for every
//! missing cell, and — the part that keeps tracing honest — the traced
//! run's decisions are bit-identical to an untraced run's.

use renuver::core::{CellOutcome, Renuver, RenuverConfig};
use renuver::data::csv;
use renuver::eval::inject;
use renuver::obs::schema::validate_trace;
use renuver::obs::Tracer;
use renuver::rfd::discovery::{discover, DiscoveryConfig};

const DATA: &str = "\
Name:text,City:text,Zip:text,Pop:int
Eolo,Salerno,84084,130000
Vicolo,Salerno,84084,130000
Crispi,Milano,20121,1350000
Brera,Milano,20121,1350000
Pergola,Roma,00184,2870000
Margana,Roma,00184,2870000
Baffo,Roma,00184,2870000
Strega,Napoli,80121,960000
Nennella,Napoli,80121,960000
Cibo,Napoli,80121,960000
";

#[test]
fn traced_run_validates_and_matches_the_untraced_run() {
    let full = csv::read_str(DATA).unwrap();
    let (rel, _truth) = inject(&full, 0.1, 7);
    assert!(rel.missing_count() > 0, "fixture must have holes");
    let sigma = discover(&rel, &DiscoveryConfig::with_limit(3.0));

    let tracer = Tracer::enabled();
    let traced = Renuver::new(RenuverConfig {
        tracer: tracer.clone(),
        explain: true,
        ..RenuverConfig::default()
    })
    .impute(&rel, &sigma);
    let untraced = Renuver::new(RenuverConfig::default()).impute(&rel, &sigma);

    // Every line of the trace passes the closed schema.
    let jsonl = tracer.to_jsonl();
    let lines = validate_trace(&jsonl).unwrap_or_else(|(line, why)| {
        panic!("trace line {line} invalid: {why}\n{jsonl}");
    });
    assert!(lines > 0);

    // The explain records account for every missing cell, and the result's
    // own ledger balances.
    assert_eq!(traced.explains.len(), traced.stats.missing_total);
    assert_eq!(
        traced.stats.imputed + traced.unimputed.len(),
        traced.stats.missing_total
    );
    for e in &traced.explains {
        match e.outcome {
            CellOutcome::Imputed => assert!(
                e.winner.is_some(),
                "imputed cell {:?} has no winner record",
                e.cell
            ),
            _ => assert!(
                e.dried_up.is_some(),
                "dry cell {:?} has no dry-up reason",
                e.cell
            ),
        }
    }

    // One `cell` event per missing cell in the trace itself.
    let cell_events = jsonl
        .lines()
        .filter(|l| l.contains("\"kind\":\"cell\""))
        .count();
    assert_eq!(cell_events, traced.stats.missing_total);

    // Tracing observes; it never steers. The explain records live only in
    // the explain-enabled result, so compare the decision-bearing parts.
    assert_eq!(traced.relation, untraced.relation);
    assert_eq!(traced.imputed, untraced.imputed);
    assert_eq!(traced.unimputed, untraced.unimputed);
    assert_eq!(traced.outcomes, untraced.outcomes);
    assert_eq!(traced.stats, untraced.stats);
}
