//! End-to-end budget enforcement through the CLI binary: limited runs exit
//! 0 with a non-empty partial result and explicit truncation markers, and
//! ops-limited runs are bit-for-bit reproducible.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_renuver"))
}

fn tempdir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("renuver-budget-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A synthetic relation wide and tall enough that full discovery or
/// imputation takes far longer than the budgets used below: four text
/// columns with overlapping-but-distinct values across `rows` rows.
fn heavy_csv(rows: usize, holes: bool) -> String {
    let mut out = String::from("A:text,B:text,C:text,D:text\n");
    for i in 0..rows {
        let d = if holes && i % 7 == 3 {
            "_".to_owned()
        } else {
            format!("d{:04}", i % 251)
        };
        out.push_str(&format!(
            "a{:03},b{:04},c{:05},{d}\n",
            i % 97,
            i % 193,
            i * 31 % 1009,
        ));
    }
    out
}

/// Like [`heavy_csv`] but with long high-entropy cells, so every pairwise
/// Levenshtein comparison costs thousands of character operations. Full
/// discovery on 4 000 such rows samples 400 000 pairs x 4 attributes and
/// takes well over a second even in release mode — a 1-second deadline
/// trips mid-scan rather than racing the machine.
fn heavy_long_csv(rows: usize) -> String {
    let mut out = String::from("A:text,B:text,C:text,D:text\n");
    for i in 0..rows {
        let pad: String = (0..10)
            .map(|k| format!("{:06}", (i * 7919 + k * 104_729 + 13) % 999_983))
            .collect();
        out.push_str(&format!(
            "a{:03}{pad},b{:04}{pad},c{:05}{pad},d{:04}{pad}\n",
            i % 97,
            i % 193,
            i * 31 % 1009,
            i % 251,
        ));
    }
    out
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn discover_with_one_second_deadline_returns_partial_frontier() {
    let dir = tempdir("deadline");
    let data = dir.join("heavy.csv");
    std::fs::write(&data, heavy_long_csv(4000)).unwrap();
    let rfds = dir.join("rfds.txt");

    let out = bin()
        .arg("discover")
        .arg(&data)
        .args(["--limit", "5", "--max-lhs", "2", "--timeout-secs", "1", "--out"])
        .arg(&rfds)
        .output()
        .unwrap();
    // Partial results are SUCCESS, not failure.
    assert!(out.status.success(), "stderr: {}", stderr_of(&out));
    let stderr = stderr_of(&out);
    assert!(stderr.contains("truncated"), "expected a truncation marker: {stderr}");
    // The frontier found before the deadline is non-empty and parseable.
    let text = std::fs::read_to_string(&rfds).unwrap();
    assert!(
        text.lines().any(|l| !l.trim().is_empty()),
        "partial frontier should not be empty: {text:?}"
    );
}

#[test]
fn ops_limited_discovery_is_deterministic_and_exits_zero() {
    let dir = tempdir("ops-det");
    let data = dir.join("heavy.csv");
    std::fs::write(&data, heavy_csv(600, false)).unwrap();

    let run = || {
        bin()
            .arg("discover")
            .arg(&data)
            .args(["--limit", "5", "--ops-limit", "64"])
            .output()
            .unwrap()
    };
    let a = run();
    let b = run();
    assert!(a.status.success());
    assert!(stderr_of(&a).contains("truncated"), "{}", stderr_of(&a));
    assert!(!a.stdout.is_empty(), "partial frontier should be non-empty");
    // Ops limits count deterministic checkpoints, so two runs agree byte
    // for byte — stdout (the frontier) and exit status alike.
    assert_eq!(a.stdout, b.stdout);
    assert_eq!(a.status.code(), b.status.code());
}

#[test]
fn zero_ops_imputation_reports_skipped_cells_and_writes_partial_output() {
    let dir = tempdir("impute-skip");
    let data = dir.join("holes.csv");
    std::fs::write(&data, heavy_csv(300, true)).unwrap();
    let rfds = dir.join("rfds.txt");
    // D is reconstructible from (A, B, C) at threshold 0 given enough rows;
    // hand the imputer one exact dependency so the unbudgeted path would
    // impute, then strangle the budget.
    std::fs::write(&rfds, "A(<=0), B(<=0), C(<=0) -> D(<=0)\n").unwrap();
    let repaired = dir.join("repaired.csv");

    let out = bin()
        .arg("impute")
        .arg(&data)
        .args(["--ops-limit", "0", "--rfds"])
        .arg(&rfds)
        .arg("--out")
        .arg(&repaired)
        .output()
        .unwrap();
    assert!(out.status.success(), "stderr: {}", stderr_of(&out));
    let stderr = stderr_of(&out);
    assert!(stderr.contains("operation limit"), "{stderr}");
    assert!(stderr.contains("cells skipped"), "{stderr}");
    // The partial relation was still written (identical to the input here:
    // every cell was skipped).
    let text = std::fs::read_to_string(&repaired).unwrap();
    assert_eq!(text.lines().count(), 301, "300 rows + header");
}

#[test]
fn unlimited_runs_print_no_budget_markers() {
    let dir = tempdir("unlimited");
    let data = dir.join("small.csv");
    std::fs::write(&data, heavy_csv(40, true)).unwrap();

    let out = bin()
        .arg("impute")
        .arg(&data)
        .args(["--limit", "1"])
        .output()
        .unwrap();
    assert!(out.status.success(), "stderr: {}", stderr_of(&out));
    let stderr = stderr_of(&out);
    assert!(!stderr.contains("budget:"), "{stderr}");
    assert!(!stderr.contains("truncated"), "{stderr}");
}
