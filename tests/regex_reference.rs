//! Property test: the rulekit NFA regex engine against a tiny
//! backtracking reference matcher, over a restricted random grammar
//! (literals, `.`, classes, `*`, `+`, `?`, alternation of two branches).

use proptest::prelude::*;
use renuver::rulekit::Regex;

/// Reference AST mirroring the generated patterns.
#[derive(Debug, Clone)]
enum Tok {
    Lit(char),
    Any,
    Class(Vec<char>, bool),
    Star(Box<Tok>),
    Plus(Box<Tok>),
    Opt(Box<Tok>),
}

impl Tok {
    fn to_pattern(&self) -> String {
        match self {
            Tok::Lit(c) => c.to_string(),
            Tok::Any => ".".into(),
            Tok::Class(cs, neg) => {
                let body: String = cs.iter().collect();
                if *neg {
                    format!("[^{body}]")
                } else {
                    format!("[{body}]")
                }
            }
            Tok::Star(t) => format!("{}*", t.to_pattern()),
            Tok::Plus(t) => format!("{}+", t.to_pattern()),
            Tok::Opt(t) => format!("{}?", t.to_pattern()),
        }
    }
}

/// Backtracking full-match of a token sequence against a char slice.
fn matches(tokens: &[Tok], input: &[char]) -> bool {
    match tokens.split_first() {
        None => input.is_empty(),
        Some((tok, rest)) => match tok {
            Tok::Lit(c) => {
                input.first() == Some(c) && matches(rest, &input[1..])
            }
            Tok::Any => !input.is_empty() && matches(rest, &input[1..]),
            Tok::Class(cs, neg) => match input.first() {
                None => false,
                Some(c) => (cs.contains(c) != *neg) && matches(rest, &input[1..]),
            },
            Tok::Star(inner) => {
                // Zero or more copies of `inner`, then the rest.
                let single = [(**inner).clone()];
                let mut i = 0;
                loop {
                    if matches(rest, &input[i..]) {
                        return true;
                    }
                    if i < input.len() && matches(&single, &input[i..=i]) {
                        i += 1;
                    } else {
                        return false;
                    }
                }
            }
            Tok::Plus(inner) => {
                let single = [(**inner).clone()];
                if input.is_empty() || !matches(&single, &input[..1]) {
                    return false;
                }
                let star = [Tok::Star(inner.clone())];
                let mut seq: Vec<Tok> = star.to_vec();
                seq.extend_from_slice(rest);
                matches(&seq, &input[1..])
            }
            Tok::Opt(inner) => {
                let single = [(**inner).clone()];
                (!input.is_empty() && matches(&single, &input[..1]) && matches(rest, &input[1..]))
                    || matches(rest, input)
            }
        },
    }
}

fn arb_atom() -> impl Strategy<Value = Tok> {
    prop_oneof![
        4 => prop::char::range('a', 'd').prop_map(Tok::Lit),
        1 => Just(Tok::Any),
        2 => (proptest::collection::vec(prop::char::range('a', 'd'), 1..3), any::<bool>())
            .prop_map(|(mut cs, neg)| {
                cs.dedup();
                Tok::Class(cs, neg)
            }),
    ]
}

fn arb_token() -> impl Strategy<Value = Tok> {
    arb_atom().prop_flat_map(|atom| {
        prop_oneof![
            4 => Just(atom.clone()),
            1 => Just(Tok::Star(Box::new(atom.clone()))),
            1 => Just(Tok::Plus(Box::new(atom.clone()))),
            1 => Just(Tok::Opt(Box::new(atom))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn engine_agrees_with_backtracking_reference(
        tokens in proptest::collection::vec(arb_token(), 0..6),
        input in "[a-e]{0,8}",
    ) {
        let pattern: String = tokens.iter().map(Tok::to_pattern).collect();
        let engine = Regex::new(&pattern).unwrap();
        let chars: Vec<char> = input.chars().collect();
        prop_assert_eq!(
            engine.is_match(&input),
            matches(&tokens, &chars),
            "pattern {:?} input {:?}",
            pattern,
            input
        );
    }

    #[test]
    fn alternation_agrees(
        left in proptest::collection::vec(arb_token(), 0..4),
        right in proptest::collection::vec(arb_token(), 0..4),
        input in "[a-e]{0,6}",
    ) {
        let pattern = format!(
            "{}|{}",
            left.iter().map(Tok::to_pattern).collect::<String>(),
            right.iter().map(Tok::to_pattern).collect::<String>(),
        );
        let engine = Regex::new(&pattern).unwrap();
        let chars: Vec<char> = input.chars().collect();
        prop_assert_eq!(
            engine.is_match(&input),
            matches(&left, &chars) || matches(&right, &chars),
            "pattern {:?} input {:?}",
            pattern,
            input
        );
    }
}
