//! End-to-end reproduction of the paper's worked examples: the Table 2
//! Restaurant sample, the Figure 1 dependency set, and the Examples
//! 3.3–5.9 walk-through, all through the public API.

use renuver::core::{Renuver, RenuverConfig};
use renuver::data::{csv, Cell, Relation, Value};
use renuver::distance::{levenshtein, DistancePattern};
use renuver::rfd::{check, RfdSet};

/// Table 2, loaded the way a user would load it.
fn table_2() -> Relation {
    csv::read_str(
        "Name:text,City:text,Phone:text,Type:text,Class:int\n\
         Granita,Malibu,310/456-0488,Californian,6\n\
         Chinois Main,LA,310-392-9025,French,5\n\
         Citrus,Los Angeles,213/857-0034,Californian,6\n\
         Citrus,Los Angeles,,Californian,6\n\
         Fenix,Hollywood,213/848-6677,,5\n\
         Fenix Argyle,,213/848-6677,French (new),5\n\
         C. Main,Los Angeles,,French,5\n",
    )
    .unwrap()
}

/// The Figure 1 RFD set φ1..φ7, parsed from the paper's notation.
fn figure_1_sigma(rel: &Relation) -> RfdSet {
    RfdSet::from_text(
        "Name(<=8), Phone(<=0), Class(<=1) -> Type(<=0)\n\
         Class(<=0) -> Type(<=5)\n\
         City(<=2) -> Phone(<=2)\n\
         Name(<=4) -> Phone(<=1)\n\
         Name(<=8), Phone(<=0) -> City(<=9)\n\
         Name(<=6), City(<=9) -> Phone(<=0)\n\
         Phone(<=1) -> Class(<=0)\n",
        rel.schema(),
    )
    .unwrap()
}

#[test]
fn table_2_loads_with_expected_missing_cells() {
    let rel = table_2();
    assert_eq!(rel.len(), 7);
    assert_eq!(rel.arity(), 5);
    // r̂ = {t4, t5, t6, t7} (0-based rows 3..=6).
    assert_eq!(rel.incomplete_rows(), vec![3, 4, 5, 6]);
    assert_eq!(
        rel.missing_cells(),
        vec![Cell::new(3, 2), Cell::new(4, 3), Cell::new(5, 1), Cell::new(6, 2)]
    );
}

#[test]
fn example_3_3_name_phone_dependency_holds() {
    // φ4: Name(≤4) → Phone(≤1) holds on the sample.
    let rel = table_2();
    let rfd = renuver::rfd::Rfd::parse("Name(<=4) -> Phone(<=1)", rel.schema()).unwrap();
    assert!(check::holds(&rel, &rfd));
}

#[test]
fn example_5_5_distance_pattern() {
    // p(t5, t6) = [7, _, 0, _, 0].
    let rel = table_2();
    let p = DistancePattern::between_rows(&rel, 4, 5);
    assert_eq!(p.to_string(), "[7, _, 0, _, 0]");
}

#[test]
fn example_5_7_distance_value() {
    // φ5's LHS {Name, Phone} on (t5, t6): dist = (7+0)/2 = 3.5.
    let rel = table_2();
    let p = DistancePattern::between_rows(&rel, 4, 5);
    assert_eq!(p.mean_over(&[0, 2]), Some(3.5));
}

#[test]
fn example_5_8_candidate_distances() {
    // The paper's distances for imputing t7[Phone] via φ6:
    // dist(t2,t7) = (6+9)/2 = 7.5, dist(t3,t7) = (6+0)/2 = 3.
    let rel = table_2();
    let name = |r: usize| rel.value(r, 0).as_text().unwrap().to_owned();
    assert_eq!(levenshtein(&name(1), &name(6)), 6);
    assert_eq!(levenshtein("LA", "Los Angeles"), 9);
    assert_eq!(levenshtein(&name(2), &name(6)), 6);
    let p27 = DistancePattern::between_rows(&rel, 1, 6);
    let p37 = DistancePattern::between_rows(&rel, 2, 6);
    assert_eq!(p27.mean_over(&[0, 1]), Some(7.5));
    assert_eq!(p37.mean_over(&[0, 1]), Some(3.0));
}

#[test]
fn figure_1_walkthrough_imputes_t7_phone_from_t2() {
    // The full pipeline: t3's phone is tried first (distance 3) and
    // rejected by φ7 (classes 6 vs 5); t2's phone (distance 7.5) sticks.
    let rel = table_2();
    let sigma = figure_1_sigma(&rel);
    let result = Renuver::new(RenuverConfig::default()).impute(&rel, &sigma);

    let t7_phone = result
        .imputed
        .iter()
        .find(|ic| ic.cell == Cell::new(6, 2))
        .expect("t7[Phone] imputed");
    assert_eq!(t7_phone.value, Value::Text("310-392-9025".into()));
    assert_eq!(t7_phone.donor_row, 1);
    assert_eq!(t7_phone.distance, 7.5);
    assert_eq!(t7_phone.cluster_threshold, 0.0); // via φ6's ρ⁰ cluster
    assert_eq!(
        t7_phone.via.display(rel.schema()).to_string(),
        "Name(≤6), City(≤9) → Phone(≤0)", // φ6, as in the paper
    );
    assert!(result.stats.verification_failures >= 1); // t3 rejected first
}

#[test]
fn example_4_4_bad_imputation_detected() {
    // Imputing t7[Phone] with t1's phone violates φ0: Phone(≤0) → City(≤10).
    let mut rel = table_2();
    rel.set_value(6, 2, rel.value(0, 2).clone());
    let phi0 = renuver::rfd::Rfd::parse("Phone(<=0) -> City(<=10)", rel.schema()).unwrap();
    assert!(!check::holds(&rel, &phi0));
    assert_eq!(check::violations(&rel, &phi0), vec![(0, 6)]);
}

#[test]
fn example_5_1_imputation_reactivates_key() {
    // Name(≤0), Phone(≤0) → Type is a key on Table 2; imputing t4[Phone]
    // with t3's phone creates the first LHS-similar pair (t3, t4).
    let rel = table_2();
    let key = renuver::rfd::Rfd::parse(
        "Name(<=0), Phone(<=0) -> Type(<=0)",
        rel.schema(),
    )
    .unwrap();
    assert!(check::is_key(&rel, &key));
    let mut imputed = rel.clone();
    imputed.set_value(3, 2, rel.value(2, 2).clone());
    assert!(!check::is_key(&imputed, &key));
    assert!(!check::stays_key_after_update(&imputed, &key, 3));
}

#[test]
fn semantic_consistency_of_the_full_run() {
    // Definition 4.3 under the LhsOnly reading: after the run, no RFD whose
    // LHS involves an imputed attribute is violated by a pair involving an
    // imputed tuple. Verify globally: every imputation kept the RFDs that
    // were checked for it satisfied on the final instance modulo later
    // cluster-0 interactions — here simply: φ7 (the paper's verification
    // example) holds on the result.
    let rel = table_2();
    let sigma = figure_1_sigma(&rel);
    let result = Renuver::new(RenuverConfig::default()).impute(&rel, &sigma);
    let phi7 = renuver::rfd::Rfd::parse("Phone(<=1) -> Class(<=0)", rel.schema()).unwrap();
    assert!(check::holds(&result.relation, &phi7));
}
