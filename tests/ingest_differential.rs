//! Differential proof behind the write path: growing an engine by
//! committing batches through [`Engine::commit_tuples`] must be
//! **bit-identical** to throwing the engine away and rebuilding it from
//! scratch on the full data — the same guarantee the artifact format
//! gives for load-vs-build, extended to incremental growth. The
//! comparison is on serialized artifact bytes, which cover the
//! relation, the RFD set, the dictionary-encoded distance oracle, and
//! the similarity index, so any drift in any layer fails the test.

use renuver::core::{Engine, IndexMode, RenuverConfig};
use renuver::data::{csv, Relation, Tuple, Value};
use renuver::rfd::discovery::{discover, DiscoveryConfig};
use renuver::rfd::RfdSet;
use renuver::serve::artifact;

/// The bundled restaurant sample: 60 rows, 6 attributes, text-heavy —
/// exercises the string dictionary and the Levenshtein matrices.
fn full_relation() -> Relation {
    csv::read_path("data/restaurant_sample.csv").unwrap()
}

/// RFDs discovered on the *base prefix* only, so the incremental and
/// rebuilt engines share one fixed Σ (discovery on different data would
/// legitimately differ).
fn base_and_rfds(full: &Relation, base_rows: usize) -> (Relation, RfdSet) {
    let tuples: Vec<Tuple> = full.tuples().take(base_rows).cloned().collect();
    let base = Relation::new(full.schema().clone(), tuples).unwrap();
    let rfds = discover(&base, &DiscoveryConfig::with_limit(2.0));
    (base, rfds)
}

fn differential(index_mode: IndexMode, chunk: usize) {
    let full = full_relation();
    let base_rows = 40;
    let (base, rfds) = base_and_rfds(&full, base_rows);
    let config = RenuverConfig { index_mode, ..RenuverConfig::default() };

    let mut incremental = Engine::prepare(base, rfds.clone(), config.clone());
    let rest: Vec<Tuple> = full.tuples().skip(base_rows).cloned().collect();
    for batch in rest.chunks(chunk) {
        incremental.commit_tuples(batch.to_vec()).unwrap();
    }

    let rebuilt = Engine::prepare(full, rfds, config);
    assert_eq!(
        artifact::encode_engine(&incremental, "diff", 7),
        artifact::encode_engine(&rebuilt, "diff", 7),
        "incremental commit (chunks of {chunk}, {index_mode:?}) diverged from a full rebuild"
    );
}

#[test]
fn row_at_a_time_equals_rebuild_scan() {
    differential(IndexMode::Scan, 1);
}

#[test]
fn row_at_a_time_equals_rebuild_indexed() {
    differential(IndexMode::Indexed, 1);
}

#[test]
fn uneven_chunks_equal_rebuild_scan() {
    differential(IndexMode::Scan, 7);
}

#[test]
fn one_big_batch_equals_rebuild_indexed() {
    differential(IndexMode::Indexed, 20);
}

/// Committed rows must serve as donors through the same oracle paths a
/// built-from-scratch engine uses: impute after commit ≡ impute after
/// rebuild, including the repaired values themselves.
#[test]
fn imputation_after_commit_matches_rebuild() {
    let full = full_relation();
    let (base, rfds) = base_and_rfds(&full, 40);
    let config = RenuverConfig::default();

    let mut incremental = Engine::prepare(base, rfds.clone(), config.clone());
    let rest: Vec<Tuple> = full.tuples().skip(40).cloned().collect();
    incremental.commit_tuples(rest).unwrap();
    let mut rebuilt = Engine::prepare(full, rfds, config.clone());

    // A batch with one hole per attribute, cloned from a late donor row
    // so the repair has to come through the newly committed region.
    let donor: Tuple = incremental.relation().tuples().last().unwrap().clone();
    let mut probes = Vec::new();
    for col in 0..donor.len() {
        let mut t = donor.clone();
        t[col] = Value::Null;
        probes.push(t);
    }

    let a = incremental.impute_batch_with(probes.clone(), &config).unwrap();
    let b = rebuilt.impute_batch_with(probes, &config).unwrap();
    assert_eq!(a.tuples, b.tuples);
    assert_eq!(a.stats.imputed, b.stats.imputed);
}

/// A batch the relation refuses (arity mismatch part-way through) must
/// leave the engine bit-identical to before the call — the rollback
/// guarantee `/v1/ingest` and `renuver ingest` lean on.
#[test]
fn failed_commit_rolls_back_completely() {
    let full = full_relation();
    let (base, rfds) = base_and_rfds(&full, 40);
    let mut engine = Engine::prepare(base, rfds, RenuverConfig::default());
    let before = artifact::encode_engine(&engine, "rb", 0);

    let good: Tuple = full.tuples().last().unwrap().clone();
    let bad: Tuple = good[..2].to_vec();
    engine.commit_tuples(vec![good, bad]).unwrap_err();

    assert_eq!(artifact::encode_engine(&engine, "rb", 0), before);
}
