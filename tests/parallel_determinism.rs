//! Parallel-vs-sequential equivalence: `RenuverConfig::parallelism` must
//! not change a single bit of the output.
//!
//! `parallelism: 1` takes the exact sequential code paths (reusable
//! buffers, plain loops); any other setting routes the oracle build, donor
//! scans, and verification scans through the chunked parallel scans. The
//! two are designed to merge chunk results in index order — these tests
//! pin that contract on the paper's restaurant sample and on a relation
//! large enough (5 000 rows, ≫ the parallel fallback threshold) that the
//! parallel branches actually execute.

use renuver::core::{Renuver, RenuverConfig, ImputationResult};
use renuver::data::{AttrType, Relation, Schema, Value};
use renuver::datasets::Dataset;
use renuver::eval::inject;
use renuver::rfd::discovery::{discover, DiscoveryConfig};
use renuver::rfd::RfdSet;

fn run(rel: &Relation, sigma: &RfdSet, parallelism: usize) -> ImputationResult {
    let cfg = RenuverConfig { parallelism, trace: true, ..RenuverConfig::default() };
    Renuver::new(cfg).impute(rel, sigma)
}

#[test]
fn restaurant_sample_identical_across_thread_counts() {
    let rel = Dataset::Restaurant.relation(11);
    let (incomplete, _truth) = inject(&rel, 0.03, 11);
    let sigma = discover(
        &incomplete,
        &DiscoveryConfig { max_lhs: 2, ..DiscoveryConfig::with_limit(6.0) },
    );
    let sequential = run(&incomplete, &sigma, 1);
    assert!(sequential.stats.imputed > 0, "degenerate fixture: nothing imputed");
    for threads in [0, 2, 4] {
        let parallel = run(&incomplete, &sigma, threads);
        assert_eq!(sequential, parallel, "parallelism={threads} diverged");
    }
}

/// 5 000 rows with a high-cardinality text column (the oracle builds a
/// dictionary distance matrix for it in parallel) and planted RFDs, so
/// every parallelized scan runs over inputs past the sequential-fallback
/// threshold.
fn synthetic_5k() -> (Relation, RfdSet) {
    let schema = Schema::new([
        ("Name", AttrType::Text),
        ("City", AttrType::Text),
        ("Zip", AttrType::Text),
        ("Class", AttrType::Int),
    ])
    .unwrap();
    let rows: Vec<Vec<Value>> = (0..5_000usize)
        .map(|i| {
            let city_id = i % 40;
            vec![
                Value::from(format!("Shop-{:04}", i % 800).as_str()),
                Value::from(format!("City{city_id:02}").as_str()),
                Value::from(format!("9{:04}", city_id * 7).as_str()),
                Value::Int((i % 9) as i64),
            ]
        })
        .collect();
    let rel = Relation::new(schema, rows).unwrap();
    let sigma = RfdSet::from_text(
        "City(<=0) -> Zip(<=0)\n\
         Zip(<=1) -> City(<=3)\n\
         Name(<=3) -> City(<=6)\n\
         Zip(<=0) -> Class(<=8)",
        rel.schema(),
    )
    .unwrap();
    (rel, sigma)
}

#[test]
fn synthetic_5k_rows_identical_across_thread_counts() {
    let (rel, sigma) = synthetic_5k();
    let (incomplete, truth) = inject(&rel, 0.002, 23);
    assert!(truth.len() > 10, "fixture should knock out a few dozen cells");
    let sequential = run(&incomplete, &sigma, 1);
    assert!(sequential.stats.imputed > 0, "degenerate fixture: nothing imputed");
    let parallel = run(&incomplete, &sigma, 4);
    assert_eq!(sequential, parallel);
}
