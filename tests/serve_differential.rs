//! Differential harness for the serving stack: the long-lived
//! [`renuver::core::Engine`] and the artifact snapshot must answer
//! bit-for-bit identically to the one-shot reference paths.
//!
//! Two equivalences are pinned, on the paper's Restaurant stand-in and on
//! the 5 000-row synthetic shop fixture shared with `bench_serve`:
//!
//! 1. **Engine batch == `impute_appended`.** Appending a request batch to
//!    the reference relation and running the one-shot incremental path
//!    must produce the same repaired tuples, per-cell outcomes, imputed
//!    records, explain records, and stats as [`Engine::impute_batch`] —
//!    which reuses a prebuilt oracle/index and rolls back afterwards.
//!    The oracle append path (dictionary-code reuse + direct-computation
//!    fallback) and the index append path (postings or the always-scanned
//!    foreign set) are exactly the machinery under test here.
//! 2. **Artifact load == fresh build.** An engine deserialized from a
//!    `.rnv` snapshot must answer every batch identically to the engine
//!    that was just built from the raw relation.
//!
//! Comparisons canonicalize through `Debug` text (as
//! `tests/index_differential.rs` does) so NaN distances compare equal to
//! themselves.

use renuver::core::{BatchResult, Engine, ImputationResult, IndexMode, Renuver, RenuverConfig};
use renuver::data::{Cell, Relation, Tuple};
use renuver::datasets::Dataset;
use renuver::eval::inject;
use renuver::rfd::discovery::{discover, DiscoveryConfig};
use renuver::rfd::RfdSet;
use renuver::serve::artifact;
use renuver_bench::synthetic_shops;

fn config(mode: IndexMode) -> RenuverConfig {
    RenuverConfig {
        parallelism: 1,
        index_mode: mode,
        explain: true,
        ..RenuverConfig::default()
    }
}

/// Everything decision-relevant in a batch result (the budget report is
/// excluded: elapsed time differs between identical runs).
fn canon_batch(r: &BatchResult) -> String {
    format!("{:?}|{:?}|{:?}|{:?}|{:?}", r.tuples, r.outcomes, r.imputed, r.explains, r.stats)
}

/// The one-shot incremental result reshaped to batch-relative rows, in
/// the same canonical rendering as [`canon_batch`]. Donor rows are left
/// absolute on both sides (the engine keeps them engine-absolute by
/// contract).
fn canon_oneshot(r: &ImputationResult, base: usize) -> String {
    let rebase = |c: Cell| Cell::new(c.row - base, c.col);
    let tuples: Vec<Tuple> = (base..r.relation.len()).map(|i| r.relation.tuple(i).clone()).collect();
    let outcomes: Vec<_> = r.outcomes.iter().map(|(c, o)| (rebase(*c), *o)).collect();
    let imputed: Vec<_> = r
        .imputed
        .iter()
        .cloned()
        .map(|mut rec| {
            rec.cell = rebase(rec.cell);
            rec
        })
        .collect();
    let explains: Vec<_> = r
        .explains
        .iter()
        .cloned()
        .map(|mut exp| {
            exp.cell = rebase(exp.cell);
            exp
        })
        .collect();
    format!("{tuples:?}|{outcomes:?}|{imputed:?}|{explains:?}|{:?}", r.stats)
}

/// Splits the last `k` rows of `rel` off as the request batch.
fn split(rel: &Relation, k: usize) -> (Relation, Vec<Tuple>) {
    let base_len = rel.len() - k;
    let mut base = rel.clone();
    base.truncate(base_len);
    let batch = (base_len..rel.len()).map(|i| rel.tuple(i).clone()).collect();
    (base, batch)
}

/// Runs both paths and asserts the equivalence; returns the batch result
/// for further checks.
fn assert_batch_matches_oneshot(
    base: &Relation,
    batch: &[Tuple],
    sigma: &RfdSet,
    mode: IndexMode,
) -> BatchResult {
    let mut appended = base.clone();
    for t in batch {
        appended.push(t.clone()).unwrap();
    }
    let oneshot = Renuver::new(config(mode)).impute_appended(&appended, base.len(), sigma);

    let mut engine = Engine::prepare(base.clone(), sigma.clone(), config(mode));
    let result = engine.impute_batch(batch.to_vec()).unwrap();
    assert_eq!(
        canon_batch(&result),
        canon_oneshot(&oneshot, base.len()),
        "engine batch diverged from impute_appended ({mode:?})"
    );

    // The engine rolled back and answers the same batch identically again.
    assert_eq!(engine.relation().len(), engine.donor_rows());
    let again = engine.impute_batch(batch.to_vec()).unwrap();
    assert_eq!(canon_batch(&again), canon_batch(&result), "engine state leaked across batches");
    result
}

/// Builds an engine, snapshots it, reloads, and asserts both engines
/// answer `batch` identically.
fn assert_artifact_load_matches_build(
    base: &Relation,
    batch: &[Tuple],
    sigma: &RfdSet,
    mode: IndexMode,
) {
    let mut built = Engine::prepare(base.clone(), sigma.clone(), config(mode));
    let bytes = artifact::encode_engine(&built, "differential", 0);
    let loaded = artifact::decode(&bytes).expect("snapshot decodes");
    assert_eq!(loaded.index.is_some(), built.index().is_some());
    let mut loaded = loaded.into_engine(config(mode));

    let a = built.impute_batch(batch.to_vec()).unwrap();
    let b = loaded.impute_batch(batch.to_vec()).unwrap();
    assert_eq!(
        canon_batch(&a),
        canon_batch(&b),
        "loaded engine diverged from freshly built engine ({mode:?})"
    );
}

// ------------------------------------------------------------- restaurant

fn restaurant_fixture() -> (Relation, Vec<Tuple>, RfdSet) {
    let rel = Dataset::Restaurant.relation(7);
    let sigma = discover(&rel, &DiscoveryConfig::with_limit(3.0));
    let (incomplete, _truth) = inject(&rel, 0.05, 11);
    let (base, batch) = split(&incomplete, 24);
    (base, batch, sigma)
}

#[test]
fn restaurant_batch_matches_impute_appended() {
    let (base, batch, sigma) = restaurant_fixture();
    assert!(batch.iter().any(|t| t.iter().any(|v| v.is_null())), "batch must contain holes");
    for mode in [IndexMode::Scan, IndexMode::Indexed] {
        let result = assert_batch_matches_oneshot(&base, &batch, &sigma, mode);
        assert!(result.stats.missing_total > 0, "fixture imputed nothing");
    }
}

#[test]
fn restaurant_artifact_load_matches_build() {
    let (base, batch, sigma) = restaurant_fixture();
    for mode in [IndexMode::Scan, IndexMode::Indexed] {
        assert_artifact_load_matches_build(&base, &batch, &sigma, mode);
    }
}

#[test]
fn restaurant_artifact_file_round_trip() {
    let (base, batch, sigma) = restaurant_fixture();
    let engine = Engine::prepare(base.clone(), sigma.clone(), config(IndexMode::Indexed));
    let path = std::env::temp_dir().join("renuver_serve_differential.rnv");
    artifact::save(
        &path,
        engine.relation(),
        engine.sigma(),
        engine.oracle(),
        engine.index(),
        "differential-file",
    )
    .unwrap();
    let loaded = artifact::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(loaded.source, "differential-file");
    assert_eq!(loaded.relation.len(), base.len());

    let mut built = Engine::prepare(base, sigma, config(IndexMode::Indexed));
    let mut loaded = loaded.into_engine(config(IndexMode::Indexed));
    let a = built.impute_batch(batch.clone()).unwrap();
    let b = loaded.impute_batch(batch).unwrap();
    assert_eq!(canon_batch(&a), canon_batch(&b));
}

// ---------------------------------------------------------- 5 k synthetic

fn synthetic_fixture() -> (Relation, Vec<Tuple>, RfdSet) {
    let rel = synthetic_shops(5_000);
    // The discovery-realistic tight set `bench_index` uses as headline.
    let sigma = RfdSet::from_text(
        "City(<=0) -> Zip(<=0)\n\
         Zip(<=0) -> City(<=3)\n\
         Name(<=1) -> City(<=3)\n\
         Zip(<=0) -> Class(<=8)",
        rel.schema(),
    )
    .unwrap();
    let (incomplete, _truth) = inject(&rel, 0.002, 23);
    let (base, batch) = split(&incomplete, 16);
    (base, batch, sigma)
}

#[test]
fn synthetic_5k_batch_matches_impute_appended() {
    let (base, batch, sigma) = synthetic_fixture();
    for mode in [IndexMode::Scan, IndexMode::Indexed] {
        assert_batch_matches_oneshot(&base, &batch, &sigma, mode);
    }
}

#[test]
fn synthetic_5k_artifact_load_matches_build() {
    let (base, batch, sigma) = synthetic_fixture();
    assert_artifact_load_matches_build(&base, &batch, &sigma, IndexMode::Indexed);
}
