//! End-to-end exercise of the HTTP serving stack over real loopback
//! sockets: concurrent clients with mixed valid / malformed / oversized
//! traffic, load shedding under a tiny queue, and graceful shutdown.
//!
//! What must hold:
//!
//! - Every connection gets a well-formed HTTP response — malformed input
//!   maps to 4xx, never to a hung socket or a worker panic (asserted via
//!   `http.responses_5xx == 0` and the server thread joining cleanly).
//! - The `/metrics` registry accounts exactly for what the clients saw:
//!   2xx/4xx class counts and the shed count all reconcile against
//!   client-side tallies and [`Server::run`]'s return value.
//! - Shedding answers `503` with a `Retry-After` header at the accept
//!   loop, without consuming a worker.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;

use renuver::core::{Engine, RenuverConfig};
use renuver::data::csv;
use renuver::obs::EventLog;
use renuver::rfd::{Constraint, Rfd, RfdSet};
use renuver::serve::{Ctx, FlightOptions, ModelInfo, ServeConfig, Server};

fn test_engine() -> Engine {
    let mut text = String::from("City:text,Zip:text\n");
    for i in 0..50 {
        text.push_str(&format!("City{:02},9{:04}\n", i % 25, (i % 25) * 7));
    }
    let rel = csv::read_str(&text).unwrap();
    let rfds = RfdSet::from_vec(vec![
        Rfd::new(vec![Constraint::new(0, 0.0)], Constraint::new(1, 0.0)),
        Rfd::new(vec![Constraint::new(1, 0.0)], Constraint::new(0, 0.0)),
    ]);
    Engine::prepare(rel, rfds, RenuverConfig::default())
}

fn start(config: ServeConfig) -> (SocketAddr, Arc<Ctx>, Arc<std::sync::atomic::AtomicBool>, std::thread::JoinHandle<u64>) {
    start_flight(config, FlightOptions::default())
}

/// Like [`start`], but with explicit flight-recorder options (the way
/// `renuver serve --log-out`/`--no-flight` wires them).
fn start_flight(
    config: ServeConfig,
    opts: FlightOptions,
) -> (SocketAddr, Arc<Ctx>, Arc<std::sync::atomic::AtomicBool>, std::thread::JoinHandle<u64>) {
    let mut ctx = Ctx::new(
        test_engine(),
        ModelInfo { source: "e2e".into(), schema_fingerprint: 0, artifact_bytes: 0 },
        None,
        60_000,
    );
    ctx.set_flight(opts);
    let ctx = Arc::new(ctx);
    let server = Server::bind(config, Arc::clone(&ctx)).unwrap();
    let addr = server.local_addr().unwrap();
    let stop = server.shutdown_handle();
    let handle = std::thread::spawn(move || server.run().unwrap());
    (addr, ctx, stop, handle)
}

/// Sends one raw request on a fresh connection; returns the status code
/// and the response headers + body as text. Panics on transport errors —
/// a hung or reset socket is exactly what this suite must catch.
fn request(addr: SocketAddr, raw: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(std::time::Duration::from_secs(30))).unwrap();
    stream.write_all(raw).unwrap();
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).unwrap();
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .unwrap_or_else(|| panic!("bad status line {status_line:?}"))
        .parse()
        .unwrap();
    let mut rest = String::new();
    reader.read_to_string(&mut rest).unwrap();
    (status, rest)
}

fn post_impute(body: &str, extra_query: &str) -> Vec<u8> {
    format!(
        "POST /v1/impute{extra_query} HTTP/1.1\r\nHost: e2e\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    )
    .into_bytes()
}

/// Reads a counter out of the `/metrics` text table.
fn metric(table: &str, name: &str) -> u64 {
    table
        .lines()
        .find_map(|l| {
            let mut it = l.split_whitespace();
            (it.next() == Some(name)).then(|| it.next().unwrap().parse().unwrap())
        })
        .unwrap_or_else(|| panic!("metric {name} not in:\n{table}"))
}

#[test]
fn concurrent_mixed_traffic_reconciles_with_metrics() {
    let (addr, ctx, stop, handle) = start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 4,
        queue: 64,
        max_body: 512,
        ..ServeConfig::default()
    });

    const CONNS: usize = 8;
    const PER_CONN: usize = 12;
    let mut clients = Vec::new();
    for c in 0..CONNS {
        clients.push(std::thread::spawn(move || {
            let (mut ok, mut bad, mut huge) = (0u64, 0u64, 0u64);
            for i in 0..PER_CONN {
                match (c + i) % 4 {
                    // Valid: one hole, imputable from the reference data.
                    0 => {
                        let (status, body) =
                            request(addr, &post_impute(r#"{"tuples": [["City07", null]]}"#, ""));
                        assert_eq!(status, 200, "{body}");
                        assert!(body.contains("\"imputed\":1"), "{body}");
                        ok += 1;
                    }
                    // Malformed JSON: 400 with a JSON error document.
                    1 => {
                        let (status, body) =
                            request(addr, &post_impute("{\"tuples\": [[broken", ""));
                        assert_eq!(status, 400, "{body}");
                        assert!(body.contains("\"error\""), "{body}");
                        bad += 1;
                    }
                    // Smuggling probe: conflicting Content-Length headers
                    // (RFC 9110 §8.6) must die as 400, not desync the
                    // framing by honoring either declared length.
                    2 => {
                        let raw = b"POST /v1/impute HTTP/1.1\r\nHost: e2e\r\n\
                                    Content-Length: 4\r\nContent-Length: 30\r\n\
                                    Connection: close\r\n\r\nbodyGET /x HTTP/1.1\r\n\r\n";
                        let (status, _) = request(addr, raw);
                        assert_eq!(status, 400);
                        bad += 1;
                    }
                    // Oversized: declared Content-Length over the limit is
                    // refused before the body is read.
                    _ => {
                        let raw = b"POST /v1/impute HTTP/1.1\r\nHost: e2e\r\n\
                                    Content-Length: 100000\r\nConnection: close\r\n\r\n";
                        let (status, _) = request(addr, raw);
                        assert_eq!(status, 413);
                        huge += 1;
                    }
                }
            }
            (ok, bad, huge)
        }));
    }
    let mut totals = (0u64, 0u64, 0u64);
    for c in clients {
        let (ok, bad, huge) = c.join().expect("client panicked");
        totals = (totals.0 + ok, totals.1 + bad, totals.2 + huge);
    }
    let (ok, bad, huge) = totals;
    assert_eq!(ok + bad + huge, (CONNS * PER_CONN) as u64);

    let (status, metrics_resp) = request(addr, b"GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n");
    assert_eq!(status, 200);
    // The /metrics request renders the table before its own 2xx is
    // counted, so the table shows exactly the client tally.
    assert_eq!(metric(&metrics_resp, "http.responses_2xx"), ok);
    assert_eq!(metric(&metrics_resp, "http.responses_4xx"), bad + huge);
    assert_eq!(metric(&metrics_resp, "http.responses_5xx"), 0, "a worker panicked");
    assert_eq!(metric(&metrics_resp, "http.shed"), 0, "queue of 64 must absorb 8 clients");
    assert_eq!(metric(&metrics_resp, "serve.cells_imputed"), ok);

    stop.store(true, Ordering::Relaxed);
    let shed = handle.join().expect("server thread panicked");
    assert_eq!(shed, 0);
    assert_eq!(ctx.metrics.counter("serve.batches").get(), ok);
}

#[test]
fn overload_sheds_with_503_and_accounts_for_it() {
    // One worker, a one-slot queue, and a deliberately slow request body
    // (64 tuples per batch): most of a 16-connection burst must be shed.
    let (addr, ctx, stop, handle) = start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue: 1,
        ..ServeConfig::default()
    });
    let tuples: Vec<String> =
        (0..64).map(|i| format!(r#"["City{:02}", null]"#, i % 25)).collect();
    let body = format!("{{\"tuples\": [{}]}}", tuples.join(","));

    const CONNS: usize = 16;
    let mut clients = Vec::new();
    for _ in 0..CONNS {
        let body = body.clone();
        clients.push(std::thread::spawn(move || {
            let (status, text) = request(addr, &post_impute(&body, ""));
            match status {
                200 => (1u64, 0u64),
                503 => {
                    assert!(
                        text.to_ascii_lowercase().contains("retry-after:"),
                        "503 without Retry-After: {text}"
                    );
                    (0, 1)
                }
                other => panic!("unexpected status {other}: {text}"),
            }
        }));
    }
    let mut served = 0u64;
    let mut shed_seen = 0u64;
    for c in clients {
        let (ok, shed) = c.join().expect("client panicked");
        served += ok;
        shed_seen += shed;
    }
    assert_eq!(served + shed_seen, CONNS as u64);
    assert!(shed_seen > 0, "burst was fully absorbed; shrink the queue or slow the body");

    stop.store(true, Ordering::Relaxed);
    let shed_counted = handle.join().expect("server thread panicked");
    assert_eq!(shed_counted, shed_seen, "Server::run disagrees with clients about shed count");
    assert_eq!(ctx.metrics.counter("http.shed").get(), shed_seen);
    assert_eq!(ctx.metrics.counter("http.responses_2xx").get(), served);
    assert_eq!(ctx.metrics.counter("http.responses_5xx").get(), 0);
    // Shed responses are written at the accept loop, not routed: the
    // request counter only saw the served ones.
    assert_eq!(ctx.metrics.counter("http.requests").get(), served);
}

#[test]
fn healthz_reports_state_and_seq() {
    let (addr, ctx, stop, handle) = start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        ..ServeConfig::default()
    });
    let (status, body) = request(addr, b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
    assert_eq!(status, 200);
    assert!(body.contains("\"status\":\"ok\""), "{body}");
    assert!(body.contains("\"state\":\"ok\""), "{body}");
    assert!(body.contains("\"seq\":0"), "{body}");

    // A model served without --wal refuses ingest with 503 + Retry-After.
    let ingest_body = r#"{"tuples": [["City07", null]]}"#;
    let raw = format!(
        "POST /v1/ingest HTTP/1.1\r\nHost: e2e\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{ingest_body}",
        ingest_body.len()
    );
    let (status, body) = request(addr, raw.as_bytes());
    assert_eq!(status, 503, "{body}");
    assert!(body.to_ascii_lowercase().contains("retry-after:"), "{body}");

    stop.store(true, Ordering::Relaxed);
    handle.join().unwrap();
    drop(ctx);
}

/// Slow-loris clients: connections that trickle a request and then
/// stall must be answered with `408` within the read deadline and
/// counted, while a healthy client on the same pool is unaffected.
#[test]
fn stalled_connections_get_408_without_starving_the_pool() {
    let (addr, ctx, stop, handle) = start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 4,
        read_timeout_secs: 1,
        ..ServeConfig::default()
    });

    const LORIS: usize = 3;
    let mut clients = Vec::new();
    for _ in 0..LORIS {
        clients.push(std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream
                .set_read_timeout(Some(std::time::Duration::from_secs(30)))
                .unwrap();
            // A plausible prefix, then silence.
            stream.write_all(b"POST /v1/impute HTTP/1.1\r\nHost: loris\r\nConte").unwrap();
            let mut reader = BufReader::new(stream);
            let mut status_line = String::new();
            reader.read_line(&mut status_line).unwrap();
            assert!(
                status_line.starts_with("HTTP/1.1 408 "),
                "stalled client expected 408, got {status_line:?}"
            );
        }));
    }
    // A healthy request while the stalls are pending.
    let (status, body) = request(addr, &post_impute(r#"{"tuples": [["City07", null]]}"#, ""));
    assert_eq!(status, 200, "{body}");
    for c in clients {
        c.join().expect("loris client panicked");
    }
    assert_eq!(ctx.metrics.counter("http.timeouts").get(), LORIS as u64);

    stop.store(true, Ordering::Relaxed);
    handle.join().unwrap();
}

#[test]
fn graceful_shutdown_drains_inflight_requests() {
    let (addr, _ctx, stop, handle) = start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        ..ServeConfig::default()
    });
    // Park a slow request, then request shutdown while it is in flight.
    let tuples: Vec<String> = (0..64).map(|i| format!(r#"["City{:02}", null]"#, i % 25)).collect();
    let body = format!("{{\"tuples\": [{}]}}", tuples.join(","));
    let slow = std::thread::spawn(move || request(addr, &post_impute(&body, "")));
    std::thread::sleep(std::time::Duration::from_millis(30));
    stop.store(true, Ordering::Relaxed);
    handle.join().expect("server thread panicked");
    let (status, text) = slow.join().expect("in-flight client");
    assert_eq!(status, 200, "in-flight request was dropped by shutdown: {text}");
}

/// Pulls the status off an `access` log line, if it is one.
fn access_status(line: &str) -> Option<u64> {
    if !line.contains("\"kind\":\"access\"") {
        return None;
    }
    let rest = line.split("\"status\":").nth(1)?;
    rest.chars().take_while(char::is_ascii_digit).collect::<String>().parse().ok()
}

/// The flight-recorder reconciliation: under concurrent mixed traffic —
/// slow valid bodies through a deliberately tiny queue (forcing sheds),
/// malformed JSON, and oversized declared lengths — every response the
/// clients saw is accounted for. Each non-shed response has exactly one
/// schema-valid `access` line whose status class matches the `/metrics`
/// counters, and each accept-loop shed has a `shed` server event; no
/// request is double-counted and none goes missing.
#[test]
fn access_log_reconciles_with_metrics_under_mixed_traffic() {
    let dir = std::env::temp_dir().join(format!("renuver-e2e-flight-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let log_path = dir.join("events.jsonl");
    let (addr, ctx, stop, handle) = start_flight(
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            queue: 1,
            max_body: 4096,
            ..ServeConfig::default()
        },
        FlightOptions {
            log: Some(EventLog::create(&log_path).unwrap()),
            slow_threshold_ms: 0,
            ..FlightOptions::default()
        },
    );

    // 64-tuple bodies keep the single worker busy; a burst of them plus
    // fast malformed/oversized probes overflows the one-slot queue.
    let tuples: Vec<String> = (0..64).map(|i| format!(r#"["City{:02}", null]"#, i % 25)).collect();
    let slow_body = format!("{{\"tuples\": [{}]}}", tuples.join(","));
    const CONNS: usize = 16;
    let mut clients = Vec::new();
    for c in 0..CONNS {
        let slow_body = slow_body.clone();
        clients.push(std::thread::spawn(move || {
            let raw = match c % 2 {
                // Half the burst: slow valid bodies.
                0 => post_impute(&slow_body, ""),
                // The rest alternates malformed JSON and oversized
                // declared lengths (a protocol-level rejection that
                // never reaches the router).
                _ if c % 4 == 1 => post_impute("{\"tuples\": [[broken", ""),
                _ => b"POST /v1/impute HTTP/1.1\r\nHost: e2e\r\n\
                       Content-Length: 100000\r\nConnection: close\r\n\r\n"
                    .to_vec(),
            };
            request(addr, &raw).0
        }));
    }
    let mut tally = std::collections::HashMap::<u16, u64>::new();
    for c in clients {
        *tally.entry(c.join().expect("client panicked")).or_insert(0) += 1;
    }
    let count = |s: u16| tally.get(&s).copied().unwrap_or(0);
    assert_eq!(tally.values().sum::<u64>(), CONNS as u64);
    assert!(count(503) > 0, "burst was fully absorbed; shrink the queue or slow the body");

    // An inbound X-Request-Id is echoed on the response.
    let (status, rest) = request(
        addr,
        b"GET /healthz HTTP/1.1\r\nHost: e2e\r\nX-Request-Id: e2e-fixed-id\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, 200);
    assert!(rest.to_ascii_lowercase().contains("x-request-id: e2e-fixed-id"), "{rest}");

    // Prometheus exposition works over the wire and parses line by line.
    let (status, resp) =
        request(addr, b"GET /metrics?format=prometheus HTTP/1.1\r\nConnection: close\r\n\r\n");
    assert_eq!(status, 200);
    let (headers, prom) = resp.split_once("\r\n\r\n").unwrap();
    assert!(
        headers.to_ascii_lowercase().contains("content-type: text/plain; version=0.0.4"),
        "{headers}"
    );
    assert!(prom.contains("# TYPE http_requests counter"), "{prom}");
    assert!(prom.contains("# TYPE serve_latency_impute_2xx histogram"), "{prom}");
    for line in prom.lines().filter(|l| !l.is_empty()) {
        if line.starts_with("# ") {
            continue;
        }
        let (name, value) = line.rsplit_once(' ').unwrap_or_else(|| panic!("bad line {line:?}"));
        assert!(value.chars().all(|c| c.is_ascii_digit()), "bad sample value: {line:?}");
        let bare = name.split('{').next().unwrap();
        assert!(
            !bare.is_empty() && bare.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad metric name: {line:?}"
        );
    }

    // The slow ring kept the burst (threshold 0: everything qualifies).
    let (status, resp) =
        request(addr, b"GET /v1/debug/requests HTTP/1.1\r\nConnection: close\r\n\r\n");
    assert_eq!(status, 200);
    assert!(resp.contains("\"enabled\":true"), "{resp}");
    assert!(resp.contains("\"endpoint\":\"impute\""), "{resp}");

    stop.store(true, Ordering::Relaxed);
    let shed_counted = handle.join().expect("server thread panicked");
    assert_eq!(shed_counted, count(503), "accept loop disagrees with clients about sheds");

    // Every line of the log validates against the closed schema.
    let text = std::fs::read_to_string(&log_path).unwrap();
    renuver::obs::schema::validate_trace(&text)
        .unwrap_or_else(|(line, why)| panic!("log line {line} invalid: {why}"));

    // Reconciliation: access lines per status class match the counters
    // exactly, which in turn match what the clients saw (the three
    // sequential probes above add three 2xx on both sides).
    let class = |lo: u64, hi: u64| {
        text.lines().filter_map(access_status).filter(|s| (lo..=hi).contains(s)).count() as u64
    };
    assert_eq!(class(200, 299), ctx.metrics.counter("http.responses_2xx").get());
    assert_eq!(class(400, 499), ctx.metrics.counter("http.responses_4xx").get());
    assert_eq!(class(500, 599), ctx.metrics.counter("http.responses_5xx").get());
    assert_eq!(class(200, 299), count(200) + 3);
    assert_eq!(class(400, 499), count(400) + count(413));
    assert_eq!(class(500, 599), 0, "sheds are not access lines");

    // Sheds: one server_event line each, agreeing with both counters.
    let shed_lines = text
        .lines()
        .filter(|l| l.contains("\"kind\":\"server_event\"") && l.contains("\"event\":\"shed\""))
        .count() as u64;
    assert_eq!(shed_lines, count(503));
    assert_eq!(ctx.metrics.counter("http.shed").get(), count(503));
    assert_eq!(ctx.metrics.counter("serve.events.shed").get(), count(503));

    // Protocol-level rejections (oversized declared length) are logged
    // under the `error` endpoint label — none are silently dropped.
    let error_lines = text
        .lines()
        .filter(|l| l.contains("\"kind\":\"access\"") && l.contains("\"endpoint\":\"error\""))
        .count() as u64;
    assert_eq!(error_lines, count(413));

    std::fs::remove_dir_all(&dir).ok();
}

/// The recorder-off differential, over real sockets: a server with
/// `--no-flight` answers every request with byte-identical bodies and
/// headers, minus only the `X-Request-Id` echo.
#[test]
fn recorder_off_server_is_byte_identical_on_the_wire() {
    let config = || ServeConfig { addr: "127.0.0.1:0".into(), workers: 2, ..ServeConfig::default() };
    let (addr_on, _ctx_on, stop_on, handle_on) = start_flight(config(), FlightOptions::default());
    let (addr_off, _ctx_off, stop_off, handle_off) =
        start_flight(config(), FlightOptions { enabled: false, ..FlightOptions::default() });

    let requests: Vec<Vec<u8>> = vec![
        post_impute(r#"{"tuples": [["City07", null]]}"#, ""),
        post_impute(r#"{"tuples": [["City07", null], ["Nowhere", null]]}"#, "?explain=1"),
        post_impute("{\"tuples\": [[broken", ""),
        b"GET /v1/model HTTP/1.1\r\nConnection: close\r\n\r\n".to_vec(),
        b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n".to_vec(),
    ];
    for raw in &requests {
        let (status_on, resp_on) = request(addr_on, raw);
        let (status_off, resp_off) = request(addr_off, raw);
        assert_eq!(status_on, status_off);
        let (h_on, b_on) = resp_on.split_once("\r\n\r\n").unwrap();
        let (h_off, b_off) = resp_off.split_once("\r\n\r\n").unwrap();
        assert_eq!(b_on, b_off, "recorder changed a response body");
        assert!(h_on.to_ascii_lowercase().contains("x-request-id:"), "{h_on}");
        assert!(!h_off.to_ascii_lowercase().contains("x-request-id:"), "{h_off}");
        let strip = |h: &str| {
            h.lines()
                .filter(|l| !l.to_ascii_lowercase().starts_with("x-request-id:"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(h_on), strip(h_off), "recorder changed a header beyond the id echo");
    }

    stop_on.store(true, Ordering::Relaxed);
    stop_off.store(true, Ordering::Relaxed);
    handle_on.join().unwrap();
    handle_off.join().unwrap();
}
