//! Offline vendored stand-in for the `rand` crate.
//!
//! The workspace builds without network access, so `rand` is vendored as a
//! minimal shim exposing exactly the surface the repo uses:
//!
//! - [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`]
//! - [`RngExt::random`], [`RngExt::random_range`], [`RngExt::random_bool`]
//! - [`seq::SliceRandom::shuffle`]
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast, high
//! quality for simulation purposes, and fully deterministic for a given
//! seed (the property every dataset generator and injection site relies
//! on). It is NOT the real `rand` stream: values differ from upstream
//! `StdRng`, which is fine because nothing in this repo depends on the
//! upstream bit stream, only on seeded determinism.

use std::ops::Range;

/// Low-level entropy source: 64 random bits per call.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanded via SplitMix64.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from their "standard" distribution
/// (`rng.random::<T>()`): `[0, 1)` for floats, full range for integers.
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges samplable uniformly (`rng.random_range(lo..hi)`).
pub trait SampleRange<T> {
    /// Draws one value from `rng`; panics on an empty range, like upstream.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform value in `0..bound` (`bound > 0`) via the mul-shift reduction.
#[inline]
fn below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

/// Element types uniformly samplable over a range. A single blanket
/// `SampleRange` impl per range shape (mirroring upstream) keeps integer
/// literal inference working, e.g. `v[rng.random_range(0..n)]` → `usize`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform value in `lo..hi`, or `lo..=hi` when `inclusive`.
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! int_uniform_impl {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128 + inclusive as i128) as u64;
                assert!(span > 0, "cannot sample empty range");
                (lo as i128 + below(rng, span) as i128) as $t
            }
        }
    )*};
}

int_uniform_impl!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

impl SampleUniform for f64 {
    #[inline]
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        lo + f32::sample(rng) * (hi - lo)
    }
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_in(rng, lo, hi, true)
    }
}

/// The user-facing sampling methods (rand 0.9+ naming: `random*`).
pub trait RngExt: RngCore {
    /// One value from `T`'s standard distribution.
    #[inline]
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform value from `range`. Panics when the range is empty.
    #[inline]
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (see crate docs: not the
    /// upstream `StdRng` stream, but the same seeded-determinism contract).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{below, RngCore};

    /// Slice shuffling (the `shuffle` subset of upstream `SliceRandom`).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle, deterministic for a given rng state.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0..1000usize), b.random_range(0..1000usize));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same: Vec<usize> = (0..20).map(|_| c.random_range(0..1000)).collect();
        let mut d = StdRng::seed_from_u64(42);
        let diff: Vec<usize> = (0..20).map(|_| d.random_range(0..1000)).collect();
        assert_ne!(same, diff);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(10..20i64);
            assert!((10..20).contains(&v));
            let u = rng.random_range(0..3usize);
            assert!(u < 3);
            let f = rng.random::<f64>();
            assert!((0.0..1.0).contains(&f));
            let x = rng.random_range(-5.0..5.0f64);
            assert!((-5.0..5.0).contains(&x));
        }
    }

    #[test]
    fn bool_probability_rough() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.7)).count();
        assert!((6500..7500).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted); // astronomically unlikely to be identity
    }
}
