//! Offline vendored stand-in for the `criterion` crate.
//!
//! The workspace builds without network access, so `criterion` is vendored
//! as a small wall-clock harness exposing the API subset the benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`] / [`BenchmarkGroup::sample_size`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BenchmarkId`],
//! [`BatchSize`], [`black_box`], and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! No statistics engine: each benchmark is warmed up, auto-calibrated to a
//! per-sample iteration count, sampled `sample_size` times, and reported
//! as `min / median / max` per-iteration wall time on stdout. Substring
//! filtering from the command line works like upstream
//! (`cargo bench -- oracle` runs only ids containing "oracle").

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], like upstream.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How [`Bencher::iter_batched`] amortizes setup; the shim treats every
/// variant as per-batch-of-one (setup excluded from timing either way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: upstream batches many per allocation.
    SmallInput,
    /// Large inputs: upstream runs one per batch.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id with a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", name.into(), param) }
    }

    /// Id carrying only a parameter.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId { id: param.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    calibrated: bool,
    target_sample_time: Duration,
}

impl Bencher {
    fn new(target_sample_time: Duration) -> Self {
        Bencher { iters_per_sample: 1, samples: Vec::new(), calibrated: false, target_sample_time }
    }

    /// Times `routine`, running it enough times per sample to make the
    /// sample measurable.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        if !self.calibrated {
            self.calibrate(|| {
                black_box(routine());
            });
        }
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(routine());
        }
        self.samples.push(start.elapsed() / self.iters_per_sample.max(1) as u32);
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        if !self.calibrated {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            let once = start.elapsed().max(Duration::from_nanos(1));
            self.iters_per_sample = (self.target_sample_time.as_nanos() / once.as_nanos())
                .clamp(1, 1_000_000) as u64;
            self.calibrated = true;
        }
        let inputs: Vec<I> = (0..self.iters_per_sample).map(|_| setup()).collect();
        let start = Instant::now();
        for input in inputs {
            black_box(routine(input));
        }
        self.samples.push(start.elapsed() / self.iters_per_sample.max(1) as u32);
    }

    fn calibrate(&mut self, mut once: impl FnMut()) {
        // Warm up and estimate a single-iteration time.
        let warmup_start = Instant::now();
        let mut runs = 0u64;
        while runs < 3 || (warmup_start.elapsed() < Duration::from_millis(20) && runs < 1_000_000)
        {
            once();
            runs += 1;
        }
        let per_iter = warmup_start.elapsed().max(Duration::from_nanos(1)) / runs.max(1) as u32;
        self.iters_per_sample = (self.target_sample_time.as_nanos()
            / per_iter.as_nanos().max(1))
        .clamp(1, 1_000_000) as u64;
        self.calibrated = true;
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Top-level harness state.
pub struct Criterion {
    filter: Option<String>,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { filter: None, sample_size: 20 }
    }
}

impl Criterion {
    /// Applies command-line arguments: flags are ignored, the first free
    /// argument becomes a substring filter on benchmark ids.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            if arg.starts_with("--") {
                // Flags with a value we must consume to avoid treating the
                // value as a filter.
                if matches!(
                    arg.as_str(),
                    "--save-baseline" | "--baseline" | "--load-baseline" | "--measurement-time"
                        | "--warm-up-time" | "--sample-size"
                ) {
                    let _ = args.next();
                }
                continue;
            }
            if self.filter.is_none() {
                self.filter = Some(arg);
            }
        }
        self
    }

    /// Default number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: None }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let sample_size = self.sample_size;
        run_benchmark(self, None, id.into(), sample_size, f);
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Upstream knob; accepted and ignored (the shim auto-calibrates).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let name = self.name.clone();
        run_benchmark(self.criterion, Some(&name), id.into(), samples, f);
    }

    /// Runs one benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// Ends the group (a no-op in the shim; exists for API parity).
    pub fn finish(self) {}
}

fn run_benchmark(
    criterion: &Criterion,
    group: Option<&str>,
    id: BenchmarkId,
    samples: usize,
    mut f: impl FnMut(&mut Bencher),
) {
    let full_id = match group {
        Some(g) => format!("{g}/{}", id.id),
        None => id.id,
    };
    if let Some(filter) = &criterion.filter {
        if !full_id.contains(filter.as_str()) {
            return;
        }
    }
    let mut bencher = Bencher::new(Duration::from_millis(25));
    for _ in 0..samples {
        f(&mut bencher);
    }
    let mut sorted = bencher.samples.clone();
    sorted.sort_unstable();
    if sorted.is_empty() {
        println!("{full_id:<48} (no samples — closure never called iter)");
        return;
    }
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let max = sorted[sorted.len() - 1];
    println!(
        "{full_id:<48} time: [{} {} {}]",
        format_duration(min),
        format_duration(median),
        format_duration(max)
    );
}

/// Declares a benchmark group function, like upstream.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_samples() {
        let mut c = Criterion::default();
        c.sample_size(3);
        // Smoke test: must not panic and must run the closure.
        let mut runs = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2);
            g.bench_function("f", |b| {
                b.iter(|| {
                    runs += 1;
                })
            });
            g.finish();
        }
        assert!(runs > 0);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("batched");
        g.sample_size(2);
        g.bench_function("routine", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::LargeInput)
        });
        g.finish();
    }

    #[test]
    fn benchmark_id_rendering() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
