//! Offline vendored stand-in for the `rayon` crate.
//!
//! This workspace builds without network access, so `rayon` is vendored as
//! an API-compatible shim covering the subset the imputation engine uses:
//!
//! - `slice.par_iter()` / `(0..n).into_par_iter()` → `.map(f)` →
//!   `.collect::<Vec<_>>()` or `.for_each(f)`
//! - [`ThreadPoolBuilder`] / [`ThreadPool::install`] /
//!   [`current_num_threads`]
//!
//! ## Execution model and determinism
//!
//! Unlike real rayon there is no persistent work-stealing pool: each
//! parallel call forks scoped `std::thread` workers that pull fixed-size
//! index chunks from an atomic cursor and produce `(chunk_start, results)`
//! pairs, which are merged **in index order** after the join. Output is
//! therefore bit-for-bit identical to the sequential loop regardless of
//! thread count or scheduling — the property the RENUVER determinism tests
//! assert. With an effective thread count of 1 (or a small input, see
//! [`MIN_PAR_LEN`]) no threads are spawned at all and the exact sequential
//! path runs.
//!
//! Worker threads run their chunk closures with an effective thread count
//! of 1, so accidentally nested parallel calls degrade to sequential
//! execution instead of oversubscribing the machine.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Process-wide count of chunks dispatched to worker threads by the
/// parallel path (sequential fallbacks dispatch none). Not part of real
/// rayon's API — the observability layer reads the delta across a run to
/// report how finely the scheduler actually sliced the work.
static CHUNKS_DISPATCHED: AtomicU64 = AtomicU64::new(0);

/// Total chunks dispatched by parallel calls since process start.
/// Monotonic; callers interested in one run take a before/after delta.
pub fn chunks_dispatched() -> u64 {
    CHUNKS_DISPATCHED.load(Ordering::Relaxed)
}

/// Inputs shorter than this run sequentially even when a pool is active:
/// thread spawn/join overhead (tens of microseconds per call with scoped
/// threads) dwarfs the work for small scans, and the tests' tiny relations
/// should not pay it. Does not affect results, only scheduling.
pub const MIN_PAR_LEN: usize = 128;

thread_local! {
    /// Effective thread count installed by [`ThreadPool::install`];
    /// 0 = not inside a pool → use all available cores.
    static CURRENT_THREADS: Cell<usize> = const { Cell::new(0) };
}

fn available_cores() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// The thread count parallel calls on this thread will use: the innermost
/// [`ThreadPool::install`]'s count, or the number of available cores.
pub fn current_num_threads() -> usize {
    let cur = CURRENT_THREADS.with(|c| c.get());
    if cur > 0 {
        cur
    } else {
        available_cores()
    }
}

/// Error from [`ThreadPoolBuilder::build`]. The shim never fails to build;
/// the type exists for API compatibility.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`], mirroring rayon's.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with the default (all cores) thread count.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the thread count; `0` (the default) means all available cores.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool. Infallible in the shim.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 { available_cores() } else { self.num_threads };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A "pool" in the shim is a scoped thread-count setting: parallel calls
/// made while [`ThreadPool::install`] is on the stack use its count.
/// Workers are forked per call, not kept alive.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Runs `f` with this pool's thread count installed for every parallel
    /// call `f` makes (directly or transitively) on the current thread.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        CURRENT_THREADS.with(|c| {
            let prev = c.replace(self.num_threads);
            // Restore on unwind too, so a panicking closure does not leak
            // the override into unrelated later work on this thread.
            struct Restore<'a>(&'a Cell<usize>, usize);
            impl Drop for Restore<'_> {
                fn drop(&mut self) {
                    self.0.set(self.1);
                }
            }
            let _restore = Restore(c, prev);
            f()
        })
    }
}

/// Ordered parallel map over `0..len`: the workhorse behind every iterator
/// in the shim. Returns exactly `(0..len).map(f).collect()` for any thread
/// count; runs sequentially when `threads <= 1` or `len < MIN_PAR_LEN`.
pub fn par_map_indexed<R, F>(len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    par_map_indexed_with_min(len, MIN_PAR_LEN, f)
}

/// [`par_map_indexed`] with an explicit sequential-fallback length instead
/// of [`MIN_PAR_LEN`] — for coarse-grained work (e.g. discovery lattice
/// tasks) where even a handful of items is worth distributing. The iterator
/// equivalent is [`iter::ParallelIterator::with_min_len`].
pub fn par_map_indexed_with_min<R, F>(len: usize, min_len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = current_num_threads().min(len);
    if threads <= 1 || len < min_len.max(2) {
        return (0..len).map(f).collect();
    }
    // Dynamic chunking: small fixed chunks pulled from an atomic cursor
    // balance skewed per-index costs (e.g. triangular matrix rows) without
    // a work-stealing deque. 8 chunks per thread keeps the tail short.
    let chunk = (len / (threads * 8)).max(1);
    let cursor = AtomicUsize::new(0);
    let parts: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                // Nested parallel calls inside a worker run sequentially.
                CURRENT_THREADS.with(|c| c.set(1));
                let mut local: Vec<(usize, Vec<R>)> = Vec::new();
                loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= len {
                        break;
                    }
                    let end = (start + chunk).min(len);
                    CHUNKS_DISPATCHED.fetch_add(1, Ordering::Relaxed);
                    local.push((start, (start..end).map(&f).collect()));
                }
                parts.lock().unwrap().extend(local);
            });
        }
    });
    let mut parts = parts.into_inner().unwrap();
    parts.sort_unstable_by_key(|(start, _)| *start);
    debug_assert_eq!(parts.iter().map(|(_, v)| v.len()).sum::<usize>(), len);
    let mut out = Vec::with_capacity(len);
    for (_, v) in parts {
        out.extend(v);
    }
    out
}

pub mod iter {
    use std::ops::Range;

    /// An indexed parallel source: a known length plus random access to
    /// each item. All shim iterators (ranges, slices, maps) are indexed,
    /// which is what makes deterministic ordered collection possible.
    pub trait ParallelIterator: Sized + Sync {
        /// The element type.
        type Item: Send;

        /// Number of items.
        fn par_len(&self) -> usize;

        /// The `i`-th item. Must be pure: it may run on any worker thread
        /// and in any order.
        fn par_item(&self, i: usize) -> Self::Item;

        /// Sequential-fallback length this iterator executes with (see
        /// [`crate::MIN_PAR_LEN`]); adapters forward their base's value.
        fn par_min_len(&self) -> usize {
            crate::MIN_PAR_LEN
        }

        /// Lowers the sequential-fallback length, like rayon's
        /// `IndexedParallelIterator::with_min_len`: items are worth
        /// distributing even when there are fewer than [`crate::MIN_PAR_LEN`]
        /// of them. Purely a scheduling knob — results are unchanged.
        fn with_min_len(self, min: usize) -> MinLen<Self> {
            MinLen { base: self, min }
        }

        /// Maps each element through `f` (lazily, like rayon).
        fn map<R, F>(self, f: F) -> Map<Self, F>
        where
            R: Send,
            F: Fn(Self::Item) -> R + Sync,
        {
            Map { base: self, f }
        }

        /// Runs `f` on every element. Effects must be independent; the
        /// visit order across threads is unspecified.
        fn for_each<F>(self, f: F)
        where
            F: Fn(Self::Item) + Sync,
        {
            super::par_map_indexed_with_min(self.par_len(), self.par_min_len(), |i| {
                f(self.par_item(i))
            });
        }

        /// Collects into a `Vec` in index order, identically to the
        /// sequential loop for every thread count.
        fn collect<C>(self) -> C
        where
            C: FromParallelIterator<Self::Item>,
        {
            C::from_par_iter(self)
        }
    }

    /// Collection from a parallel iterator (only `Vec` in the shim).
    pub trait FromParallelIterator<T: Send>: Sized {
        /// Builds the collection, preserving index order.
        fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self;
    }

    impl<T: Send> FromParallelIterator<T> for Vec<T> {
        fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self {
            super::par_map_indexed_with_min(iter.par_len(), iter.par_min_len(), |i| {
                iter.par_item(i)
            })
        }
    }

    /// Lazy map adapter.
    pub struct Map<I, F> {
        base: I,
        f: F,
    }

    impl<I, R, F> ParallelIterator for Map<I, F>
    where
        I: ParallelIterator,
        R: Send,
        F: Fn(I::Item) -> R + Sync,
    {
        type Item = R;

        fn par_len(&self) -> usize {
            self.base.par_len()
        }

        fn par_item(&self, i: usize) -> R {
            (self.f)(self.base.par_item(i))
        }

        fn par_min_len(&self) -> usize {
            self.base.par_min_len()
        }
    }

    /// Adapter lowering the sequential-fallback length
    /// ([`ParallelIterator::with_min_len`]).
    pub struct MinLen<I> {
        base: I,
        min: usize,
    }

    impl<I: ParallelIterator> ParallelIterator for MinLen<I> {
        type Item = I::Item;

        fn par_len(&self) -> usize {
            self.base.par_len()
        }

        fn par_item(&self, i: usize) -> Self::Item {
            self.base.par_item(i)
        }

        fn par_min_len(&self) -> usize {
            self.min
        }
    }

    /// Parallel iterator over a `usize` range.
    pub struct ParRange {
        start: usize,
        end: usize,
    }

    impl ParallelIterator for ParRange {
        type Item = usize;

        fn par_len(&self) -> usize {
            self.end - self.start
        }

        fn par_item(&self, i: usize) -> usize {
            self.start + i
        }
    }

    /// Parallel iterator over slice references.
    pub struct ParSlice<'a, T> {
        slice: &'a [T],
    }

    impl<'a, T: Sync> ParallelIterator for ParSlice<'a, T> {
        type Item = &'a T;

        fn par_len(&self) -> usize {
            self.slice.len()
        }

        fn par_item(&self, i: usize) -> &'a T {
            &self.slice[i]
        }
    }

    /// By-value conversion into a parallel iterator.
    pub trait IntoParallelIterator {
        /// Element type.
        type Item: Send;
        /// Concrete iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Converts `self`.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl IntoParallelIterator for Range<usize> {
        type Item = usize;
        type Iter = ParRange;

        fn into_par_iter(self) -> ParRange {
            ParRange { start: self.start.min(self.end), end: self.end }
        }
    }

    /// By-reference conversion (`.par_iter()` on slices and `Vec`s).
    pub trait IntoParallelRefIterator<'a> {
        /// Element type (a reference).
        type Item: Send;
        /// Concrete iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Borrows `self` as a parallel iterator.
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;
        type Iter = ParSlice<'a, T>;

        fn par_iter(&'a self) -> ParSlice<'a, T> {
            ParSlice { slice: self }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;
        type Iter = ParSlice<'a, T>;

        fn par_iter(&'a self) -> ParSlice<'a, T> {
            ParSlice { slice: self }
        }
    }
}

pub mod prelude {
    pub use crate::iter::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::{current_num_threads, par_map_indexed, ThreadPoolBuilder, MIN_PAR_LEN};

    #[test]
    fn ordered_collect_matches_sequential_for_any_thread_count() {
        let n = MIN_PAR_LEN * 7 + 13; // force the parallel path, ragged tail
        let expect: Vec<usize> = (0..n).map(|i| i * i).collect();
        for threads in [1, 2, 3, 8] {
            let pool = ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            let got: Vec<usize> =
                pool.install(|| (0..n).into_par_iter().map(|i| i * i).collect());
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn slice_par_iter_preserves_order() {
        let data: Vec<i64> = (0..(MIN_PAR_LEN as i64 * 4)).rev().collect();
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let doubled: Vec<i64> = pool.install(|| data.par_iter().map(|x| x * 2).collect());
        assert_eq!(doubled, data.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn install_scopes_thread_count_and_restores() {
        let outside = current_num_threads();
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        pool.install(|| assert_eq!(current_num_threads(), 3));
        assert_eq!(current_num_threads(), outside);
    }

    #[test]
    fn install_restores_after_panic() {
        let outside = current_num_threads();
        let pool = ThreadPoolBuilder::new().num_threads(5).build().unwrap();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| -> () { panic!("boom") })
        }));
        assert!(r.is_err());
        assert_eq!(current_num_threads(), outside);
    }

    #[test]
    fn nested_parallel_calls_degrade_to_sequential() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let nested: Vec<usize> =
            pool.install(|| par_map_indexed(MIN_PAR_LEN * 2, |_| current_num_threads()));
        // Inside workers the effective count is 1.
        assert!(nested.iter().all(|&n| n == 1));
    }

    #[test]
    fn small_inputs_run_sequentially() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let got: Vec<usize> = pool.install(|| (0..10).into_par_iter().map(|i| i).collect());
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn builder_zero_means_all_cores() {
        let pool = ThreadPoolBuilder::new().num_threads(0).build().unwrap();
        assert!(pool.current_num_threads() >= 1);
    }

    #[test]
    fn chunk_counter_moves_only_on_the_parallel_path() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let before = super::chunks_dispatched();
        let _: Vec<usize> = pool.install(|| par_map_indexed(MIN_PAR_LEN * 4, |i| i));
        assert_eq!(super::chunks_dispatched(), before, "sequential run dispatched chunks");
        // Multi-threaded runs dispatch at least one chunk per worker that
        // found work (other tests may run concurrently, so only a lower
        // bound is asserted).
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let before = super::chunks_dispatched();
        let _: Vec<usize> = pool.install(|| par_map_indexed(MIN_PAR_LEN * 4, |i| i));
        assert!(super::chunks_dispatched() > before);
    }
}
