//! Offline vendored stand-in for the `crossbeam` crate.
//!
//! This workspace builds in environments without network access to a
//! crates.io mirror, so external dependencies are vendored as minimal
//! API-compatible shims. Only the surface the workspace actually uses is
//! provided: [`thread::scope`] / [`thread::Scope::spawn`] /
//! [`thread::ScopedJoinHandle::join`], implemented directly on top of
//! `std::thread::scope` (stable since Rust 1.63).

pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// The result of joining a scoped thread (the payload is the panic
    /// value when the thread panicked).
    pub type Result<T> = std::result::Result<T, Box<dyn std::any::Any + Send + 'static>>;

    /// A scope handed to the [`scope`] closure; spawns threads that may
    /// borrow from the enclosing stack frame.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a thread spawned inside a [`Scope`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result (or the
        /// panic payload).
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope again so
        /// nested spawns are possible, mirroring crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle { inner: inner.spawn(move || f(&Scope { inner })) }
        }
    }

    /// Creates a scope for spawning borrowing threads. Returns `Err` with
    /// the panic payload when a spawned thread panicked (matching
    /// crossbeam's contract of not propagating child panics as-is).
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scope_joins_and_returns() {
        let data = [1, 2, 3];
        let sum = thread::scope(|scope| {
            let handles: Vec<_> =
                data.iter().map(|&x| scope.spawn(move |_| x * 2)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<i32>()
        })
        .unwrap();
        assert_eq!(sum, 12);
    }

    #[test]
    fn child_panic_surfaces_as_err() {
        let r = thread::scope(|scope| {
            let h = scope.spawn(|_| -> () { panic!("boom") });
            h.join().unwrap(); // re-panics on the parent
        });
        assert!(r.is_err());
    }
}
