//! Offline vendored stand-in for the `proptest` crate.
//!
//! The workspace builds without network access, so `proptest` is vendored
//! as a generator-only property testing engine covering the API subset the
//! repo's tests use:
//!
//! - [`Strategy`] with `prop_map` / `prop_flat_map` / `prop_filter` /
//!   `prop_filter_map`, plus strategies for string regex patterns
//!   (`".{0,12}"`), numeric ranges, tuples, [`Just`],
//!   [`collection::vec`], [`prop::char::range`], and [`any`]
//! - the [`proptest!`], [`prop_oneof!`], [`prop_assert!`] and
//!   [`prop_assert_eq!`] macros and [`ProptestConfig::with_cases`]
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! case number and seed, but is not minimized), and case generation is
//! deterministic per test name rather than seeded from OS entropy — the
//! same cases run on every invocation, which makes failures reproducible
//! without a regression file (`.proptest-regressions` files are ignored).

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::rc::Rc;

// ------------------------------------------------------------------ rng

/// Deterministic 64-bit generator (SplitMix64) driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds a generator from an explicit seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed ^ 0x9E3779B97F4A7C15 }
    }

    /// Next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound > 0`).
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ------------------------------------------------------------- strategy

/// A recipe producing random values of type [`Strategy::Value`].
///
/// Unlike upstream there is no value tree / shrinking: a strategy is just
/// a deterministic function of an rng state.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Type-erases this strategy (the shim's `BoxedStrategy`).
    fn into_arb(self) -> Arb<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        Arb::new(move |rng| self.generate(rng))
    }

    /// Same as [`Strategy::into_arb`]; upstream name.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        self.into_arb()
    }

    /// Maps produced values through `f`.
    fn prop_map<O, F>(self, f: F) -> Arb<O>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        O: 'static,
        F: Fn(Self::Value) -> O + 'static,
    {
        Arb::new(move |rng| f(self.generate(rng)))
    }

    /// Builds a second strategy from each produced value and draws from it.
    fn prop_flat_map<S, F>(self, f: F) -> Arb<S::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy + 'static,
        S::Value: 'static,
        F: Fn(Self::Value) -> S + 'static,
    {
        Arb::new(move |rng| f(self.generate(rng)).generate(rng))
    }

    /// Keeps only values for which `pred` holds, retrying otherwise.
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Arb<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(&Self::Value) -> bool + 'static,
    {
        self.prop_filter_map(reason, move |v| if pred(&v) { Some(v) } else { None })
    }

    /// Maps values through `f`, retrying whenever `f` returns `None`.
    fn prop_filter_map<O, F>(self, reason: &'static str, f: F) -> Arb<O>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        O: 'static,
        F: Fn(Self::Value) -> Option<O> + 'static,
    {
        Arb::new(move |rng| {
            for _ in 0..10_000 {
                if let Some(out) = f(self.generate(rng)) {
                    return out;
                }
            }
            panic!("prop_filter_map rejected 10000 candidates in a row: {reason}");
        })
    }
}

/// A type-erased, cheaply clonable strategy (every combinator returns one).
pub struct Arb<T> {
    gen: Rc<dyn Fn(&mut TestRng) -> T>,
}

/// Upstream name for a type-erased strategy.
pub type BoxedStrategy<T> = Arb<T>;

impl<T> Arb<T> {
    /// Wraps a generation function.
    pub fn new(gen: impl Fn(&mut TestRng) -> T + 'static) -> Self {
        Arb { gen: Rc::new(gen) }
    }
}

impl<T> Clone for Arb<T> {
    fn clone(&self) -> Self {
        Arb { gen: Rc::clone(&self.gen) }
    }
}

impl<T> Strategy for Arb<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// Strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy (the [`any`] entry point).
pub trait Arbitrary: Sized + 'static {
    /// Draws one arbitrary value.
    fn arbitrary_with(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary_with(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary_with(rng: &mut TestRng) -> Self {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u64 {
    fn arbitrary_with(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for i64 {
    fn arbitrary_with(rng: &mut TestRng) -> Self {
        rng.next_u64() as i64
    }
}

/// Canonical strategy for `T` (`any::<bool>()`).
pub fn any<T: Arbitrary>() -> Arb<T> {
    Arb::new(|rng| T::arbitrary_with(rng))
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<char> {
    type Value = char;

    fn generate(&self, rng: &mut TestRng) -> char {
        assert!(self.start < self.end, "cannot sample empty range");
        let lo = self.start as u32;
        let hi = self.end as u32;
        // Re-draw on surrogate hits; ranges used in practice are ASCII.
        loop {
            if let Some(c) = char::from_u32(lo + rng.below((hi - lo) as u64) as u32) {
                return c;
            }
        }
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Weighted choice between type-erased arms — built by [`prop_oneof!`].
pub fn union_of<T: 'static>(arms: Vec<(u32, Arb<T>)>) -> Arb<T> {
    assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
    let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
    assert!(total > 0, "prop_oneof! weights sum to zero");
    Arb::new(move |rng| {
        let mut pick = rng.below(total);
        for (weight, arm) in &arms {
            if pick < *weight as u64 {
                return arm.generate(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("weighted pick out of range");
    })
}

pub mod collection {
    use super::{Arb, Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for vectors whose length is drawn from `size`.
    pub fn vec<S>(element: S, size: Range<usize>) -> Arb<Vec<S::Value>>
    where
        S: Strategy + 'static,
        S::Value: 'static,
    {
        assert!(size.start < size.end, "cannot sample empty size range");
        Arb::new(move |rng: &mut TestRng| {
            let span = (size.end - size.start) as u64;
            let len = size.start + rng.below(span) as usize;
            (0..len).map(|_| element.generate(rng)).collect()
        })
    }
}

pub mod prop {
    pub use crate::collection;

    pub mod char {
        use crate::Arb;

        /// Strategy for chars in `lo..=hi` (inclusive, like upstream).
        pub fn range(lo: char, hi: char) -> Arb<char> {
            assert!(lo <= hi, "cannot sample empty char range");
            let (lo, hi) = (lo as u32, hi as u32);
            Arb::new(move |rng| loop {
                if let Some(c) = char::from_u32(lo + rng.below((hi - lo + 1) as u64) as u32) {
                    return c;
                }
            })
        }
    }
}

// ------------------------------------------- regex pattern strategies

/// Cap for unbounded quantifiers (`*`, `+`, `{m,}`) during generation.
const MAX_UNBOUNDED_REP: u32 = 8;

#[derive(Debug, Clone)]
enum Node {
    Lit(char),
    Any,
    Class { neg: bool, ranges: Vec<(char, char)> },
    /// Alternation of sequences (`(a|bc|d)` and the top level).
    Alt(Vec<Vec<Node>>),
    Repeat { node: Box<Node>, min: u32, max: u32 },
}

struct PatternParser {
    chars: Vec<char>,
    pos: usize,
}

impl PatternParser {
    fn parse(pattern: &str) -> Node {
        let mut p = PatternParser { chars: pattern.chars().collect(), pos: 0 };
        let node = p.alternation();
        assert!(
            p.pos == p.chars.len(),
            "unsupported regex strategy pattern {pattern:?}: trailing {:?}",
            &p.chars[p.pos..]
        );
        node
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> char {
        let c = self.chars[self.pos];
        self.pos += 1;
        c
    }

    fn alternation(&mut self) -> Node {
        let mut branches = vec![self.sequence()];
        while self.peek() == Some('|') {
            self.bump();
            branches.push(self.sequence());
        }
        Node::Alt(branches)
    }

    fn sequence(&mut self) -> Vec<Node> {
        let mut nodes = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            let atom = self.atom();
            nodes.push(self.quantified(atom));
        }
        nodes
    }

    fn atom(&mut self) -> Node {
        match self.bump() {
            '(' => {
                let inner = self.alternation();
                assert_eq!(self.bump(), ')', "unclosed group in regex strategy pattern");
                inner
            }
            '[' => self.class(),
            '.' => Node::Any,
            '\\' => Node::Lit(match self.bump() {
                'n' => '\n',
                't' => '\t',
                'r' => '\r',
                other => other,
            }),
            lit => Node::Lit(lit),
        }
    }

    fn class(&mut self) -> Node {
        let neg = if self.peek() == Some('^') {
            self.bump();
            true
        } else {
            false
        };
        let mut ranges = Vec::new();
        loop {
            let c = self.bump();
            if c == ']' {
                break;
            }
            let lo = if c == '\\' { self.bump() } else { c };
            if self.peek() == Some('-') && self.chars.get(self.pos + 1) != Some(&']') {
                self.bump();
                let hi = self.bump();
                assert!(lo <= hi, "inverted class range in regex strategy pattern");
                ranges.push((lo, hi));
            } else {
                ranges.push((lo, lo));
            }
        }
        assert!(!ranges.is_empty(), "empty class in regex strategy pattern");
        Node::Class { neg, ranges }
    }

    fn quantified(&mut self, atom: Node) -> Node {
        let (min, max) = match self.peek() {
            Some('*') => (0, MAX_UNBOUNDED_REP),
            Some('+') => (1, 1 + MAX_UNBOUNDED_REP),
            Some('?') => (0, 1),
            Some('{') => {
                self.bump();
                let min = self.number();
                let max = match self.bump() {
                    '}' => return Node::Repeat { node: Box::new(atom), min, max: min },
                    ',' => {
                        if self.peek() == Some('}') {
                            min + MAX_UNBOUNDED_REP
                        } else {
                            self.number()
                        }
                    }
                    other => panic!("bad quantifier char {other:?} in regex strategy pattern"),
                };
                assert_eq!(self.bump(), '}', "unclosed quantifier in regex strategy pattern");
                assert!(min <= max, "inverted quantifier in regex strategy pattern");
                return Node::Repeat { node: Box::new(atom), min, max };
            }
            _ => return atom,
        };
        self.bump();
        Node::Repeat { node: Box::new(atom), min, max }
    }

    fn number(&mut self) -> u32 {
        let mut n = 0u32;
        let mut any = false;
        while let Some(c) = self.peek() {
            if let Some(d) = c.to_digit(10) {
                n = n * 10 + d;
                any = true;
                self.bump();
            } else {
                break;
            }
        }
        assert!(any, "expected number in regex strategy quantifier");
        n
    }
}

/// Char for `.`: mostly printable ASCII, some format-hostile specials
/// (quotes, separators, whitespace), some non-ASCII — never a newline,
/// matching the regex meaning of `.`.
fn sample_any_char(rng: &mut TestRng) -> char {
    match rng.below(10) {
        0..=6 => char::from_u32(0x20 + rng.below(0x5F) as u32).unwrap(),
        7 => ['\t', '"', '\'', ',', ';', '\\'][rng.below(6) as usize],
        _ => {
            // BMP below the surrogate block: always a valid char.
            char::from_u32(0x80 + rng.below(0xD800 - 0x80) as u32).unwrap()
        }
    }
}

fn generate_node(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Lit(c) => out.push(*c),
        Node::Any => out.push(sample_any_char(rng)),
        Node::Class { neg, ranges } => {
            if *neg {
                for _ in 0..10_000 {
                    let c = char::from_u32(0x20 + rng.below(0x5F) as u32).unwrap();
                    if !ranges.iter().any(|(lo, hi)| (*lo..=*hi).contains(&c)) {
                        out.push(c);
                        return;
                    }
                }
                panic!("negated class covers all sampled chars");
            }
            let total: u64 = ranges.iter().map(|(lo, hi)| *hi as u64 - *lo as u64 + 1).sum();
            let mut pick = rng.below(total);
            for (lo, hi) in ranges {
                let size = *hi as u64 - *lo as u64 + 1;
                if pick < size {
                    // Ranges in practice are ASCII; skip surrogate gaps defensively.
                    if let Some(c) = char::from_u32(*lo as u32 + pick as u32) {
                        out.push(c);
                    } else {
                        out.push(*lo);
                    }
                    return;
                }
                pick -= size;
            }
            unreachable!("class pick out of range");
        }
        Node::Alt(branches) => {
            let branch = &branches[rng.below(branches.len() as u64) as usize];
            for n in branch {
                generate_node(n, rng, out);
            }
        }
        Node::Repeat { node, min, max } => {
            let reps = min + rng.below((*max - *min + 1) as u64) as u32;
            for _ in 0..reps {
                generate_node(node, rng, out);
            }
        }
    }
}

/// String patterns are strategies producing matching strings
/// (`".{0,12}"`, `"[a-d]{1,4}"`, groups, alternation, quantifiers).
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let node = PatternParser::parse(self);
        let mut out = String::new();
        generate_node(&node, rng, &mut out);
        out
    }
}

// --------------------------------------------------------------- runner

/// Per-`proptest!`-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test function.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Honor upstream proptest's `PROPTEST_CASES` environment knob so
        // CI can pin a small, reproducible case count without editing
        // test sources. An explicit `with_cases` still wins.
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// FNV-1a over the test name: a stable per-test base seed.
fn name_seed(name: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Runs `case` for each configured case, reporting the failing case
/// number and seed on panic. Called by the [`proptest!`] expansion.
pub fn run_proptest(config: &ProptestConfig, name: &str, case: impl Fn(&mut TestRng)) {
    let base = name_seed(name);
    for i in 0..config.cases as u64 {
        let seed = base.wrapping_add(i.wrapping_mul(0x9E3779B97F4A7C15));
        let mut rng = TestRng::from_seed(seed);
        if let Err(panic) = catch_unwind(AssertUnwindSafe(|| case(&mut rng))) {
            eprintln!(
                "proptest {name}: failed at case {} of {} (seed {seed:#018x})",
                i + 1,
                config.cases
            );
            resume_unwind(panic);
        }
    }
}

/// Defines property test functions whose arguments are drawn from
/// strategies: `#[test] fn name(x in strat, ...) { body }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands one test fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_proptest(&$cfg, stringify!($name), |__proptest_rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                $body
            });
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Weighted (`3 => strat`) or uniform choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::union_of(vec![
            $(($weight as u32, $crate::Strategy::into_arb($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::union_of(vec![
            $((1u32, $crate::Strategy::into_arb($strat))),+
        ])
    };
}

/// In this shim, identical to [`assert!`] (no shrinking machinery).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// In this shim, identical to [`assert_eq!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// In this shim, identical to [`assert_ne!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn string_pattern_generates_matching_shapes() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-d]{1,4}", &mut rng);
            assert!((1..=4).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='d').contains(&c)), "{s:?}");

            let t = Strategy::generate(&".{0,12}", &mut rng);
            assert!(t.chars().count() <= 12, "{t:?}");
            assert!(!t.contains('\n'), "{t:?}");

            let alt = Strategy::generate(&"(set|regex|delta)", &mut rng);
            assert!(["set", "regex", "delta"].contains(&alt.as_str()), "{alt:?}");
        }
    }

    #[test]
    fn nested_group_pattern_parses() {
        let mut rng = TestRng::from_seed(2);
        let pat = "(attr [A-C]\n(  (set|regex|delta) .{0,20}\n){0,3}){0,3}";
        for _ in 0..100 {
            let s = Strategy::generate(&pat, &mut rng);
            for line in s.lines() {
                assert!(
                    line.is_empty() || line.starts_with("attr ") || line.starts_with("  "),
                    "{s:?}"
                );
            }
        }
    }

    #[test]
    fn combinators_compose() {
        let strat = prop_oneof![
            3 => (0i64..8).prop_map(|v| v * 2),
            1 => Just(-1i64),
        ];
        let pairs = prop::collection::vec((strat, any::<bool>()), 2..6);
        let mut rng = TestRng::from_seed(3);
        for _ in 0..100 {
            let vs = Strategy::generate(&pairs, &mut rng);
            assert!((2..6).contains(&vs.len()));
            for (v, _) in vs {
                assert!(v == -1 || (v % 2 == 0 && (0..16).contains(&v)));
            }
        }
    }

    #[test]
    fn filter_map_retries() {
        let odd = (0u64..100).prop_filter_map("odd only", |v| (v % 2 == 1).then_some(v));
        let mut rng = TestRng::from_seed(4);
        for _ in 0..100 {
            assert!(Strategy::generate(&odd, &mut rng) % 2 == 1);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_roundtrip(a in 0usize..10, b in "[a-e]{0,3}") {
            prop_assert!(a < 10);
            prop_assert!(b.len() <= 3);
        }
    }
}
